#!/usr/bin/env python3
"""The paper's motivating application: a self-organizing camera network.

Eight battery-powered camera nodes on a ring run SSRmin over message
passing.  A node holding a token actively monitors; the others sleep and
harvest energy.  The script demonstrates the three properties the paper's
introduction promises:

* **continuous observation** — coverage is 100%: at every instant at least
  one (and at most two) cameras are recording;
* **graceful handover** — every duty transfer overlaps, never gaps;
* **energy efficiency** — each node is active only ~1/n of the time, so the
  fleet is sustainable on harvested energy where always-on would drain.

It also reboots the network from a corrupted state (arbitrary node states
and caches) to show the self-organizing part: no global reset, the ring
heals itself.
"""

from repro.apps import CameraNetwork, EnergyModel
from repro.messagepassing.links import UniformDelay
from repro.viz.ascii import render_timeline


def main() -> None:
    n = 8
    model = EnergyModel(
        active_power=8.0,
        idle_power=0.5,
        harvest_rate=3.0,
        capacity=200.0,
        initial_charge=150.0,
    )

    # -- clean boot -----------------------------------------------------------
    print(f"=== clean boot: {n} cameras, SSRmin over message passing ===")
    cam = CameraNetwork(n, seed=8, delay_model=UniformDelay(0.5, 1.5))
    report = cam.run(800.0, energy_model=model)
    print(f"coverage:            {report.coverage:.2%}")
    print(f"active cameras:      {report.min_active} .. {report.max_active}")
    print(f"handovers:           {report.handovers} "
          f"({report.graceful_handovers} graceful)")
    e = report.energy
    print(f"duty cycle per node: {[f'{d:.2f}' for d in e.duty_cycle]}")
    print(f"energy saving:       x{e.saving_factor:.1f} vs all-always-on")
    print(f"sustainable:         {e.sustainable} "
          f"(min charge {min(e.min_charge):.0f})")
    print()
    print("activity strip (last 60 time units; # = camera recording):")
    print(render_timeline(cam.network.timeline, n,
                          t_start=cam.network.queue.now - 60.0, columns=72))
    print()

    # -- boot from corruption -------------------------------------------------
    print(f"=== post-fault boot: arbitrary states AND caches ===")
    cam2 = CameraNetwork(n, seed=9, start_clean=False,
                         delay_model=UniformDelay(0.5, 1.5))
    # Let it stabilize, then measure after the warmup.
    cam2.network.run(150.0)
    report2 = cam2.run(650.0, warmup=150.0)
    print(f"coverage after self-stabilization: {report2.coverage:.2%}")
    print(f"active cameras: {report2.min_active} .. {report2.max_active}")
    print("the ring healed itself — no global reset was needed.")


if __name__ == "__main__":
    main()
