#!/usr/bin/env python3
"""The model gap, side by side (paper section 5, Figures 11-13).

Three systems, same message-passing substrate, same delays:

* Dijkstra's SSToken — exactly one token in the state-reading model, but
  token-less for most of every handover under message passing (Figure 11);
* two independent SSToken instances — still token-less whenever the two
  handovers overlap (Figure 12);
* SSRmin — never token-less: the two-token handshake tolerates the gap
  between the models (Figure 13, Theorem 3).

Prints extinction statistics plus a visual strip chart for each.
"""

from repro.algorithms import DijkstraKState, IndependentComposition
from repro.core import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import evaluate_gap
from repro.viz.ascii import render_timeline

DURATION = 300.0
DELAYS = UniformDelay(0.5, 1.5)


def study(name: str, net, n: int) -> None:
    report = evaluate_gap(net, duration=DURATION)
    frac = report.zero_time / DURATION
    print(f"--- {name} ---")
    print(
        f"holders in [{report.min_count}, {report.max_count}]; "
        f"zero-token time {report.zero_time:.1f} ({frac:.0%} of the run), "
        f"{len(report.zero_intervals)} extinction intervals"
    )
    print(render_timeline(net.timeline, n, t_start=DURATION - 40.0,
                          t_end=DURATION, columns=72))
    print()


def main() -> None:
    n, K = 5, 6

    study("Dijkstra SSToken (Figure 11)",
          transformed(DijkstraKState(n, K), seed=1, delay_model=DELAYS), n)

    comp = IndependentComposition([DijkstraKState(n, K), DijkstraKState(n, K)])
    init = comp.compose_configurations([(0,) * n, (1, 1, 0, 0, 0)])
    study("two independent SSToken instances (Figure 12)",
          transformed(comp, seed=2, initial_states=list(init),
                      delay_model=DELAYS), n)

    study("SSRmin (Figure 13)",
          transformed(SSRmin(n, K), seed=3, delay_model=DELAYS), n)

    print("Conclusion: only SSRmin keeps a token alive at every instant —")
    print("the model gap tolerance the paper designs for.")


if __name__ == "__main__":
    main()
