#!/usr/bin/env python3
"""Generalized (m, 2m)-critical-section with layered SSRmin rings.

The paper places mutual inclusion inside the (l, k)-critical-section family:
at least l, at most k processes privileged.  SSRmin solves (1, 2); layering
m independent SSRmin instances generalizes the construction — and because
every layer is model-gap tolerant, the whole band survives the
message-passing transform (unlike the naive composition of Dijkstra rings
the paper's Figure 12 dismisses).

The example also drives the callback-based critical-section *service* API:
application code gets enter/exit notifications instead of polling token
predicates, the way a camera driver would consume this library.
"""

from repro.algorithms.multi_inclusion import LayeredSSRmin
from repro.apps.mutex import CriticalSectionService
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.viz.ascii import render_timeline


def main() -> None:
    n, m = 6, 2
    alg = LayeredSSRmin(n, m)
    print(f"{m} SSRmin layers on a ring of {n}: guaranteed layer-token band "
          f"{alg.band()}\n")

    init = alg.staggered_initial()
    net = transformed(alg, seed=9, initial_states=list(init),
                      delay_model=UniformDelay(0.5, 1.5))

    # Application-facing service: notifications instead of polling.
    events = []
    service = CriticalSectionService(
        net,
        on_enter=lambda i, t: events.append(f"t={t:7.2f}  node {i} ENTER"),
        on_exit=lambda i, t: events.append(f"t={t:7.2f}  node {i} exit"),
    )

    # Track the layer-token count at every observable instant.
    counts = []

    def layer_tokens(network):
        total = 0
        for node in network.nodes:
            view = node.view()
            for l, sub in enumerate(alg.layers):
                if sub.node_holds_token(alg.layer_config(view, l), node.index):
                    total += 1
        counts.append(total)

    net.observers.append(layer_tokens)
    net.run(300.0)

    print("first 12 service events:")
    for line in events[:12]:
        print(" ", line)
    print()

    lo, hi = min(counts), max(counts)
    print(f"layer-token count stayed in [{lo}, {hi}] "
          f"(guaranteed band {alg.band()})")
    print(f"privileged-process coverage gaps: {net.timeline.zero_time():.2f} "
          "time units (0 = continuous service)")
    print(f"sessions per node: {service.session_counts()}")
    print(f"handover overlap fraction: "
          f"{service.overlapping_handover_fraction():.0%}\n")

    print("activity strip, last 50 time units (two token pairs visible):")
    print(render_timeline(net.timeline, n,
                          t_start=net.queue.now - 50.0, columns=72))


if __name__ == "__main__":
    main()
