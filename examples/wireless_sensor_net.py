#!/usr/bin/env python3
"""SSRmin on a real(istic) radio: shared medium, half-duplex, collisions.

The paper's motivation is *wireless* sensor networks, and a shared radio
channel is harsher than point-to-point links: one transmission reaches both
neighbours (nice), but overlapping transmissions destroy each other at any
receiver that hears both (not nice), and a transmitting node hears nothing.

This example runs the camera ring over `repro.messagepassing.wireless` and
shows what the theory predicts for a *lossy* channel:

* collisions destroy a large fraction of receptions, yet
* coverage stays near-total and never exceeds two active nodes — the
  Theorem-4 regime: brief disturbances, continual self-healing;
* a message-sequence-style accounting of the radio traffic.
"""

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import coherent_caches, legitimate_initial_states
from repro.messagepassing.wireless import build_wireless_network
from repro.viz.ascii import render_timeline


def main() -> None:
    n = 6
    alg = SSRmin(n, n + 1)
    states = legitimate_initial_states(alg)
    net = build_wireless_network(
        alg, states, seed=6,
        initial_caches=coherent_caches(list(states), n),
    )
    net.run(600.0)
    net.timeline.finish(net.queue.now)

    stats = net.message_stats()
    receptions = stats["delivered"] + stats["lost"]
    print(f"=== {n} camera nodes on one radio channel, 600 time units ===")
    print(f"transmissions:       {stats['sent']}")
    print(f"receptions spoiled:  {stats['lost']}/{receptions} "
          f"({stats['lost'] / receptions:.0%} collision rate — no MAC layer!)")
    coverage = net.timeline.coverage_fraction()
    lo, hi = net.timeline.count_bounds()
    print(f"coverage:            {coverage:.2%}")
    print(f"active cameras:      min {lo}, max {hi}")
    served = {h for pt in net.timeline.points for h in pt.holders}
    print(f"nodes served:        {sorted(served)}")
    zero = net.timeline.zero_intervals()
    if zero:
        worst = max(b - a for a, b in zero)
        print(f"extinction windows:  {len(zero)} (worst {worst:.1f} time "
              "units) — collision loss suspends Theorem 3; Theorem 4's "
              "recovery closes every window")
    else:
        print("extinction windows:  none in this run")

    print("\nactivity strip, last 60 time units:")
    print(render_timeline(net.timeline, n,
                          t_start=net.queue.now - 60.0, columns=72))

    print("\nCompare examples/model_gap_study.py: on lossless wired links "
          "the zero-token time is exactly 0 (Theorem 3); the radio trades "
          "that absolute guarantee for broadcast economy and still delivers "
          "continuous observation in practice.")


if __name__ == "__main__":
    main()
