#!/usr/bin/env python3
"""Convergence-time scaling study (Theorem 2: O(n^2)).

Sweeps ring sizes, measures steps-to-legitimacy from random initial
configurations under several daemons, fits the power law T(n) ~ c * n^alpha,
and prints an ASCII log-log chart.  Theorem 2 proves alpha <= 2 for the
worst case (the conference version of the paper only proved alpha <= 3);
average-case behaviour typically sits below the worst-case exponent.
"""

from repro.analysis.scaling import fit_power_law
from repro.analysis.statistics import summarize
from repro.core import SSRmin
from repro.daemons import (
    BernoulliDaemon,
    RandomCentralDaemon,
    RandomSubsetDaemon,
    SynchronousDaemon,
)
from repro.simulation.convergence import convergence_steps

NS = (5, 8, 12, 17, 24, 32)
TRIALS = 30

DAEMONS = {
    "random subset": lambda alg, s: RandomSubsetDaemon(seed=s),
    "synchronous": lambda alg, s: SynchronousDaemon(),
    "central": lambda alg, s: RandomCentralDaemon(seed=s),
    "bernoulli p=0.2": lambda alg, s: BernoulliDaemon(0.2, seed=s),
}


def main() -> None:
    print(f"{TRIALS} random initial configurations per (daemon, n)\n")
    fits = {}
    for label, factory in DAEMONS.items():
        print(f"--- daemon: {label} ---")
        means = []
        for n in NS:
            samples = convergence_steps(
                algorithm_factory=lambda n=n: SSRmin(n, n + 1),
                daemon_factory=factory,
                trials=TRIALS,
                seed=17 * n,
            )
            s = summarize(samples)
            means.append(s.mean)
            print(
                f"  n={n:3d}: mean {s.mean:8.1f}  max {s.maximum:6.0f}  "
                f"max/n^2 {s.maximum / n / n:.2f}"
            )
        fit = fit_power_law(NS, means)
        fits[label] = fit
        print(f"  fit: {fit}\n")

    print("=== exponents (paper: worst case O(n^2), conference O(n^3)) ===")
    for label, fit in fits.items():
        verdict = "consistent with O(n^2)" if fit.exponent <= 2.2 else "check!"
        print(f"  {label:18s} alpha = {fit.exponent:.2f}   {verdict}")


if __name__ == "__main__":
    main()
