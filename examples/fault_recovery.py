#!/usr/bin/env python3
"""Fault tolerance: transient faults hit, SSRmin recovers, service continues.

Self-stabilization's promise (paper section 2.2): treat the post-fault
configuration as a fresh start and the system converges again — no global
reset.  This example demonstrates it in both models:

1. **state-reading model** — a burst of memory corruptions; we count the
   steps back to legitimacy and confirm they respect the O(n^2) worst case;
2. **periodic soft errors** — repeated single bit-flips with recovery laps
   in between, reporting availability;
3. **message-passing model** — corrupt both node states *and* caches of a
   live network (plus 20% message loss), then watch Theorem 4 restore the
   1..2-token guarantee.
"""

from repro.core import SSRmin
from repro.daemons import RandomSubsetDaemon
from repro.faults import FaultInjector, burst_fault, periodic_faults
from repro.messagepassing.coherence import CoherenceTracker
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import evaluate_gap


def main() -> None:
    n, K = 8, 9
    alg = SSRmin(n, K)
    daemon = RandomSubsetDaemon(seed=0)

    # -- 1. fault bursts of increasing size ---------------------------------
    print(f"=== burst faults, n={n} (O(n^2) budget = {3 * n * n}) ===")
    for f in (1, 2, 4, n):
        result = burst_fault(alg, daemon, faults=f, seed=f)
        print(
            f"  {f} simultaneous corruptions -> recovered in "
            f"{result.max_recovery} steps"
        )
    print()

    # -- 2. periodic soft errors ------------------------------------------------
    print("=== periodic single faults (20 rounds) ===")
    result = periodic_faults(alg, daemon, rounds=20, seed=3)
    recoveries = [r.recovery_steps for r in result.records]
    print(f"  recovery steps per fault: {recoveries}")
    print(f"  worst: {max(recoveries)}, availability: {result.availability:.1%}")
    print()

    # -- 3. live message-passing network under fire ------------------------------
    print("=== live network: corrupt states+caches, 20% message loss ===")
    net = transformed(alg, seed=4, delay_model=UniformDelay(0.5, 1.5),
                      loss_probability=0.2)
    net.run(50.0)  # steady legitimate operation first
    injector = FaultInjector(alg, seed=5)
    injector.hit_network_state(net, count=3)
    injector.hit_network_cache(net, count=4)
    print(f"  injected: {injector.log}")
    tracker = CoherenceTracker(net)
    t = tracker.run_until_stabilized(slice_duration=5.0, max_time=20_000.0)
    print(f"  legitimate + cache-coherent again at t = {t:.1f}")
    report = evaluate_gap(net, duration=200.0, warmup=net.queue.now)
    print(
        f"  post-recovery token holders in "
        f"[{report.min_count}, {report.max_count}], "
        f"zero-token time {report.zero_time:.2f}"
    )


if __name__ == "__main__":
    main()
