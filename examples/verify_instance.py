#!/usr/bin/env python3
"""Machine-check the paper's lemmas on a small SSRmin instance.

The paper proves closure (Lemma 1), no-deadlock (Lemma 4) and convergence
(Lemma 6) by hand.  For small (n, K) we can verify all three *exhaustively*:
enumerate every configuration (``(4K)^n`` of them), every daemon choice, and
check the properties mechanically — plus compute the exact adversarial
worst-case convergence time Theorem 2 bounds by O(n^2), and extract a
provably-worst execution.
"""

from repro.analysis.profiling import Stopwatch
from repro.core.ssrmin import SSRmin
from repro.verification import TransitionSystem, check_self_stabilization
from repro.verification.model_checker import worst_case_witness


def main() -> None:
    n, K = 3, 4
    alg = SSRmin(n, K)
    print(f"SSRmin n={n}, K={K}: {(4 * K) ** n} configurations, "
          "distributed daemon (all non-empty subsets)\n")

    with Stopwatch() as sw:
        report = check_self_stabilization(TransitionSystem(alg, "distributed"))
        sw.split("model check")
        witness = worst_case_witness(TransitionSystem(alg, "distributed"))
        sw.split("worst-case witness")

    print(report.summary())
    print()
    print(f"Lemma 1 (closure):      {len(report.closure_violations)} violations")
    print(f"Lemma 4 (no deadlock):  {len(report.deadlocks)} deadlocks")
    print(f"Lemma 6 (convergence):  "
          f"{'holds' if report.illegitimate_cycle is None else 'FAILS'}")
    print(f"Theorem 2 budget check: worst case {report.worst_case_steps} "
          f"steps <= O(n^2) regime\n")

    print(f"a provably worst execution ({len(witness) - 1} steps):")
    for t, config in enumerate(witness):
        marker = "  <- legitimate" if alg.is_legitimate(config) else ""
        print(f"  step {t:2d}: {config}{marker}")

    print(f"\ntimings: " + ", ".join(f"{l}={s:.2f}s" for l, s in sw.splits))


if __name__ == "__main__":
    main()
