#!/usr/bin/env python3
"""Quickstart: run SSRmin in both execution models in under a minute.

Walks through the library's core flow:

1. build the algorithm (Algorithm 3 of the paper);
2. simulate it in the state-reading model from an arbitrary (post-fault)
   configuration and watch it self-stabilize;
3. run the legitimate regime and print the Figure-4-style trace;
4. transform it to the message-passing model (CST, Algorithm 4) and verify
   the graceful-handover guarantee: 1..2 token holders at every instant.
"""

import random

from repro import SSRmin, SharedMemorySimulator
from repro.analysis.tracefmt import format_trace
from repro.daemons import RandomSubsetDaemon
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import evaluate_gap
from repro.simulation.convergence import converge


def main() -> None:
    n, K = 5, 6
    alg = SSRmin(n, K)

    # -- 1. self-stabilization from an arbitrary configuration --------------
    rng = random.Random(2024)
    chaotic = alg.random_configuration(rng)
    print(f"arbitrary initial configuration: {chaotic}")
    print(f"  legitimate? {alg.is_legitimate(chaotic)}")

    result = converge(alg, RandomSubsetDaemon(seed=1), chaotic)
    print(
        f"  converged in {result.steps} steps "
        f"(embedded Dijkstra ring after {result.dijkstra_steps})"
    )
    print(f"  final configuration: {result.final_config}\n")

    # -- 2. the legitimate regime: the two-token inchworm --------------------
    sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=2))
    run = sim.run_legitimate_lap(alg.initial_configuration(x=3), laps=1)
    print("one full circulation (3n steps), Figure-4 notation:")
    print(format_trace(alg, run.execution))
    print()

    # -- 3. message-passing model: graceful handover -----------------------
    net = transformed(alg, seed=3, delay_model=UniformDelay(0.5, 1.5))
    report = evaluate_gap(net, duration=200.0)
    print("message-passing model (CST transform), 200 time units:")
    print(f"  token holders always in [{report.min_count}, {report.max_count}]")
    print(f"  time with zero tokens: {report.zero_time:.2f} (graceful handover!)")
    stats = net.message_stats()
    print(f"  messages: {stats['sent']} sent, {stats['delivered']} delivered")


if __name__ == "__main__":
    main()
