# Development shortcuts for the SSRmin reproduction.

PYTHON ?= python

.PHONY: install test bench report demo verify examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report -o EXPERIMENTS.md

demo:
	$(PYTHON) -m repro demo

verify:
	$(PYTHON) -m repro verify ssrmin -n 3

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
