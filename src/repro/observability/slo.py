"""The SLO engine: paper-grounded service objectives over the run store.

The paper proves exactly the bounds an operator wants dashboards for:

* **Theorem 2** — O(n²)-round stabilization from arbitrary configurations,
  which at runtime becomes *time-to-restabilize per disturbance class*
  (p50/p99 over :class:`~repro.runtime.health.Epoch` records);
* **Theorems 3–4** — once legitimate + coherent, SSRmin's handover is
  graceful: the own-view token census never reaches zero.  At runtime that
  is the *vacancy-instant rate*, which must be exactly **0** for SSRmin and
  is expected non-zero for Dijkstra under CST (Figure 13's gap, live);
* **Lemma 5 / the (1,2) bounds** — census violations must be 0;
* plain *availability* — the fraction of disturbance epochs that
  re-stabilized at all.

An :class:`SloSpec` states one such objective declaratively (metric,
threshold, target fraction, filters); :func:`evaluate_slos` grades every
spec against the epochs/runs in a :class:`~repro.observability.store.RunStore`
and accounts the **error budget**: with ``target`` = 0.99, one percent of
events may breach before the budget is burned; ``budget_burn`` ≥ 1.0 means
the objective failed.  ``repro slo report`` renders the result and exits
non-zero when any spec's budget is burned.

Two helpers used across the observability layer live here too:

* :func:`disturbance_class` maps epoch labels (``"loss@0.60s"``,
  ``"restart-3"``, ``"loss-healed@1.60s"``) to their fault class;
* :func:`merge_epochs` collapses back-to-back disturbances — an epoch that
  never stabilized before the next fault hit is one *logical* outage, and
  counting its unstabilized prefix epochs as availability failures would
  charge the ring for faults it was never given time to absorb.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.observability.store import RunStore

#: Known fault classes, in rendering order.
DISTURBANCE_CLASSES = (
    "boot", "loss", "delay", "duplicate", "reorder", "partition",
    "crash", "wedge", "restart", "corrupt-state", "corrupt-cache",
)

_LABEL_RE = re.compile(r"^(?P<kind>[a-z-]+?)(-healed)?(@[\d.]+s|-\d+)?$")


def disturbance_class(label: str) -> str:
    """Fault class of an epoch label (``"loss-healed@1.6s"`` -> ``"loss"``).

    Labels the runtime emits are ``boot``, ``<kind>@<t>s`` /
    ``<kind>-healed@<t>s`` for transport windows, and ``<kind>-<node>``
    for point faults.  Unrecognized labels classify as ``"other"``.
    """
    match = _LABEL_RE.match(label.strip())
    if match is None:
        return "other"
    kind = match.group("kind")
    return kind if kind in DISTURBANCE_CLASSES else "other"


def merge_epochs(epochs: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Collapse consecutive epochs separated by zero stabilized instants.

    Input rows need ``label``, ``started_at``, ``stabilized_at`` (epoch
    order).  When epoch *i* never stabilized before epoch *i+1* opened,
    the two merge: the logical epoch keeps the **first** fault's onset
    (``first_started_at``), measures restabilization from the **last**
    fault (``started_at``), and carries every constituent label.  The
    class is the last label's class — re-stabilization is measured from
    the disturbance that stopped biting last (a ``loss`` window's
    ``loss-healed`` boundary keeps the ``loss`` class).
    """
    merged: List[Dict[str, Any]] = []
    for epoch in epochs:
        label = str(epoch.get("label", ""))
        row = {
            "label": label,
            "labels": [label],
            "class": epoch.get("class") or disturbance_class(label),
            "first_started_at": epoch.get("started_at"),
            "started_at": epoch.get("started_at"),
            "stabilized_at": epoch.get("stabilized_at"),
            "disturbances": 1,
        }
        if merged and merged[-1]["stabilized_at"] is None:
            prev = merged[-1]
            prev["labels"].append(label)
            prev["label"] = label
            prev["class"] = row["class"]
            prev["started_at"] = row["started_at"]
            prev["stabilized_at"] = row["stabilized_at"]
            prev["disturbances"] += 1
        else:
            merged.append(row)
    for row in merged:
        if row["stabilized_at"] is not None and row["started_at"] is not None:
            row["time_to_stabilize"] = row["stabilized_at"] - row["started_at"]
        else:
            row["time_to_stabilize"] = None
    return merged


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (NaN on empty input)."""
    if not values:
        return float("nan")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    frac = position - lower
    return ordered[lower] * (1 - frac) + ordered[upper] * frac


# -- declarative specs --------------------------------------------------------

#: Metrics a spec can target.
SLO_METRICS = ("restabilize", "vacancy", "census", "availability")


@dataclass(frozen=True)
class SloSpec:
    """One declarative service objective.

    Parameters
    ----------
    name:
        Unique label shown in reports and incident titles.
    metric:
        * ``"restabilize"`` — events are merged disturbance epochs; an
          event is *bad* when it never stabilized or took longer than
          ``threshold`` seconds;
        * ``"vacancy"`` — events are runs; bad when ``vacancy_instants``
          exceeds ``threshold`` (0 = the graceful-handover guarantee);
        * ``"census"`` — events are runs; bad when ``violations`` exceeds
          ``threshold``;
        * ``"availability"`` — events are merged epochs; bad when the
          epoch never stabilized.
    target:
        Required good fraction (0.99 = one bad event per hundred allowed);
        the error budget is ``1 - target``.
    threshold:
        Metric-specific bound (seconds for ``restabilize``, a count
        otherwise).
    algorithm:
        Substring filter on the stored algorithm name (``"ssrmin"``
        matches ``"SSRmin"``); None applies to every algorithm.
    disturbance_class:
        Restrict epoch-based metrics to one fault class.
    """

    name: str
    metric: str
    target: float = 1.0
    threshold: float = 0.0
    algorithm: Optional[str] = None
    disturbance_class: Optional[str] = None

    def __post_init__(self) -> None:
        if self.metric not in SLO_METRICS:
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; have {SLO_METRICS}"
            )
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {self.target}")

    def to_json(self) -> dict:
        """JSON-able form (spec files round-trip through this)."""
        return asdict(self)

    @classmethod
    def from_json(cls, row: dict) -> "SloSpec":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(row) - known
        if unknown:
            raise ValueError(f"unknown SloSpec fields: {sorted(unknown)}")
        return cls(**row)


def default_slos() -> List[SloSpec]:
    """The paper-grounded default objectives.

    The restabilize threshold is deliberately generous (wall-clock depends
    on timer cadence, not just the O(n²) round bound); deployments tune it
    in a spec file.
    """
    return [
        SloSpec(name="restabilize-10s", metric="restabilize",
                target=0.99, threshold=10.0),
        SloSpec(name="ssrmin-zero-vacancy", metric="vacancy",
                target=1.0, threshold=0.0, algorithm="ssrmin"),
        SloSpec(name="census-in-bounds", metric="census",
                target=1.0, threshold=0.0),
        SloSpec(name="availability", metric="availability", target=0.95),
    ]


def load_slo_specs(path: str) -> List[SloSpec]:
    """Load specs from a JSON file (a list of SloSpec dicts)."""
    with open(path) as fh:
        rows = json.load(fh)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON list of SLO specs")
    return [SloSpec.from_json(row) for row in rows]


# -- evaluation ---------------------------------------------------------------


@dataclass
class SloResult:
    """One spec graded against the store."""

    spec: SloSpec
    events: int
    bad: int
    #: Example offender descriptions (run/epoch), capped.
    offenders: List[str] = field(default_factory=list)

    @property
    def good_fraction(self) -> float:
        if self.events == 0:
            return 1.0
        return 1.0 - self.bad / self.events

    @property
    def budget_burn(self) -> float:
        """Fraction of the error budget consumed (>= 1.0 means burned).

        A zero-width budget (target = 1.0) burns completely on the first
        bad event.
        """
        if self.events == 0 or self.bad == 0:
            return 0.0
        budget = 1.0 - self.spec.target
        bad_fraction = self.bad / self.events
        if budget <= 0.0:
            return math.inf
        return bad_fraction / budget

    @property
    def ok(self) -> bool:
        return self.budget_burn < 1.0

    def to_json(self) -> dict:
        """JSON-able form (``repro slo report --json``)."""
        return {
            "spec": self.spec.to_json(),
            "events": self.events,
            "bad": self.bad,
            "good_fraction": self.good_fraction,
            "budget_burn": (
                self.budget_burn if math.isfinite(self.budget_burn)
                else "inf"
            ),
            "ok": self.ok,
            "offenders": list(self.offenders),
        }


_MAX_OFFENDERS = 5


def _alg_matches(stored: Optional[str], wanted: Optional[str]) -> bool:
    if wanted is None:
        return True
    return wanted.lower() in (stored or "").lower()


def _merged_epoch_events(
    store: RunStore, spec: SloSpec
) -> List[Dict[str, Any]]:
    """Merged epochs of every matching run, tagged with run identity."""
    events: List[Dict[str, Any]] = []
    for run in store.list_runs(algorithm=spec.algorithm):
        raw = store.epochs_for(run["id"])
        if not raw:
            continue
        for epoch in merge_epochs(raw):
            epoch["run"] = run["run_id"]
            events.append(epoch)
    if spec.disturbance_class is not None:
        events = [e for e in events if e["class"] == spec.disturbance_class]
    return events


def evaluate_slo(store: RunStore, spec: SloSpec) -> SloResult:
    """Grade one spec against the store."""
    result = SloResult(spec=spec, events=0, bad=0)
    if spec.metric in ("restabilize", "availability"):
        for epoch in _merged_epoch_events(store, spec):
            result.events += 1
            ttr = epoch["time_to_stabilize"]
            if spec.metric == "availability":
                is_bad = ttr is None
            else:
                is_bad = ttr is None or ttr > spec.threshold
            if is_bad:
                result.bad += 1
                if len(result.offenders) < _MAX_OFFENDERS:
                    result.offenders.append(
                        f"{epoch['run']} epoch {epoch['label']}: "
                        + ("never stabilized" if ttr is None
                           else f"ttr {ttr:.3f}s > {spec.threshold}s")
                    )
        return result
    # run-level metrics
    column = "vacancy_instants" if spec.metric == "vacancy" else "violations"
    for run in store.list_runs(algorithm=spec.algorithm):
        value = run.get(column)
        if value is None:
            continue  # run predates the observable (e.g. backfilled stub)
        result.events += 1
        if value > spec.threshold:
            result.bad += 1
            if len(result.offenders) < _MAX_OFFENDERS:
                result.offenders.append(
                    f"{run['run_id']}: {column}={value} > {spec.threshold:g}"
                )
    return result


def evaluate_slos(
    store: RunStore,
    specs: Optional[Sequence[SloSpec]] = None,
    open_incidents: bool = False,
    now: float = 0.0,
) -> List[SloResult]:
    """Grade every spec; optionally record burned budgets as incidents.

    With ``open_incidents=True`` each failing spec opens one ``slo-burn``
    incident (severity ``critical``) carrying the offender list — unless an
    unresolved ``slo-burn`` incident with the same title is already open,
    so repeated reports don't multiply records.
    """
    if specs is None:
        specs = default_slos()
    results = [evaluate_slo(store, spec) for spec in specs]
    if open_incidents:
        already_open = {
            inc["title"] for inc in store.incidents(open_only=True)
            if inc["kind"] == "slo-burn"
        }
        for result in results:
            title = f"SLO budget burned: {result.spec.name}"
            if result.ok or title in already_open:
                continue
            store.open_incident(
                run_db_id=None,
                opened_at=now,
                kind="slo-burn",
                severity="critical",
                title=title,
                details={
                    "spec": result.spec.to_json(),
                    "events": result.events,
                    "bad": result.bad,
                    "offenders": result.offenders,
                },
            )
        store.flush()
    return results


# -- the report ---------------------------------------------------------------

def restabilize_stats(store: RunStore) -> List[Dict[str, Any]]:
    """p50/p99 time-to-restabilize per (algorithm, disturbance class).

    Never-stabilized merged epochs contribute ``inf`` so a ring that wedges
    shows up as an unbounded p99 instead of silently dropping out.
    """
    groups: Dict[tuple, List[float]] = {}
    for run in store.list_runs():
        raw = store.epochs_for(run["id"])
        if not raw:
            continue
        for epoch in merge_epochs(raw):
            key = (run.get("algorithm") or "?", epoch["class"])
            ttr = epoch["time_to_stabilize"]
            groups.setdefault(key, []).append(
                ttr if ttr is not None else math.inf
            )
    rows = []
    for (algorithm, cls), values in sorted(groups.items()):
        rows.append({
            "algorithm": algorithm,
            "class": cls,
            "epochs": len(values),
            "p50": quantile(values, 0.50),
            "p99": quantile(values, 0.99),
            "max": max(values),
        })
    return rows


def vacancy_stats(store: RunStore) -> List[Dict[str, Any]]:
    """Total vacancy instants and census violations per algorithm."""
    totals: Dict[str, Dict[str, Any]] = {}
    for run in store.list_runs():
        algorithm = run.get("algorithm") or "?"
        cell = totals.setdefault(
            algorithm,
            {"algorithm": algorithm, "runs": 0, "vacancy_instants": 0,
             "violations": 0},
        )
        if run.get("vacancy_instants") is None:
            continue
        cell["runs"] += 1
        cell["vacancy_instants"] += int(run.get("vacancy_instants") or 0)
        cell["violations"] += int(run.get("violations") or 0)
    return sorted(totals.values(), key=lambda c: c["algorithm"])


def _fmt_seconds(value: float) -> str:
    if math.isnan(value):
        return "-"
    if math.isinf(value):
        return "inf"
    return f"{value:.3f}s"


def render_slo_report(
    store: RunStore, results: Sequence[SloResult]
) -> List[str]:
    """Human-readable ``repro slo report`` output."""
    lines: List[str] = []
    counts = store.counts()
    lines.append(
        f"run store: {store.path} — {counts['runs']} runs, "
        f"{counts['epochs']} epochs, {counts['incidents']} incidents"
    )
    lines.append("")
    lines.append("time-to-restabilize (merged epochs):")
    stats = restabilize_stats(store)
    if not stats:
        lines.append("  (no epochs recorded)")
    for row in stats:
        lines.append(
            f"  {row['algorithm']:<14s} {row['class']:<13s} "
            f"epochs={row['epochs']:<4d} p50={_fmt_seconds(row['p50']):<9s} "
            f"p99={_fmt_seconds(row['p99']):<9s} "
            f"max={_fmt_seconds(row['max'])}"
        )
    lines.append("")
    lines.append("handover vacancy / census (per algorithm):")
    for row in vacancy_stats(store):
        lines.append(
            f"  {row['algorithm']:<14s} runs={row['runs']:<4d} "
            f"vacancy_instants={row['vacancy_instants']:<6d} "
            f"census_violations={row['violations']}"
        )
    lines.append("")
    lines.append("objectives:")
    for result in results:
        spec = result.spec
        burn = result.budget_burn
        burn_text = "inf" if math.isinf(burn) else f"{burn * 100:.0f}%"
        scope = []
        if spec.algorithm:
            scope.append(spec.algorithm)
        if spec.disturbance_class:
            scope.append(spec.disturbance_class)
        scope_text = f" [{'/'.join(scope)}]" if scope else ""
        lines.append(
            f"  {'OK  ' if result.ok else 'BURN'} {spec.name}{scope_text}: "
            f"{result.events - result.bad}/{result.events} good "
            f"(target {spec.target * 100:g}%, budget burn {burn_text})"
        )
        for offender in result.offenders:
            lines.append(f"        - {offender}")
    open_incidents = store.incidents(open_only=True)
    if open_incidents:
        lines.append("")
        lines.append(f"open incidents: {len(open_incidents)}")
        for inc in open_incidents[:10]:
            lines.append(
                f"  #{inc['id']} [{inc['severity']}] {inc['title']} "
                f"(run {inc.get('run') or '-'})"
            )
    return lines


__all__ = [
    "DISTURBANCE_CLASSES",
    "SLO_METRICS",
    "SloResult",
    "SloSpec",
    "default_slos",
    "disturbance_class",
    "evaluate_slo",
    "evaluate_slos",
    "load_slo_specs",
    "merge_epochs",
    "quantile",
    "render_slo_report",
    "restabilize_stats",
    "vacancy_stats",
]
