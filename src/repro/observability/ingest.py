"""Live ingestion: an EventBus subscriber that feeds the run store.

A :class:`StoreSubscriber` registers on a
:class:`~repro.telemetry.session.TelemetrySession` (with ``detail=False``,
so its presence does **not** switch the simulation engines into per-step
event publishing — see the bench guard in
``benchmarks/bench_obs_overhead.py``) and turns the runtime event stream
into store rows as they happen:

========================  ====================================================
event (layer/kind)        effect
========================  ====================================================
runtime/run_start         open the run row (+ its ``boot`` epoch)
runtime/chaos_script      record the script name (incident context)
runtime/chaos             one ``disturbances`` row per applied op
runtime/node_crash        disturbance row
runtime/node_restart      disturbance row
runtime/fault             disturbance row
runtime/wire_fallback     disturbance row (mixed wire-format peer seen)
runtime/epoch_open        ``epochs`` row; open/extend the incident
runtime/epoch_stabilized  stabilize the epoch row; resolve the incident
runtime/violation         escalate/open a guarantee-breach incident
runtime/run_end           finalize the run (health block, metric samples)
experiment/sweep_cell     one ``runs`` row per Monte-Carlo cell
========================  ====================================================

Everything else on the bus is ignored with one dict lookup, which is what
keeps the attached-subscriber overhead on the engine step loop inside the
< 5 % budget.
"""

from __future__ import annotations

import math
import time as _time
from typing import Any, Dict, Optional

from repro.observability.incidents import IncidentTracker
from repro.observability.slo import disturbance_class
from repro.observability.store import RunStore
from repro.telemetry.events import Event

#: Metric families sampled into the store at ``run_end`` (totals).
SAMPLED_COUNTER_PREFIXES = ("live_", "messages_", "timer_")


class StoreSubscriber:
    """Streams one telemetry session's events into a :class:`RunStore`.

    Parameters
    ----------
    store:
        The destination store (not closed by this subscriber).
    run_id:
        Public id for the next runtime run (CLI passes its manifest run
        id so the store row and the ``runs/<id>/`` directory line up);
        auto-derived from the ``run_start`` payload when None.
    session:
        The telemetry session, consulted at ``run_end`` for metric totals
        to persist as samples.
    source:
        Provenance tag on created rows (``"live"``, ``"backfill:..."``).
    """

    def __init__(
        self,
        store: RunStore,
        run_id: Optional[str] = None,
        session: Optional[Any] = None,
        source: str = "live",
    ):
        self.store = store
        self.session = session
        self.source = source
        self._pending_run_id = run_id
        self._run_db_id: Optional[int] = None
        self._incidents: Optional[IncidentTracker] = None
        self._violations = 0
        self._sweep_seen = 0
        self.runs_ingested = 0

    # -- dispatch ------------------------------------------------------------
    def __call__(self, event: Event) -> None:
        if event.layer == "runtime":
            handler = _RUNTIME_HANDLERS.get(event.kind)
            if handler is not None:
                handler(self, event)
        elif event.layer == "experiment" and event.kind == "sweep_cell":
            self._on_sweep_cell(event)

    # -- runtime run lifecycle ----------------------------------------------
    def _on_run_start(self, event: Event) -> None:
        if self._run_db_id is not None:
            # A second deployment in the same session: close the books on
            # the first (its run_end may have been lost to a crash).
            self._finalize({}, at=event.time)
        p = event.payload
        run_id = self._pending_run_id or (
            f"live-{str(p.get('algorithm', '?')).lower()}"
            f"-n{p.get('n')}-seed{p.get('seed')}"
        )
        self._pending_run_id = None
        self._violations = 0
        self._run_db_id = self.store.insert_run(
            run_id,
            kind="live",
            algorithm=p.get("algorithm"),
            n=p.get("n"),
            k=p.get("K"),
            seed=p.get("seed"),
            transport=p.get("transport"),
            started_utc=_time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", _time.gmtime()
            ),
            source=self.source,
            extra={"initial": p.get("initial"),
                   "timer_interval": p.get("timer_interval"),
                   "chaos": p.get("chaos")},
        )
        self.store.add_epoch(
            self._run_db_id, idx=0, label="boot", cls="boot",
            started_at=0.0,
        )
        self._incidents = IncidentTracker(self.store, self._run_db_id)
        self.runs_ingested += 1

    def _on_chaos_script(self, event: Event) -> None:
        if self._run_db_id is None:
            return
        name = event.payload.get("name")
        self.store.update_run(self._run_db_id, script=name)
        if self._incidents is not None:
            self._incidents.set_script(name)

    def _on_disturbance_event(self, event: Event) -> None:
        if self._run_db_id is None:
            return
        p = event.payload
        kind = {
            "chaos": p.get("op"),
            "node_crash": "crash",
            "node_restart": "restart",
            "fault": p.get("fault"),
            "wire_fallback": "wire-fallback",
        }.get(event.kind) or event.kind
        params = {
            k: v for k, v in p.items() if k not in ("op", "fault", "duration")
        }
        self.store.add_disturbance(
            self._run_db_id,
            at=event.time,
            kind=str(kind),
            duration=float(p.get("duration", 0.0) or 0.0),
            params=params or None,
        )

    def _on_epoch_open(self, event: Event) -> None:
        if self._run_db_id is None:
            return
        p = event.payload
        label = str(p.get("label", "?"))
        self.store.add_epoch(
            self._run_db_id,
            idx=int(p.get("index", 0)),
            label=label,
            cls=disturbance_class(label),
            started_at=float(p.get("started_at", event.time)),
        )
        if self._incidents is not None:
            self._incidents.on_disturbance(event.time, label)

    def _on_epoch_stabilized(self, event: Event) -> None:
        if self._run_db_id is None:
            return
        p = event.payload
        self.store.stabilize_epoch(
            self._run_db_id,
            idx=int(p.get("index", 0)),
            stabilized_at=float(p.get("stabilized_at", event.time)),
        )
        if self._incidents is not None:
            self._incidents.on_stabilized(
                float(p.get("stabilized_at", event.time))
            )

    def _on_violation(self, event: Event) -> None:
        if self._run_db_id is None:
            return
        self._violations += 1
        if self._incidents is not None:
            self._incidents.on_violation(event.time, dict(event.payload))

    def _on_run_end(self, event: Event) -> None:
        self._finalize(dict(event.payload), at=event.time)

    def _finalize(self, health: Dict[str, Any], at: float) -> None:
        if self._run_db_id is None:
            return
        run_db_id = self._run_db_id
        columns: Dict[str, Any] = {"wall_seconds": at}
        if health:
            columns.update(
                stabilized=int(bool(health.get("stabilized"))),
                vacancy_instants=int(health.get("vacancy_instants") or 0),
                violations=len(health.get("guarantee_violations") or ())
                or self._violations,
                restarts=health.get("restarts"),
            )
        else:
            columns.update(violations=self._violations)
        self.store.update_run(run_db_id, **columns)
        if self._incidents is not None:
            self._incidents.finalize(at)
        if self.session is not None:
            self._sample_metrics(run_db_id, at)
        self.store.flush()
        self._run_db_id = None
        self._incidents = None

    def _sample_metrics(self, run_db_id: int, at: float) -> None:
        registry = getattr(self.session, "registry", None)
        if registry is None:
            return
        rows = []
        for name in registry.names():
            if not name.startswith(SAMPLED_COUNTER_PREFIXES):
                continue
            metric = registry.get(name)
            total = getattr(metric, "total", None)
            if total is None:
                continue
            rows.append((at, name, float(total()), None))
        if rows:
            self.store.add_samples(run_db_id, rows)

    # -- sweep cells ---------------------------------------------------------
    def _on_sweep_cell(self, event: Event) -> None:
        p = event.payload
        self._sweep_seen += 1
        algorithm = str(p.get("algorithm", "?"))
        n = p.get("n")
        loss = p.get("loss")
        seed = p.get("seed")
        run_id = f"sweep-{algorithm}-n{n}-loss{loss:g}-seed{seed}"
        stabilized_at = p.get("stabilized_at")
        stabilized = (
            stabilized_at is not None
            and math.isfinite(float(stabilized_at))
        )
        run_db_id = self.store.insert_run(
            run_id,
            kind="sweep_cell",
            algorithm=algorithm,
            n=n,
            seed=seed,
            stabilized=int(stabilized),
            wall_seconds=p.get("wall_seconds"),
            source=self.source,
            extra=dict(p),
        )
        self.store.add_epoch(
            run_db_id, idx=0, label="boot", cls="boot", started_at=0.0,
            stabilized_at=float(stabilized_at) if stabilized else None,
        )
        samples = [
            (float(p.get("wall_seconds") or 0.0), name, float(p[name]), None)
            for name in ("min_tokens", "max_tokens", "zero_time", "events")
            if p.get(name) is not None
        ]
        if samples:
            self.store.add_samples(run_db_id, samples)
        self.runs_ingested += 1

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Flush buffered rows (the store itself stays open)."""
        if self._run_db_id is not None:
            # The session ended without a run_end (crash / ctrl-C): keep
            # what we have, leaving stabilized NULL to mark the truncation.
            self._finalize({}, at=0.0)
        self.store.flush()


_RUNTIME_HANDLERS = {
    "run_start": StoreSubscriber._on_run_start,
    "chaos_script": StoreSubscriber._on_chaos_script,
    "chaos": StoreSubscriber._on_disturbance_event,
    "node_crash": StoreSubscriber._on_disturbance_event,
    "node_restart": StoreSubscriber._on_disturbance_event,
    "fault": StoreSubscriber._on_disturbance_event,
    "wire_fallback": StoreSubscriber._on_disturbance_event,
    "epoch_open": StoreSubscriber._on_epoch_open,
    "epoch_stabilized": StoreSubscriber._on_epoch_stabilized,
    "violation": StoreSubscriber._on_violation,
    "run_end": StoreSubscriber._on_run_end,
}


__all__ = ["SAMPLED_COUNTER_PREFIXES", "StoreSubscriber"]
