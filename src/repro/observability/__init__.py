"""Operator-grade observability: run store, SLO engine, incidents, ``top``.

This package turns the repo's telemetry exhaust (event bus, manifests,
health reports) into an operator surface:

* :mod:`~repro.observability.store` — the persistent sqlite run store
  (``runs/store.sqlite``): runs, epochs, disturbances, metric samples and
  incidents, queryable via ``repro runs list|show|query``;
* :mod:`~repro.observability.ingest` — the live EventBus subscriber that
  feeds the store from runtime deployments and Monte-Carlo sweeps;
* :mod:`~repro.observability.backfill` — the importer for pre-store
  ``runs/`` JSONL trees;
* :mod:`~repro.observability.slo` — paper-grounded service objectives
  (p50/p99 time-to-restabilize per disturbance class, the zero-vacancy
  graceful-handover guarantee, census bounds, availability) with
  error-budget accounting, behind ``repro slo report``;
* :mod:`~repro.observability.incidents` — structured incident records
  opened when the health monitor trips or an SLO burns budget;
* :mod:`~repro.observability.dashboard` — the ``repro top`` live terminal
  dashboard and the row renderer shared with ``repro live status --watch``.

See ``docs/OBSERVABILITY.md`` for the schema, SLO spec format and the
incident lifecycle.
"""

from repro.observability.backfill import (
    BackfillReport,
    backfill_runs,
    import_manifest,
)
from repro.observability.dashboard import (
    RingRow,
    TopRingSpec,
    render_rows,
    run_top_fleet,
    top_curses,
    top_plain,
)
from repro.observability.incidents import IncidentTracker, render_incidents
from repro.observability.ingest import StoreSubscriber
from repro.observability.slo import (
    SloResult,
    SloSpec,
    default_slos,
    disturbance_class,
    evaluate_slos,
    load_slo_specs,
    merge_epochs,
    quantile,
    render_slo_report,
    restabilize_stats,
    vacancy_stats,
)
from repro.observability.store import DEFAULT_STORE_PATH, RunStore

__all__ = [
    "BackfillReport",
    "DEFAULT_STORE_PATH",
    "IncidentTracker",
    "RingRow",
    "RunStore",
    "SloResult",
    "SloSpec",
    "StoreSubscriber",
    "TopRingSpec",
    "backfill_runs",
    "default_slos",
    "disturbance_class",
    "evaluate_slos",
    "import_manifest",
    "load_slo_specs",
    "merge_epochs",
    "quantile",
    "render_incidents",
    "render_rows",
    "render_slo_report",
    "restabilize_stats",
    "run_top_fleet",
    "top_curses",
    "top_plain",
    "vacancy_stats",
]
