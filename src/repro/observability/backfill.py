"""Backfill: import an existing ``runs/`` JSONL tree into the run store.

The telemetry layer has been writing ``runs/<run-id>/manifest.json`` (+
optional ``trace.jsonl``) since PR 1; the run store post-dates all of it.
:func:`backfill_runs` walks such a tree and indexes what it finds:

* a **manifest** becomes a ``runs`` row (kind ``live`` when it carries an
  ``extra.live`` report, else ``experiment``), with the live health block
  expanded into epoch rows, reconstructed incident records, and metric
  totals persisted as samples;
* a **trace** is scanned for ``experiment/sweep_cell`` events, each
  ingested as a ``sweep_cell`` run through the same
  :class:`~repro.observability.ingest.StoreSubscriber` path live sweeps
  use;
* a directory with only an **empty or missing** artifact set (the stray
  ``runs/nope`` left by an interrupted run) is reported as an orphan and,
  with ``prune_empty=True``, deleted;
* a directory that holds *other* content — nested directories or
  non-telemetry files, e.g. the sweep checkpoints under ``runs/sweeps/``
  — is **not a run directory at all**: it is skipped with a warning,
  never treated as an orphan and never pruned.

Imports are idempotent: ``run_id`` is unique in the store, so re-running
the importer refreshes rows instead of duplicating them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.observability.incidents import (
    KIND_DISTURBANCE,
    KIND_UNRESOLVED,
)
from repro.observability.slo import disturbance_class, merge_epochs
from repro.observability.store import RunStore
from repro.telemetry.events import Event


@dataclass
class BackfillReport:
    """What one importer pass did."""

    imported: List[str] = field(default_factory=list)
    sweep_cells: int = 0
    orphans: List[str] = field(default_factory=list)
    pruned: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        """One-line human report for the CLI."""
        parts = [
            f"imported {len(self.imported)} run(s)",
            f"{self.sweep_cells} sweep cell(s)",
            f"{len(self.orphans)} orphan dir(s)",
        ]
        if self.pruned:
            parts.append(f"pruned {len(self.pruned)}")
        if self.skipped:
            parts.append(f"skipped {len(self.skipped)} non-run dir(s)")
        if self.errors:
            parts.append(f"{len(self.errors)} error(s)")
        return ", ".join(parts)

    def to_json(self) -> dict:
        """JSON-able form (``repro runs backfill --json``)."""
        return {
            "imported": list(self.imported),
            "sweep_cells": self.sweep_cells,
            "orphans": list(self.orphans),
            "pruned": list(self.pruned),
            "skipped": list(self.skipped),
            "warnings": list(self.warnings),
            "errors": list(self.errors),
        }


def _manifest_metric_samples(manifest: Dict[str, Any]) -> List[tuple]:
    """(time, name, total, None) rows from a manifest's counter snapshot."""
    rows = []
    wall = float(manifest.get("wall_seconds") or 0.0)
    counters = (manifest.get("metrics") or {}).get("counters", {})
    for name, family in counters.items():
        total = sum(
            float(series.get("value") or 0.0)
            for series in family.get("series", ())
        )
        if total:
            rows.append((wall, name, total, None))
    return rows


def _import_health_block(
    store: RunStore, run_db_id: int, health: Dict[str, Any],
    script: Optional[str],
) -> None:
    """Expand a manifest's recorded health block into epochs + incidents."""
    epochs = health.get("epochs") or []
    for idx, epoch in enumerate(epochs):
        label = str(epoch.get("label", "?"))
        store.add_epoch(
            run_db_id,
            idx=idx,
            label=label,
            cls=disturbance_class(label),
            started_at=float(epoch.get("started_at") or 0.0),
            stabilized_at=epoch.get("stabilized_at"),
        )
    # Reconstruct incident records from the merged-epoch view: every
    # disturbance epoch is one incident, resolved at its stabilization.
    for merged in merge_epochs(epochs):
        if merged["class"] == "boot" and len(merged["labels"]) == 1:
            continue  # a clean boot is not an incident
        resolved = merged["stabilized_at"]
        incident_id = store.open_incident(
            run_db_id=run_db_id,
            opened_at=float(merged["first_started_at"] or 0.0),
            kind=KIND_DISTURBANCE if resolved is not None
            else KIND_UNRESOLVED,
            severity="warning" if resolved is not None else "critical",
            title=(
                f"ring disturbed: {'+'.join(sorted(set(merged['labels'])))}"
                + (f" [script {script}]" if script else "")
            ),
            details={
                "labels": merged["labels"],
                "classes": [merged["class"]],
                "first_disturbance_at": merged["first_started_at"],
                "last_disturbance_at": merged["started_at"],
                "disturbances": merged["disturbances"],
                "script": script,
                "backfilled": True,
            },
        )
        if resolved is not None:
            store.update_incident(incident_id, resolved_at=float(resolved))
    for violation in health.get("guarantee_violations") or ():
        incident_id = store.open_incident(
            run_db_id=run_db_id,
            opened_at=float(violation.get("time") or 0.0),
            kind="guarantee-breach",
            severity="critical",
            title=(
                f"token guarantee breached in epoch "
                f"{violation.get('epoch', '?')}"
            ),
            details={"violation": dict(violation), "backfilled": True},
        )
        store.update_incident(
            incident_id, resolved_at=float(violation.get("time") or 0.0)
        )


def import_manifest(
    store: RunStore, path: str, source: Optional[str] = None
) -> str:
    """Import one ``manifest.json``; returns the run id it landed under."""
    with open(path) as fh:
        manifest = json.load(fh)
    run_id = manifest.get("experiment_id") or os.path.basename(
        os.path.dirname(os.path.abspath(path))
    )
    live = (manifest.get("extra") or {}).get("live")
    descriptors = manifest.get("runs") or []
    first = descriptors[0] if descriptors else {}
    columns: Dict[str, Any] = dict(
        started_utc=manifest.get("created_utc"),
        wall_seconds=manifest.get("wall_seconds"),
        source=source or f"backfill:{path}",
        extra={"command": manifest.get("command"),
               "package": manifest.get("package")},
    )
    if live:
        health = live.get("health") or {}
        script = (live.get("script") or {}).get("name")
        columns.update(
            algorithm=live.get("algorithm"),
            n=live.get("n"),
            k=live.get("K"),
            seed=live.get("seed"),
            transport=live.get("transport"),
            script=script,
            stabilized=int(bool(health.get("stabilized"))),
            vacancy_instants=health.get("vacancy_instants"),
            violations=len(health.get("guarantee_violations") or ()),
            restarts=live.get("restarts"),
        )
        run_db_id = store.insert_run(run_id, kind="live", **columns)
        _import_health_block(store, run_db_id, health, script)
    else:
        columns.update(
            algorithm=first.get("algorithm"),
            n=first.get("n"),
            k=first.get("K"),
            seed=first.get("seed"),
        )
        run_db_id = store.insert_run(run_id, kind="experiment", **columns)
    samples = _manifest_metric_samples(manifest)
    if samples:
        store.add_samples(run_db_id, samples)
    return run_id


def import_trace_sweep_cells(
    store: RunStore, path: str, source: Optional[str] = None
) -> int:
    """Scan one trace for sweep-cell events; returns cells ingested."""
    from repro.observability.ingest import StoreSubscriber

    subscriber = StoreSubscriber(
        store, source=source or f"backfill:{path}"
    )
    cells = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or '"sweep_cell"' not in line:
                continue
            row = json.loads(line)
            if row.get("kind") != "sweep_cell":
                continue
            subscriber(Event.from_json(row))
            cells += 1
    subscriber.close()
    return cells


def _dir_is_empty_artifacts(path: str) -> bool:
    """True when the directory holds nothing but empty telemetry files."""
    try:
        for name in os.listdir(path):
            full = os.path.join(path, name)
            if os.path.isdir(full) or os.path.getsize(full) > 0:
                return False
    except OSError:
        return False
    return True


def backfill_runs(
    store: RunStore,
    base_dir: str = "runs",
    prune_empty: bool = False,
) -> BackfillReport:
    """Import every run directory under ``base_dir`` into the store."""
    report = BackfillReport()
    if not os.path.isdir(base_dir):
        report.errors.append(f"{base_dir}: not a directory")
        return report
    for name in sorted(os.listdir(base_dir)):
        run_dir = os.path.join(base_dir, name)
        if not os.path.isdir(run_dir):
            continue
        manifest_path = os.path.join(run_dir, "manifest.json")
        trace_path = os.path.join(run_dir, "trace.jsonl")
        imported_something = False
        if os.path.isfile(manifest_path):
            try:
                run_id = import_manifest(store, manifest_path)
                report.imported.append(run_id)
                imported_something = True
            except (OSError, ValueError, KeyError) as exc:
                report.errors.append(f"{manifest_path}: {exc}")
        if os.path.isfile(trace_path) and os.path.getsize(trace_path) > 0:
            try:
                cells = import_trace_sweep_cells(store, trace_path)
                report.sweep_cells += cells
                imported_something = imported_something or cells > 0
            except (OSError, ValueError) as exc:
                report.errors.append(f"{trace_path}: {exc}")
        if not imported_something and not os.path.isfile(manifest_path):
            # No manifest, nothing ingested.  Distinguish the two shapes:
            # an abandoned run skeleton (only empty telemetry files) is an
            # orphan; anything else under base_dir — sweep checkpoints,
            # nested trees, stray user files — is simply not a run
            # directory, and gets a warning instead of orphan treatment.
            if _dir_is_empty_artifacts(run_dir):
                report.orphans.append(run_dir)
                if prune_empty:
                    try:
                        for entry in os.listdir(run_dir):
                            os.remove(os.path.join(run_dir, entry))
                        os.rmdir(run_dir)
                        report.pruned.append(run_dir)
                    except OSError as exc:
                        report.warnings.append(
                            f"{run_dir}: could not prune ({exc})"
                        )
            else:
                report.skipped.append(run_dir)
                report.warnings.append(
                    f"{run_dir}: not a run directory (no manifest.json); "
                    f"skipped"
                )
    store.flush()
    return report


__all__ = [
    "BackfillReport",
    "backfill_runs",
    "import_manifest",
    "import_trace_sweep_cells",
]
