"""Structured incident records for live rings.

An **incident** is the operator-facing unit of "the ring was not healthy":
it opens when the :class:`~repro.runtime.health.HealthMonitor` trips — a
disturbance knocks the ring out of its stabilized state — and resolves at
the instant the ring is legitimate + coherent again.  Back-to-back faults
(a chaos storm, a crash mid-loss-window) *extend* the open incident rather
than opening a parade of half-second records, mirroring
:func:`~repro.observability.slo.merge_epochs`.  Guarantee violations
(a token-census breach after stabilization — a Theorem 3 failure for
SSRmin) escalate the open incident to ``critical``, or open a fresh one if
the ring was nominally stabilized when the breach was observed.

Each record persists to the run store with the triggering event window
(first/last disturbance, labels), the chaos-script context when one is
running, and resolution timestamps — enough to replay the window from the
run's JSONL trace.  SLO budget burns open their own ``slo-burn`` incidents
from :func:`~repro.observability.slo.evaluate_slos`.

The :class:`IncidentTracker` is driven by the
:class:`~repro.observability.ingest.StoreSubscriber`'s event stream; it
holds at most one open disturbance incident per run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.observability.slo import disturbance_class
from repro.observability.store import RunStore

#: Incident kinds written by this tracker.
KIND_DISTURBANCE = "disturbance"
KIND_GUARANTEE = "guarantee-breach"
KIND_UNRESOLVED = "stabilization-timeout"


class IncidentTracker:
    """Opens/extends/resolves one run's incidents in the store."""

    def __init__(self, store: RunStore, run_db_id: int):
        self.store = store
        self.run_db_id = run_db_id
        self._open_id: Optional[int] = None
        self._details: Dict[str, Any] = {}
        self._script: Optional[str] = None
        #: Last resolved disturbance incident, kept so a fault window's
        #: synthetic ``*-healed`` epoch boundary re-opens it instead of
        #: filing a second record for the same window.
        self._resolved_id: Optional[int] = None
        self._resolved_details: Dict[str, Any] = {}
        self.opened_total = 0

    # -- context -------------------------------------------------------------
    def set_script(self, name: Optional[str]) -> None:
        """Record the chaos script driving this run (incident context)."""
        self._script = name

    # -- lifecycle -----------------------------------------------------------
    def on_disturbance(self, time: float, label: str,
                       payload: Optional[dict] = None) -> int:
        """A disturbance epoch opened; open or extend the incident."""
        cls = disturbance_class(label)
        if (
            self._open_id is None
            and self._resolved_id is not None
            and "-healed" in label
            and cls in self._resolved_details.get("classes", ())
        ):
            # The window whose onset we already recorded just closed: same
            # outage, so re-open its incident for the re-stabilization leg.
            self._open_id = self._resolved_id
            self._details = self._resolved_details
            self._resolved_id = None
            self._resolved_details = {}
            self.store.update_incident(self._open_id, reopen=True)
        if self._open_id is not None:
            # The ring never restabilized since the previous fault: this is
            # the same outage getting worse, not a new incident.
            details = self._details
            details["labels"].append(label)
            details["classes"] = sorted(set(details["classes"]) | {cls})
            details["last_disturbance_at"] = time
            details["disturbances"] += 1
            self.store.update_incident(
                self._open_id,
                title=self._title(details),
                details=details,
            )
            return self._open_id
        details: Dict[str, Any] = {
            "labels": [label],
            "classes": [cls],
            "first_disturbance_at": time,
            "last_disturbance_at": time,
            "disturbances": 1,
            "violations": 0,
            "script": self._script,
        }
        if payload:
            details["trigger"] = dict(payload)
        self._details = details
        self._open_id = self.store.open_incident(
            run_db_id=self.run_db_id,
            opened_at=time,
            kind=KIND_DISTURBANCE,
            severity="warning",
            title=self._title(details),
            details=details,
        )
        self.opened_total += 1
        return self._open_id

    def on_stabilized(self, time: float) -> None:
        """The ring is legitimate + coherent again; resolve the incident."""
        if self._open_id is None:
            return
        details = self._details
        details["resolved_after"] = time - details["last_disturbance_at"]
        self.store.update_incident(
            self._open_id, resolved_at=time, details=details,
        )
        self._resolved_id = self._open_id
        self._resolved_details = details
        self._open_id = None
        self._details = {}

    def on_violation(self, time: float, payload: dict) -> None:
        """A post-stabilization token-guarantee breach was observed."""
        if self._open_id is not None:
            details = self._details
            details["violations"] += 1
            details.setdefault("violation_samples", [])
            if len(details["violation_samples"]) < 5:
                details["violation_samples"].append(dict(payload))
            self.store.update_incident(
                self._open_id, severity="critical", details=details,
            )
            return
        # Breach on a nominally stabilized ring: its own critical incident,
        # resolved immediately (the breach is instantaneous by definition).
        incident_id = self.store.open_incident(
            run_db_id=self.run_db_id,
            opened_at=time,
            kind=KIND_GUARANTEE,
            severity="critical",
            title=(
                f"token guarantee breached in epoch "
                f"{payload.get('epoch', '?')}"
            ),
            details={"violation": dict(payload), "script": self._script},
        )
        self.store.update_incident(incident_id, resolved_at=time)
        self.opened_total += 1

    def finalize(self, time: float) -> None:
        """Run ended; an incident still open becomes a timeout record."""
        if self._open_id is None:
            return
        details = self._details
        details["run_ended_at"] = time
        self.store.update_incident(
            self._open_id,
            severity="critical",
            title=self._title(details) + " (never restabilized)",
            details=details,
            kind=KIND_UNRESOLVED,
        )
        self._open_id = None
        self._details = {}

    # -- rendering -----------------------------------------------------------
    @staticmethod
    def _title(details: Dict[str, Any]) -> str:
        classes = "+".join(details["classes"])
        count = details["disturbances"]
        base = f"ring disturbed: {classes}"
        if count > 1:
            base += f" ({count} faults)"
        if details.get("script"):
            base += f" [script {details['script']}]"
        return base


def render_incidents(rows: List[Dict[str, Any]]) -> List[str]:
    """Human-readable incident listing (``repro runs show``)."""
    lines = []
    for inc in rows:
        resolved = inc.get("resolved_at")
        status = (
            f"resolved at {resolved:.3f}s" if resolved is not None
            else "OPEN"
        )
        lines.append(
            f"  #{inc['id']} [{inc['severity']}] {inc['kind']} "
            f"@{(inc.get('opened_at') or 0.0):.3f}s — "
            f"{inc.get('title') or ''} ({status})"
        )
    return lines


__all__ = [
    "IncidentTracker",
    "KIND_DISTURBANCE",
    "KIND_GUARANTEE",
    "KIND_UNRESOLVED",
    "render_incidents",
]
