"""The live control surface: ``repro top`` and the shared row renderer.

``repro top`` boots a small fleet of live rings in-process (one
:class:`~repro.runtime.supervisor.RingSupervisor` each, optionally with a
chaos script playing against every ring) and redraws a terminal dashboard
every refresh interval: per-ring token position, own-view census,
legitimacy + cache coherence, the current epoch with its restabilization
clock, vacancy / violation counters and message rates — the quantities the
paper proves bounds for, live.  Each ring's runtime events stream into the
run store through a :class:`~repro.observability.ingest.StoreSubscriber`
on the supervisor's own bus, so a ``repro top`` session leaves queryable
runs behind when it exits.

The same :func:`render_rows` renderer backs ``repro live status --watch``
(rows built from recorded manifests instead of live monitors), so the two
surfaces cannot drift apart.

Two frontends share the async fleet loop: a curses screen (interactive
terminals; ``q`` quits early) and a plain-text frame printer (pipes, CI,
tests).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.observability.ingest import StoreSubscriber
from repro.observability.store import RunStore

#: Column layout shared by ``repro top`` and ``live status --watch``.
_COLUMNS = (
    ("RING", 22), ("ALG", 9), ("N", 3), ("TOK", 5), ("CENSUS", 6),
    ("LEG", 3), ("COH", 3), ("EPOCH", 18), ("CLOCK", 9), ("VAC", 4),
    ("VIOL", 4), ("RST", 3), ("STATUS", 10),
)


@dataclass
class RingRow:
    """One ring's worth of dashboard state (live or historical)."""

    name: str
    algorithm: str = "?"
    n: int = 0
    holders: Sequence[int] = ()
    census: Optional[int] = None
    legitimate: Optional[bool] = None
    coherent: Optional[bool] = None
    epoch_label: str = "-"
    #: Seconds since the epoch opened (ticking while converging) or the
    #: recorded time-to-stabilize once the epoch closed.
    clock: Optional[float] = None
    converging: bool = False
    vacancy_instants: int = 0
    violations: int = 0
    restarts: int = 0
    status: str = "-"

    @classmethod
    def from_supervisor(cls, name: str, supervisor: Any) -> "RingRow":
        """Read one live supervisor's current state (same event loop)."""
        health = supervisor.health
        snap = health.snapshot()
        epoch = health.current_epoch
        stabilized = epoch.stabilized_at is not None
        final = len(health.epochs) - 1
        breached = any(
            v["epoch_index"] == final for v in health.guarantee_violations
        )
        if breached:
            status = "BREACH"
        elif stabilized:
            status = "STABLE"
        else:
            status = "CONVERGING"
        return cls(
            name=name,
            algorithm=type(supervisor.algorithm).__name__,
            n=supervisor.n,
            holders=snap.own_view_holders,
            census=len(snap.own_view_holders),
            legitimate=snap.legitimate,
            coherent=snap.coherent,
            epoch_label=epoch.label,
            clock=(
                epoch.time_to_stabilize if stabilized
                else supervisor.clock() - epoch.started_at
            ),
            converging=not stabilized,
            vacancy_instants=health.vacancy_instants,
            violations=len(health.guarantee_violations),
            restarts=supervisor.total_restarts,
            status=status,
        )

    @classmethod
    def from_live_report(cls, name: str, live: Dict[str, Any]) -> "RingRow":
        """Build a row from a recorded ``extra.live`` manifest block."""
        health = live.get("health") or {}
        epochs = health.get("epochs") or [{}]
        final = epochs[-1]
        stabilized = bool(health.get("stabilized"))
        violations = health.get("guarantee_violations") or []
        breached = any(
            v.get("epoch_index") == len(epochs) - 1 for v in violations
        )
        lo = health.get("post_stab_min_holders")
        return cls(
            name=name,
            algorithm=str(live.get("algorithm", "?")),
            n=int(live.get("n") or 0),
            holders=(),
            census=lo,
            legitimate=stabilized or None,
            coherent=stabilized or None,
            epoch_label=str(final.get("label", "-")),
            clock=final.get("time_to_stabilize"),
            converging=not stabilized,
            vacancy_instants=int(health.get("vacancy_instants") or 0),
            violations=len(violations),
            restarts=int(live.get("restarts") or 0),
            status="BREACH" if breached
            else ("STABLE" if stabilized else "FAIL"),
        )


def _flag(value: Optional[bool]) -> str:
    if value is None:
        return "-"
    return "y" if value else "N"


def render_rows(rows: Sequence[RingRow]) -> List[str]:
    """Fixed-width dashboard table: one header plus one line per ring."""
    header = "  ".join(f"{title:<{width}s}" for title, width in _COLUMNS)
    lines = [header, "-" * len(header)]
    for row in rows:
        if row.holders:
            token = str(min(row.holders))
        elif row.census is not None and row.census > 0:
            token = "*"
        else:
            token = "-"
        if row.clock is None:
            clock = "-"
        else:
            clock = f"{row.clock:7.3f}s" + ("+" if row.converging else " ")
        cells = (
            row.name[: _COLUMNS[0][1]],
            row.algorithm[: _COLUMNS[1][1]],
            str(row.n),
            token,
            str(row.census) if row.census is not None else "-",
            _flag(row.legitimate),
            _flag(row.coherent),
            row.epoch_label[: _COLUMNS[7][1]],
            clock,
            str(row.vacancy_instants),
            str(row.violations),
            str(row.restarts),
            row.status,
        )
        lines.append(
            "  ".join(
                f"{cell:<{width}s}"
                for cell, (_, width) in zip(cells, _COLUMNS)
            ).rstrip()
        )
    return lines


# -- the live fleet loop ------------------------------------------------------


@dataclass(frozen=True)
class TopRingSpec:
    """One ring of a ``repro top`` fleet."""

    name: str
    algorithm: str = "ssrmin"
    n: int = 5
    K: Optional[int] = None
    seed: int = 0
    transport: str = "loopback"
    timer_interval: float = 0.1
    initial: str = "legitimate"
    script: Optional[str] = None


async def run_top_fleet(
    specs: Sequence[TopRingSpec],
    duration: float,
    refresh: float,
    on_frame: Callable[[List[str]], Optional[bool]],
    store: Optional[RunStore] = None,
) -> List[dict]:
    """Boot the fleet, stream frames, drain; returns the run reports.

    ``on_frame`` receives the rendered lines each tick; returning ``True``
    stops the loop early (the curses frontend maps ``q`` to this).
    """
    from repro.runtime.chaos import build_script
    from repro.runtime.harness import build_algorithm
    from repro.runtime.supervisor import RingSupervisor

    supervisors: List[RingSupervisor] = []
    subscribers: List[StoreSubscriber] = []
    for spec in specs:
        supervisor = RingSupervisor(
            build_algorithm(spec.algorithm, spec.n, spec.K),
            transport=spec.transport,
            chaos=spec.script is not None,
            initial=spec.initial,
            seed=spec.seed,
            timer_interval=spec.timer_interval,
        )
        if store is not None:
            subscriber = StoreSubscriber(
                store, run_id=f"top-{spec.name}", source="top"
            )
            supervisor.bus.subscribe(subscriber)
            subscribers.append(subscriber)
        supervisors.append(supervisor)

    chaos_tasks: List[asyncio.Task] = []
    try:
        for spec, supervisor in zip(specs, supervisors):
            await supervisor.boot()
            if spec.script is not None:
                chaos_tasks.append(asyncio.ensure_future(
                    supervisor.run_chaos(
                        build_script(spec.script, spec.n, spec.seed)
                    )
                ))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + duration if duration > 0 else None
        while True:
            rows = [
                RingRow.from_supervisor(spec.name, supervisor)
                for spec, supervisor in zip(specs, supervisors)
            ]
            if on_frame(render_rows(rows)):
                break
            if deadline is not None and loop.time() >= deadline:
                break
            await asyncio.sleep(refresh)
    finally:
        for task in chaos_tasks:
            task.cancel()
        for task in chaos_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        for supervisor in supervisors:
            await supervisor.shutdown()
        for subscriber in subscribers:
            subscriber.close()
    return [supervisor.report() for supervisor in supervisors]


def top_plain(
    specs: Sequence[TopRingSpec],
    duration: float,
    refresh: float,
    store: Optional[RunStore] = None,
    out: Optional[Callable[[str], None]] = None,
    ansi: bool = False,
) -> List[dict]:
    """Frame-per-tick text frontend (pipes, CI, tests)."""
    emit = out if out is not None else print
    frames = [0]

    def on_frame(lines: List[str]) -> bool:
        if ansi:
            emit("\x1b[H\x1b[2J")
        frames[0] += 1
        emit(f"repro top — frame {frames[0]}")
        for line in lines:
            emit(line)
        emit("")
        return False

    return asyncio.run(
        run_top_fleet(specs, duration, refresh, on_frame, store=store)
    )


def top_curses(
    specs: Sequence[TopRingSpec],
    duration: float,
    refresh: float,
    store: Optional[RunStore] = None,
) -> List[dict]:  # pragma: no cover - interactive terminal path
    """Curses frontend: full-screen redraws, ``q`` quits."""
    import curses

    def main(screen) -> List[dict]:
        curses.curs_set(0)
        screen.nodelay(True)

        def on_frame(lines: List[str]) -> bool:
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            screen.addnstr(
                0, 0,
                "repro top — q to quit",
                max_x - 1, curses.A_BOLD,
            )
            for i, line in enumerate(lines, start=2):
                if i >= max_y:
                    break
                screen.addnstr(i, 0, line, max_x - 1)
            screen.refresh()
            try:
                return screen.getch() in (ord("q"), ord("Q"))
            except curses.error:
                return False

        return asyncio.run(
            run_top_fleet(specs, duration, refresh, on_frame, store=store)
        )

    return curses.wrapper(main)


__all__ = [
    "RingRow",
    "TopRingSpec",
    "render_rows",
    "run_top_fleet",
    "top_curses",
    "top_plain",
]
