"""The persistent run store: a sqlite index over every run the repo emits.

Telemetry so far has been file-shaped — a ``manifest.json`` + ``trace.jsonl``
pair per run directory — which answers "what happened in *this* run" but not
the operator questions ("p99 time-to-restabilize across last night's chaos
campaigns", "which runs ever dropped the token").  The :class:`RunStore`
keeps one sqlite database (canonically ``runs/store.sqlite``) with these
tables:

* ``runs`` — one row per run: live deployments, registry experiments,
  Monte-Carlo sweep cells, backfilled manifests;
* ``epochs`` — one row per disturbance-to-stabilization interval of a run
  (the :class:`~repro.runtime.health.Epoch` record, plus the disturbance
  class extracted from its label);
* ``disturbances`` — the raw fault feed (chaos ops, crashes, restarts,
  corruptions) with their parameters;
* ``samples`` — named numeric samples (metric totals at run end, sweep-cell
  observables) for ad-hoc SQL analysis;
* ``incidents`` — structured incident records (see
  :mod:`repro.observability.incidents`);
* ``campaigns`` — one row per declarative chaos campaign (see
  :mod:`repro.chaoslab.campaign`), its member runs tagged via
  ``runs.campaign``;
* ``sweeps`` / ``sweep_cells`` — the resumable phase-diagram sweep
  engine's manifest index (:mod:`repro.sweeps.store`): one row per named
  sweep plus one row per completed cell, keyed ``(sweep_id, cell_index)``
  so re-recording a cell upserts instead of duplicating.

Rows arrive either **live** — the
:class:`~repro.observability.ingest.StoreSubscriber` attached to a telemetry
session — or via the **backfill importer**
(:func:`~repro.observability.backfill.backfill_runs`) over an existing
``runs/`` JSONL tree.  Reads power ``repro runs list|show|query``,
``repro slo report`` and the incident listing.

Writes are buffered: the store commits every :data:`COMMIT_EVERY`
mutations and on :meth:`RunStore.flush`/:meth:`RunStore.close`, so a
subscriber in a hot loop costs an in-memory ``INSERT`` per event, not an
fsync.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Schema version stamped into ``PRAGMA user_version``; bump on
#: incompatible changes (the store refuses to open newer schemas).
#: v2: ``campaigns`` table + ``runs.campaign`` column (chaos campaigns).
#: v3: ``sweeps`` + ``sweep_cells`` tables (the resumable sweep engine's
#: manifest index; purely additive, so the migration is just the schema
#: script creating the missing tables).
SCHEMA_VERSION = 3

#: Mutations between commits (a run's worth of events lands in one or two
#: transactions; ``flush()`` forces the tail out).
COMMIT_EVERY = 64

#: Default on-disk location, next to the per-run JSONL directories.
DEFAULT_STORE_PATH = os.path.join("runs", "store.sqlite")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY,
    run_id        TEXT NOT NULL UNIQUE,
    kind          TEXT NOT NULL,
    algorithm     TEXT,
    n             INTEGER,
    k             INTEGER,
    seed          INTEGER,
    transport     TEXT,
    script        TEXT,
    started_utc   TEXT,
    wall_seconds  REAL,
    stabilized    INTEGER,
    vacancy_instants INTEGER,
    violations    INTEGER,
    restarts      INTEGER,
    source        TEXT,
    extra         TEXT,
    campaign      TEXT
);
CREATE TABLE IF NOT EXISTS epochs (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    idx           INTEGER NOT NULL,
    label         TEXT,
    class         TEXT,
    started_at    REAL,
    stabilized_at REAL,
    time_to_stabilize REAL
);
CREATE TABLE IF NOT EXISTS disturbances (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    at            REAL,
    kind          TEXT,
    duration      REAL,
    params        TEXT
);
CREATE TABLE IF NOT EXISTS samples (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    time          REAL,
    name          TEXT NOT NULL,
    value         REAL,
    labels        TEXT
);
CREATE TABLE IF NOT EXISTS incidents (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER REFERENCES runs(id) ON DELETE CASCADE,
    opened_at     REAL,
    resolved_at   REAL,
    kind          TEXT NOT NULL,
    severity      TEXT NOT NULL,
    title         TEXT,
    details       TEXT
);
CREATE TABLE IF NOT EXISTS campaigns (
    id            INTEGER PRIMARY KEY,
    name          TEXT NOT NULL UNIQUE,
    spec          TEXT,
    started_utc   TEXT,
    wall_seconds  REAL,
    cells         INTEGER,
    completed     INTEGER,
    aborted       INTEGER,
    breaches      INTEGER,
    report        TEXT
);
CREATE TABLE IF NOT EXISTS sweeps (
    id            INTEGER PRIMARY KEY,
    name          TEXT NOT NULL UNIQUE,
    spec          TEXT,
    directory     TEXT,
    created_utc   TEXT,
    updated_utc   TEXT,
    cells         INTEGER,
    completed     INTEGER,
    status        TEXT,
    wall_seconds  REAL,
    report        TEXT
);
CREATE TABLE IF NOT EXISTS sweep_cells (
    id            INTEGER PRIMARY KEY,
    sweep_id      INTEGER NOT NULL REFERENCES sweeps(id) ON DELETE CASCADE,
    cell_index    INTEGER NOT NULL,
    cell_key      TEXT,
    params        TEXT,
    seed          INTEGER,
    engine        TEXT,
    wall_seconds  REAL,
    result        TEXT,
    UNIQUE (sweep_id, cell_index)
);
CREATE INDEX IF NOT EXISTS idx_epochs_run ON epochs(run_id);
CREATE INDEX IF NOT EXISTS idx_sweep_cells_sweep ON sweep_cells(sweep_id);
CREATE INDEX IF NOT EXISTS idx_runs_campaign ON runs(campaign);
CREATE INDEX IF NOT EXISTS idx_epochs_class ON epochs(class);
CREATE INDEX IF NOT EXISTS idx_disturbances_run ON disturbances(run_id);
CREATE INDEX IF NOT EXISTS idx_samples_run ON samples(run_id, name);
CREATE INDEX IF NOT EXISTS idx_incidents_run ON incidents(run_id);
"""

#: Columns of ``runs`` settable through :meth:`RunStore.insert_run` /
#: :meth:`RunStore.update_run` (everything except the rowid).
RUN_COLUMNS = (
    "run_id", "kind", "algorithm", "n", "k", "seed", "transport", "script",
    "started_utc", "wall_seconds", "stabilized", "vacancy_instants",
    "violations", "restarts", "source", "extra", "campaign",
)

#: Columns of ``campaigns`` settable through :meth:`RunStore.insert_campaign`.
CAMPAIGN_COLUMNS = (
    "spec", "started_utc", "wall_seconds", "cells", "completed",
    "aborted", "breaches", "report",
)

#: Columns of ``sweeps`` settable through :meth:`RunStore.upsert_sweep`.
SWEEP_COLUMNS = (
    "spec", "directory", "created_utc", "updated_utc", "cells",
    "completed", "status", "wall_seconds", "report",
)

#: Columns of ``sweep_cells`` settable through
#: :meth:`RunStore.upsert_sweep_cell` (besides the identifying pair).
SWEEP_CELL_COLUMNS = (
    "cell_key", "params", "seed", "engine", "wall_seconds", "result",
)


def _jsonify(value: Any) -> Optional[str]:
    """JSON-encode dict/list payload columns (None passes through)."""
    if value is None or isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, default=str)


def _row_to_dict(cursor: sqlite3.Cursor, row: Sequence[Any]) -> Dict[str, Any]:
    out = {desc[0]: value for desc, value in zip(cursor.description, row)}
    for key in ("extra", "params", "labels", "details", "result"):
        if isinstance(out.get(key), str):
            try:
                out[key] = json.loads(out[key])
            except ValueError:
                pass
    return out


class RunStore:
    """One sqlite database of runs, epochs, disturbances, samples, incidents.

    Parameters
    ----------
    path:
        Database file (parent directories are created); ``":memory:"``
        keeps everything in-process (tests, benchmarks).
    """

    def __init__(self, path: str = DEFAULT_STORE_PATH):
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._pending = 0
        self._closed = False
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise RuntimeError(
                f"{path}: store schema v{version} is newer than this "
                f"package understands (v{SCHEMA_VERSION})"
            )
        if version < SCHEMA_VERSION:
            # Column migrations must land before the schema script: its
            # CREATE INDEX statements reference the new columns.
            self._migrate(version)
        self._conn.executescript(_SCHEMA)
        if version < SCHEMA_VERSION:
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        self._conn.commit()

    def _migrate(self, version: int) -> None:
        """In-place upgrades for pre-existing stores (additive only).

        ``executescript`` afterwards creates any missing tables and
        indexes; this handles columns added to tables that predate them.
        """
        if version >= 1:
            # v1 -> v2: runs grew the campaign column.
            existing = {
                row[1] for row in
                self._conn.execute("PRAGMA table_info(runs)").fetchall()
            }
            if "campaign" not in existing:
                self._conn.execute(
                    "ALTER TABLE runs ADD COLUMN campaign TEXT"
                )
        # v2 -> v3 added only the sweeps/sweep_cells tables; the schema
        # script's CREATE TABLE IF NOT EXISTS covers it, nothing to do.

    # -- write plumbing ------------------------------------------------------
    def _execute(self, sql: str, params: Sequence[Any] = ()) -> sqlite3.Cursor:
        cursor = self._conn.execute(sql, params)
        self._pending += 1
        if self._pending >= COMMIT_EVERY:
            self.flush()
        return cursor

    def flush(self) -> None:
        """Commit buffered mutations."""
        if self._pending:
            self._conn.commit()
            self._pending = 0

    def close(self) -> None:
        """Flush and close the connection (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._conn.close()
        self._closed = True

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- runs ----------------------------------------------------------------
    def insert_run(self, run_id: str, kind: str, **columns: Any) -> int:
        """Insert a run row; returns its db id.

        An existing ``run_id`` is superseded: its db id is returned, the
        provided columns overwrite the stale ones and its child rows
        (epochs, disturbances, samples, incidents) are dropped, so
        re-running a named deployment or re-importing a manifest updates
        in place instead of duplicating.
        """
        unknown = set(columns) - set(RUN_COLUMNS)
        if unknown:
            raise ValueError(f"unknown run columns: {sorted(unknown)}")
        existing = self._conn.execute(
            "SELECT id FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        columns["extra"] = _jsonify(columns.get("extra"))
        if existing is not None:
            run_db_id = int(existing[0])
            for table in ("epochs", "disturbances", "samples", "incidents"):
                self._execute(
                    f"DELETE FROM {table} WHERE run_id = ?", (run_db_id,)
                )
            self.update_run(run_db_id, kind=kind, **columns)
            return run_db_id
        cols = ["run_id", "kind"] + sorted(columns)
        values = [run_id, kind] + [columns[c] for c in sorted(columns)]
        cursor = self._execute(
            f"INSERT INTO runs ({', '.join(cols)}) "
            f"VALUES ({', '.join('?' * len(cols))})",
            values,
        )
        return int(cursor.lastrowid)

    def update_run(self, run_db_id: int, **columns: Any) -> None:
        """Overwrite columns of an existing run row."""
        if not columns:
            return
        unknown = set(columns) - set(RUN_COLUMNS) - {"kind"}
        if unknown:
            raise ValueError(f"unknown run columns: {sorted(unknown)}")
        if "extra" in columns:
            columns["extra"] = _jsonify(columns["extra"])
        keys = sorted(columns)
        self._execute(
            f"UPDATE runs SET {', '.join(f'{k} = ?' for k in keys)} "
            f"WHERE id = ?",
            [columns[k] for k in keys] + [run_db_id],
        )

    def run_db_id(self, run_id: str) -> Optional[int]:
        """Db id of a run by its public ``run_id`` (None if absent)."""
        row = self._conn.execute(
            "SELECT id FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        return int(row[0]) if row is not None else None

    def get_run(self, run_id: str) -> Optional[Dict[str, Any]]:
        """Full run row by public ``run_id`` (None if absent)."""
        cursor = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        )
        row = cursor.fetchone()
        return _row_to_dict(cursor, row) if row is not None else None

    def list_runs(
        self,
        kind: Optional[str] = None,
        algorithm: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Run rows, newest first, optionally filtered."""
        sql = "SELECT * FROM runs"
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if algorithm is not None:
            clauses.append("LOWER(algorithm) LIKE ?")
            params.append(f"%{algorithm.lower()}%")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        cursor = self._conn.execute(sql, params)
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    # -- epochs / disturbances / samples ------------------------------------
    def add_epoch(
        self,
        run_db_id: int,
        idx: int,
        label: str,
        cls: str,
        started_at: float,
        stabilized_at: Optional[float] = None,
    ) -> int:
        """Insert one epoch row; returns its db id."""
        ttr = (
            stabilized_at - started_at if stabilized_at is not None else None
        )
        cursor = self._execute(
            "INSERT INTO epochs (run_id, idx, label, class, started_at, "
            "stabilized_at, time_to_stabilize) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (run_db_id, idx, label, cls, started_at, stabilized_at, ttr),
        )
        return int(cursor.lastrowid)

    def stabilize_epoch(
        self, run_db_id: int, idx: int, stabilized_at: float
    ) -> None:
        """Record stabilization of epoch ``idx`` of a run."""
        self._execute(
            "UPDATE epochs SET stabilized_at = ?, "
            "time_to_stabilize = ? - started_at "
            "WHERE run_id = ? AND idx = ?",
            (stabilized_at, stabilized_at, run_db_id, idx),
        )

    def epochs_for(self, run_db_id: int) -> List[Dict[str, Any]]:
        """Epoch rows of one run, in epoch order."""
        cursor = self._conn.execute(
            "SELECT * FROM epochs WHERE run_id = ? ORDER BY idx", (run_db_id,)
        )
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    def epoch_rows(
        self,
        algorithm: Optional[str] = None,
        cls: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Epoch rows joined with their run's identity, store-wide."""
        sql = (
            "SELECT e.*, r.run_id AS run, r.algorithm AS algorithm, "
            "r.kind AS run_kind, r.n AS n FROM epochs e "
            "JOIN runs r ON r.id = e.run_id"
        )
        clauses, params = [], []
        if algorithm is not None:
            clauses.append("LOWER(r.algorithm) LIKE ?")
            params.append(f"%{algorithm.lower()}%")
        if cls is not None:
            clauses.append("e.class = ?")
            params.append(cls)
        if kind is not None:
            clauses.append("r.kind = ?")
            params.append(kind)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY e.run_id, e.idx"
        cursor = self._conn.execute(sql, params)
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    def add_disturbance(
        self,
        run_db_id: int,
        at: float,
        kind: str,
        duration: float = 0.0,
        params: Optional[dict] = None,
    ) -> None:
        """Insert one raw fault-feed row."""
        self._execute(
            "INSERT INTO disturbances (run_id, at, kind, duration, params) "
            "VALUES (?, ?, ?, ?, ?)",
            (run_db_id, at, kind, duration, _jsonify(params)),
        )

    def disturbances_for(self, run_db_id: int) -> List[Dict[str, Any]]:
        """Disturbance rows of one run, in time order."""
        cursor = self._conn.execute(
            "SELECT * FROM disturbances WHERE run_id = ? ORDER BY at",
            (run_db_id,),
        )
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    def add_samples(
        self,
        run_db_id: int,
        samples: Iterable[Tuple[float, str, float, Optional[dict]]],
    ) -> None:
        """Bulk-insert ``(time, name, value, labels)`` sample rows."""
        self._conn.executemany(
            "INSERT INTO samples (run_id, time, name, value, labels) "
            "VALUES (?, ?, ?, ?, ?)",
            [
                (run_db_id, t, name, value, _jsonify(labels))
                for t, name, value, labels in samples
            ],
        )
        self._pending += 1
        if self._pending >= COMMIT_EVERY:
            self.flush()

    def samples_for(
        self, run_db_id: int, name: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Sample rows of one run (optionally one metric name)."""
        sql = "SELECT * FROM samples WHERE run_id = ?"
        params: List[Any] = [run_db_id]
        if name is not None:
            sql += " AND name = ?"
            params.append(name)
        cursor = self._conn.execute(sql + " ORDER BY id", params)
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    # -- incidents -----------------------------------------------------------
    def open_incident(
        self,
        run_db_id: Optional[int],
        opened_at: float,
        kind: str,
        severity: str,
        title: str,
        details: Optional[dict] = None,
    ) -> int:
        """Insert an unresolved incident; returns its db id."""
        cursor = self._execute(
            "INSERT INTO incidents (run_id, opened_at, kind, severity, "
            "title, details) VALUES (?, ?, ?, ?, ?, ?)",
            (run_db_id, opened_at, kind, severity, title, _jsonify(details)),
        )
        return int(cursor.lastrowid)

    def update_incident(
        self,
        incident_id: int,
        resolved_at: Optional[float] = None,
        severity: Optional[str] = None,
        title: Optional[str] = None,
        details: Optional[dict] = None,
        kind: Optional[str] = None,
        reopen: bool = False,
    ) -> None:
        """Resolve, re-open or annotate an incident."""
        sets, params = [], []
        if reopen:
            sets.append("resolved_at = NULL")
        elif resolved_at is not None:
            sets.append("resolved_at = ?")
            params.append(resolved_at)
        if kind is not None:
            sets.append("kind = ?")
            params.append(kind)
        if severity is not None:
            sets.append("severity = ?")
            params.append(severity)
        if title is not None:
            sets.append("title = ?")
            params.append(title)
        if details is not None:
            sets.append("details = ?")
            params.append(_jsonify(details))
        if not sets:
            return
        params.append(incident_id)
        self._execute(
            f"UPDATE incidents SET {', '.join(sets)} WHERE id = ?", params
        )

    def incidents(
        self,
        run_db_id: Optional[int] = None,
        open_only: bool = False,
    ) -> List[Dict[str, Any]]:
        """Incident rows (newest first), optionally one run's / open ones."""
        sql = (
            "SELECT i.*, r.run_id AS run FROM incidents i "
            "LEFT JOIN runs r ON r.id = i.run_id"
        )
        clauses, params = [], []
        if run_db_id is not None:
            clauses.append("i.run_id = ?")
            params.append(run_db_id)
        if open_only:
            clauses.append("i.resolved_at IS NULL")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        cursor = self._conn.execute(sql + " ORDER BY i.id DESC", params)
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    # -- campaigns -----------------------------------------------------------
    def insert_campaign(self, name: str, **columns: Any) -> int:
        """Insert a campaign row; returns its db id.

        An existing campaign of the same name is superseded: its runs
        (matched by ``runs.campaign``) are deleted — cascading to their
        epochs, disturbances, samples and incidents — and the row is
        overwritten, so re-running a named campaign updates in place.
        """
        unknown = set(columns) - set(CAMPAIGN_COLUMNS)
        if unknown:
            raise ValueError(f"unknown campaign columns: {sorted(unknown)}")
        for key in ("spec", "report"):
            if key in columns:
                columns[key] = _jsonify(columns[key])
        existing = self._conn.execute(
            "SELECT id FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if existing is not None:
            self._execute("DELETE FROM runs WHERE campaign = ?", (name,))
            keys = sorted(columns)
            self._execute(
                f"UPDATE campaigns SET "
                f"{', '.join(f'{k} = ?' for k in keys)} WHERE id = ?",
                [columns[k] for k in keys] + [int(existing[0])],
            )
            return int(existing[0])
        cols = ["name"] + sorted(columns)
        values = [name] + [columns[c] for c in sorted(columns)]
        cursor = self._execute(
            f"INSERT INTO campaigns ({', '.join(cols)}) "
            f"VALUES ({', '.join('?' * len(cols))})",
            values,
        )
        return int(cursor.lastrowid)

    def update_campaign(self, name: str, **columns: Any) -> None:
        """Overwrite columns of an existing campaign row."""
        unknown = set(columns) - set(CAMPAIGN_COLUMNS)
        if unknown:
            raise ValueError(f"unknown campaign columns: {sorted(unknown)}")
        if not columns:
            return
        for key in ("spec", "report"):
            if key in columns:
                columns[key] = _jsonify(columns[key])
        keys = sorted(columns)
        self._execute(
            f"UPDATE campaigns SET {', '.join(f'{k} = ?' for k in keys)} "
            f"WHERE name = ?",
            [columns[k] for k in keys] + [name],
        )

    def get_campaign(self, name: str) -> Optional[Dict[str, Any]]:
        """Campaign row by name (None if absent)."""
        cursor = self._conn.execute(
            "SELECT * FROM campaigns WHERE name = ?", (name,)
        )
        row = cursor.fetchone()
        if row is None:
            return None
        out = _row_to_dict(cursor, row)
        for key in ("spec", "report"):
            if isinstance(out.get(key), str):
                try:
                    out[key] = json.loads(out[key])
                except ValueError:
                    pass
        return out

    def list_campaigns(self) -> List[Dict[str, Any]]:
        """Campaign rows, newest first (spec/report left encoded)."""
        cursor = self._conn.execute(
            "SELECT id, name, started_utc, wall_seconds, cells, completed, "
            "aborted, breaches FROM campaigns ORDER BY id DESC"
        )
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    def campaign_runs(self, name: str) -> List[Dict[str, Any]]:
        """Run rows belonging to one campaign, in insertion order."""
        cursor = self._conn.execute(
            "SELECT * FROM runs WHERE campaign = ? ORDER BY id", (name,)
        )
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    # -- sweeps --------------------------------------------------------------
    def upsert_sweep(self, name: str, **columns: Any) -> int:
        """Insert or update a sweep row by name; returns its db id.

        Unlike :meth:`insert_campaign`, an existing row keeps its recorded
        cells — resuming a killed sweep must see them.  Use
        :meth:`reset_sweep_cells` to start a named sweep over.
        """
        unknown = set(columns) - set(SWEEP_COLUMNS)
        if unknown:
            raise ValueError(f"unknown sweep columns: {sorted(unknown)}")
        for key in ("spec", "report"):
            if key in columns:
                columns[key] = _jsonify(columns[key])
        existing = self._conn.execute(
            "SELECT id FROM sweeps WHERE name = ?", (name,)
        ).fetchone()
        if existing is not None:
            sweep_id = int(existing[0])
            if columns:
                keys = sorted(columns)
                self._execute(
                    f"UPDATE sweeps SET "
                    f"{', '.join(f'{k} = ?' for k in keys)} WHERE id = ?",
                    [columns[k] for k in keys] + [sweep_id],
                )
            return sweep_id
        cols = ["name"] + sorted(columns)
        values = [name] + [columns[c] for c in sorted(columns)]
        cursor = self._execute(
            f"INSERT INTO sweeps ({', '.join(cols)}) "
            f"VALUES ({', '.join('?' * len(cols))})",
            values,
        )
        return int(cursor.lastrowid)

    def get_sweep(self, name: str) -> Optional[Dict[str, Any]]:
        """Sweep row by name (None if absent; spec/report decoded)."""
        cursor = self._conn.execute(
            "SELECT * FROM sweeps WHERE name = ?", (name,)
        )
        row = cursor.fetchone()
        if row is None:
            return None
        out = _row_to_dict(cursor, row)
        for key in ("spec", "report"):
            if isinstance(out.get(key), str):
                try:
                    out[key] = json.loads(out[key])
                except ValueError:
                    pass
        return out

    def list_sweeps(self) -> List[Dict[str, Any]]:
        """Sweep rows, newest first (spec/report left encoded)."""
        cursor = self._conn.execute(
            "SELECT id, name, directory, created_utc, updated_utc, cells, "
            "completed, status, wall_seconds FROM sweeps ORDER BY id DESC"
        )
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    def reset_sweep_cells(self, sweep_id: int) -> None:
        """Drop every recorded cell of a sweep (fresh restart of a name)."""
        self._execute(
            "DELETE FROM sweep_cells WHERE sweep_id = ?", (sweep_id,)
        )

    def upsert_sweep_cell(
        self, sweep_id: int, cell_index: int, **columns: Any
    ) -> None:
        """Record one completed cell (idempotent on re-record)."""
        unknown = set(columns) - set(SWEEP_CELL_COLUMNS)
        if unknown:
            raise ValueError(f"unknown sweep cell columns: {sorted(unknown)}")
        for key in ("params", "result"):
            if key in columns:
                columns[key] = _jsonify(columns[key])
        keys = sorted(columns)
        cols = ["sweep_id", "cell_index"] + keys
        updates = ", ".join(f"{k} = excluded.{k}" for k in keys)
        self._execute(
            f"INSERT INTO sweep_cells ({', '.join(cols)}) "
            f"VALUES ({', '.join('?' * len(cols))}) "
            f"ON CONFLICT (sweep_id, cell_index) DO UPDATE SET {updates}",
            [sweep_id, cell_index] + [columns[k] for k in keys],
        )

    def sweep_cells_for(self, sweep_id: int) -> List[Dict[str, Any]]:
        """Recorded cell rows of one sweep, in grid order."""
        cursor = self._conn.execute(
            "SELECT * FROM sweep_cells WHERE sweep_id = ? ORDER BY cell_index",
            (sweep_id,),
        )
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]

    def sweep_cell_indexes(self, sweep_id: int) -> List[int]:
        """Just the completed cell indexes (the resume set), ascending."""
        return [
            int(row[0]) for row in self._conn.execute(
                "SELECT cell_index FROM sweep_cells WHERE sweep_id = ? "
                "ORDER BY cell_index", (sweep_id,)
            )
        ]

    # -- ad-hoc queries ------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Row counts per table (the ``repro runs list`` footer)."""
        out = {}
        for table in ("runs", "epochs", "disturbances", "samples",
                      "incidents", "campaigns", "sweeps", "sweep_cells"):
            out[table] = int(self._conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0])
        return out

    def query(self, sql: str, params: Sequence[Any] = ()) -> List[Dict[str, Any]]:
        """Run one read-only SELECT (``repro runs query``).

        Anything that is not a single SELECT statement is rejected — the
        store's write path stays the typed API above.
        """
        stripped = sql.lstrip().lower()
        if not (stripped.startswith("select") or stripped.startswith("with")):
            raise ValueError("only SELECT queries are allowed")
        self.flush()
        cursor = self._conn.execute(sql, params)
        return [_row_to_dict(cursor, row) for row in cursor.fetchall()]


__all__ = [
    "CAMPAIGN_COLUMNS",
    "COMMIT_EVERY",
    "DEFAULT_STORE_PATH",
    "RUN_COLUMNS",
    "RunStore",
    "SCHEMA_VERSION",
    "SWEEP_CELL_COLUMNS",
    "SWEEP_COLUMNS",
]
