"""Run manifests: the reproducibility record written next to results.

Every instrumented experiment run writes a ``manifest.json`` beside its
outputs capturing *what ran and how*: the package version, the algorithm /
ring-size / daemon / seed descriptors observed on the event bus, the
wall-clock phase splits from :class:`~repro.analysis.profiling.Stopwatch`,
a full metrics snapshot and a pointer to the JSONL trace.  Any table in
EXPERIMENTS.md can then be regenerated from its manifest alone:
``python -m repro run <experiment_id>`` with the recorded version
reproduces it bit-for-bit (experiments are seeded).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.telemetry.session import TelemetrySession

#: Manifest schema version; bump on incompatible field changes.
MANIFEST_SCHEMA = 1


def _package_version() -> str:
    from repro import __version__  # runtime import avoids a package cycle

    return __version__


def build_manifest(
    session: TelemetrySession,
    experiment_id: Optional[str] = None,
    command: Optional[str] = None,
    phases: Sequence[Tuple[str, float]] = (),
    trace_file: Optional[str] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a JSON-able manifest from a finished session.

    Parameters
    ----------
    session:
        The telemetry session the run executed under.
    experiment_id:
        Registry id (``fig13``, ``thm2``, ...), when applicable.
    command:
        The reproducing command line (e.g. ``python -m repro run fig13``).
    phases:
        Wall-clock splits, typically ``Stopwatch.splits``.
    trace_file:
        File name of the JSONL trace written next to the manifest.
    extra:
        Free-form additions (verdicts, parameters).
    """
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "experiment_id": experiment_id,
        "command": command,
        "created_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(session.started_at)
        ),
        "package": {"name": "repro", "version": _package_version()},
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "wall_seconds": session.wall_seconds,
        "phases": [
            {"label": label, "seconds": seconds} for label, seconds in phases
        ],
        "runs": list(session.run_descriptors),
        "events_total": session.events_total,
        "trace": {
            "file": trace_file,
            "truncated": session.trace_truncated,
            "dropped_events": session.trace_dropped_events,
        },
        "metrics": session.registry.snapshot(),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(path: str, manifest: dict) -> str:
    """Write a manifest as pretty-printed JSON; returns ``path``."""
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=False, default=str)
        fh.write("\n")
    return path


def read_manifest(path: str) -> dict:
    """Load a manifest written by :func:`write_manifest`."""
    with open(path) as fh:
        return json.load(fh)


def manifest_summary(manifest: dict) -> List[str]:
    """Human-readable one-liners for a loaded manifest."""
    lines = [
        f"experiment: {manifest.get('experiment_id')}",
        f"command:    {manifest.get('command')}",
        f"version:    repro {manifest.get('package', {}).get('version')}",
        f"created:    {manifest.get('created_utc')}",
        f"wall time:  {manifest.get('wall_seconds', 0.0):.2f}s",
    ]
    for phase in manifest.get("phases", ()):
        lines.append(f"  phase {phase['label']}: {phase['seconds']:.3f}s")
    for run in manifest.get("runs", ()):
        desc = {k: v for k, v in run.items()
                if k not in ("layer", "kind", "time")}
        lines.append(f"  {run.get('layer')}/{run.get('kind')}: {desc}")
    trace = manifest.get("trace", {})
    if trace.get("file"):
        suffix = (
            f" (TRUNCATED, {trace['dropped_events']} dropped)"
            if trace.get("truncated")
            else ""
        )
        lines.append(f"trace:      {trace['file']}{suffix}")
    return lines


def default_run_dir(base: str, experiment_id: str) -> str:
    """``<base>/<experiment_id>``, created if missing."""
    path = os.path.join(base, experiment_id)
    os.makedirs(path, exist_ok=True)
    return path
