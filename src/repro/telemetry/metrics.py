"""Labelled metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is the single place a run's quantitative
telemetry accumulates — ``steps_total{daemon=...}``,
``rule_fired_total{rule=R1..R5}``, ``messages_sent_total``,
``messages_lost_total``, the ``convergence_steps`` histogram, and whatever
later subsystems add.  The design follows the Prometheus client model
(metric name + label set -> numeric series) but stays dependency-free and
in-process: a registry is created per telemetry session and snapshotted
into the run manifest.

Disabled registries hand out shared null metrics whose mutators are
no-ops, so instrumented hot loops pay one attribute call when telemetry is
off (the engines additionally skip instrumentation entirely when no
session is active — see :mod:`repro.telemetry.session`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (inclusive), chosen to span step
#: counts from tiny verification instances to the Theorem-2 sweeps.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, math.inf
)


def _key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named family of labelled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def series(self) -> Iterator[Tuple[LabelKey, object]]:
        """Iterate ``(label_key, value)`` pairs (snapshot order)."""
        raise NotImplementedError

    def snapshot(self) -> List[dict]:
        """JSON-able rows for manifest export."""
        return [
            {"labels": dict(k), "value": v} for k, v in sorted(self.series())
        ]


class Counter(Metric):
    """Monotonically increasing count, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        k = _key(labels)
        self._values[k] = self._values.get(k, 0) + amount

    def value(self, **labels) -> float:
        """Current value of one series (0 if never incremented)."""
        return self._values.get(_key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def series(self) -> Iterator[Tuple[LabelKey, float]]:
        return iter(self._values.items())


class Gauge(Metric):
    """Instantaneous value, per label set (may go up and down)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        """Overwrite the series selected by ``labels``."""
        self._values[_key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (may be negative) to one series."""
        k = _key(labels)
        self._values[k] = self._values.get(k, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        """Subtract ``amount`` from one series."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current value of one series (0 if never set)."""
        return self._values.get(_key(labels), 0)

    def series(self) -> Iterator[Tuple[LabelKey, float]]:
        return iter(self._values.items())


class Histogram(Metric):
    """Cumulative-bucket histogram with sum and count, per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.buckets = bounds
        self._series: Dict[LabelKey, dict] = {}

    def _cell(self, labels: Dict[str, object]) -> dict:
        k = _key(labels)
        cell = self._series.get(k)
        if cell is None:
            cell = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            self._series[k] = cell
        return cell

    def observe(self, value: float, **labels) -> None:
        """Record one observation."""
        cell = self._cell(labels)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cell["counts"][i] += 1
                break
        cell["sum"] += value
        cell["count"] += 1

    def count(self, **labels) -> int:
        """Observation count of one series (0 if never observed)."""
        cell = self._series.get(_key(labels))
        return cell["count"] if cell else 0

    def sum(self, **labels) -> float:
        """Sum of observations of one series."""
        cell = self._series.get(_key(labels))
        return cell["sum"] if cell else 0.0

    def mean(self, **labels) -> float:
        """Mean observation of one series (NaN when empty)."""
        cell = self._series.get(_key(labels))
        if not cell or not cell["count"]:
            return float("nan")
        return cell["sum"] / cell["count"]

    def series(self) -> Iterator[Tuple[LabelKey, dict]]:
        for k, cell in self._series.items():
            yield k, {
                "buckets": [
                    b if math.isfinite(b) else "inf" for b in self.buckets
                ],
                "counts": list(cell["counts"]),
                "sum": cell["sum"],
                "count": cell["count"],
            }


class _NullCounter(Counter):
    def inc(self, amount: float = 1, **labels) -> None:  # noqa: D102
        pass


class _NullGauge(Gauge):
    def set(self, value: float, **labels) -> None:  # noqa: D102
        pass

    def inc(self, amount: float = 1, **labels) -> None:  # noqa: D102
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float, **labels) -> None:  # noqa: D102
        pass


#: Shared no-op metrics handed out by disabled registries.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Factory and container for a session's metrics.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent per name: the
    first call creates the family, later calls return the same object (and
    raise if the name was registered as a different kind).  With
    ``enabled=False`` every accessor returns a shared null metric — the
    cheap no-op behaviour instrumented code relies on.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter family ``name``."""
        if not self.enabled:
            return NULL_COUNTER
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge family ``name``."""
        if not self.enabled:
            return NULL_GAUGE
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram family ``name``."""
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        """Look up a registered family (None if absent)."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Sorted names of every registered family."""
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """JSON-able dump of every metric family, keyed by kind."""
        out: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        section = {"counter": "counters", "gauge": "gauges",
                   "histogram": "histograms"}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[section[metric.kind]][name] = {
                "help": metric.help,
                "series": metric.snapshot(),
            }
        return out
