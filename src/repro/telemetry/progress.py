"""Live progress emission from the event stream.

A :class:`ProgressEmitter` subscribes to a telemetry session (or any bus)
and periodically prints a one-line status — steps/second, message volume,
and the current token census — so long sweeps (``repro report
--parallel``) no longer run blind.  Emission is wall-clock throttled; the
per-event cost between emissions is a few integer updates.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Optional, TextIO

from repro.telemetry.events import Event


class ProgressEmitter:
    """Throttled textual progress reporter; subscribe it to a bus/session.

    Parameters
    ----------
    label:
        Prefix distinguishing concurrent emitters (e.g. the experiment id
        in a parallel sweep).
    interval:
        Minimum wall-clock seconds between emitted lines.
    stream:
        Output stream (default stderr, keeping stdout clean for results).
    clock:
        Injectable time source (tests pass a fake).
    """

    def __init__(
        self,
        label: str = "",
        interval: float = 2.0,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.label = label
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.steps = 0
        self.messages = 0
        self.events = 0
        self.census: Optional[List[int]] = None
        self.emitted = 0
        self._started = clock()
        self._last_emit = self._started
        self._last_steps = 0

    # The emitter *is* the subscriber callable.
    def __call__(self, event: Event) -> None:
        self.events += 1
        if event.kind == "step" or event.kind == "batch_step":
            self.steps += 1
        elif event.kind == "send":
            self.messages += 1
        elif event.kind == "census":
            holders = event.payload.get("holders")
            if holders is not None:
                self.census = list(holders)
        now = self.clock()
        if now - self._last_emit >= self.interval:
            self.emit(now)

    def emit(self, now: Optional[float] = None) -> None:
        """Write one progress line immediately."""
        now = self.clock() if now is None else now
        window = max(now - self._last_emit, 1e-9)
        rate = (self.steps - self._last_steps) / window
        census = (
            "census=" + ",".join(str(h) for h in self.census)
            if self.census is not None
            else "census=?"
        )
        prefix = f"[progress{' ' + self.label if self.label else ''}]"
        self.stream.write(
            f"{prefix} {self.steps} steps ({rate:.0f}/s), "
            f"{self.messages} msgs, {self.events} events, {census}\n"
        )
        self.stream.flush()
        self.emitted += 1
        self._last_emit = now
        self._last_steps = self.steps
