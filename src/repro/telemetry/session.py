"""Telemetry sessions: the ambient context instrumented layers consult.

A :class:`TelemetrySession` bundles the three telemetry primitives — a
:class:`~repro.telemetry.metrics.MetricsRegistry`, a master
:class:`~repro.telemetry.events.EventBus` and an optional JSONL trace
writer — plus bookkeeping (run descriptors, wall-clock) the run manifest
is built from.

Sessions are installed with the :func:`telemetry_session` context manager
and discovered with :func:`current_session`.  Instrumented code
(`simulation/engine.py`, `simulation/batch.py`,
`messagepassing/network.py`, ...) looks the active session up **once per
run**; when none is active the instrumentation collapses to a single
``None`` check, which keeps the disabled overhead within the < 5% budget
on the scalar-engine hot loop.

The CST network owns its *own* bus (so :class:`MessageTrace` can attach to
one network without global state); at construction time it asks the active
session to :meth:`~TelemetrySession.attach_bus` it, which shares the
session's sequence counter and fans every network event into the session's
recorder, metric bridge and extra subscribers.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.telemetry.events import Event, EventBus
from repro.telemetry.export import DEFAULT_MAX_TRACE_EVENTS, JsonlTraceWriter
from repro.telemetry.metrics import MetricsRegistry

#: Stack of active sessions (innermost last); module-level so instrumented
#: layers can consult it without threading a parameter everywhere.
_ACTIVE: List["TelemetrySession"] = []


def current_session() -> Optional["TelemetrySession"]:
    """The innermost active session, or None when telemetry is off."""
    return _ACTIVE[-1] if _ACTIVE else None


class TelemetrySession:
    """One observability scope: metrics + events + optional trace file."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        max_trace_events: Optional[int] = DEFAULT_MAX_TRACE_EVENTS,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Shared sequencer: buses attached to this session draw from it, so
        #: ``seq`` is globally monotonic across layers.
        self.sequence: Iterator[int] = itertools.count()
        self.bus = EventBus(sequence=self.sequence)
        self.trace_path = trace_path
        self._writer = (
            JsonlTraceWriter(trace_path, max_events=max_trace_events)
            if trace_path is not None
            else None
        )
        #: ``run_start`` / ``net_start`` payloads, in observation order —
        #: the manifest's record of what was simulated (algorithm, n, K,
        #: daemon, seeds).
        self.run_descriptors: List[dict] = []
        self.events_total = 0
        self.started_at = time.time()
        self._extra: List[Callable[[Event], None]] = []
        #: Subscribers that asked for per-step events (see ``subscribe``).
        self._detail_subscribers = 0
        self._closed = False
        self.bus.subscribe(self._ingest)
        # Network-layer counters, pre-created so the bridge stays allocation
        # free per event.
        self._msg_counters = {
            "send": self.registry.counter(
                "messages_sent_total", "link transmissions"),
            "deliver": self.registry.counter(
                "messages_delivered_total", "link deliveries"),
            "loss": self.registry.counter(
                "messages_lost_total", "messages lost in transit"),
            "timer": self.registry.counter(
                "timer_fires_total", "CST interval-timer firings"),
        }
        self._events_counter = self.registry.counter(
            "telemetry_events_total", "events observed by the session")

    # -- wiring ------------------------------------------------------------
    def attach_bus(self, bus: EventBus) -> None:
        """Fan a foreign bus's events into this session's pipeline."""
        bus.subscribe(self._ingest)

    def subscribe(
        self, fn: Callable[[Event], None], detail: bool = True
    ) -> Callable[[Event], None]:
        """Add an extra subscriber seeing events from *every* attached bus.

        ``detail=False`` registers a subscriber that does **not** count as
        a per-step consumer: hot loops keep their batched, events-off
        behaviour (:attr:`step_detail` stays false).  Use it for
        subscribers that only care about lifecycle events — the run-store
        ingester is the canonical example — so attaching them costs the
        engines nothing.
        """
        self._extra.append(fn)
        if detail:
            self._detail_subscribers += 1
        return fn

    # -- the pipeline ------------------------------------------------------
    def _ingest(self, event: Event) -> None:
        self.events_total += 1
        self._events_counter.inc(layer=event.layer)
        if event.kind in ("run_start", "net_start"):
            descriptor = {"layer": event.layer, "kind": event.kind,
                          "time": event.time}
            descriptor.update(event.payload)
            self.run_descriptors.append(descriptor)
        elif event.layer == "network":
            counter = self._msg_counters.get(event.kind)
            if counter is not None:
                counter.inc()
        if self._writer is not None:
            self._writer.write(event)
        for fn in self._extra:
            fn(event)

    @property
    def step_detail(self) -> bool:
        """Whether per-step events have a consumer (trace file or subscriber).

        Hot loops batch their counter updates regardless, but only publish
        per-step ``engine.step`` events when something will actually observe
        them — a metrics/manifest-only session skips the bus fan-out, which
        is what keeps telemetry-on runs within a few percent of
        telemetry-off (see ``benchmarks/bench_perf_engines.py``).
        """
        return self._writer is not None or self._detail_subscribers > 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def trace_truncated(self) -> bool:
        return self._writer is not None and self._writer.truncated

    @property
    def trace_dropped_events(self) -> int:
        return self._writer.dropped if self._writer is not None else 0

    @property
    def wall_seconds(self) -> float:
        return time.time() - self.started_at

    def close(self) -> None:
        """Finalize the session: flush and close the trace writer."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            self._writer.close()


@contextmanager
def telemetry_session(
    trace_path: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    max_trace_events: Optional[int] = DEFAULT_MAX_TRACE_EVENTS,
):
    """Install a session as the ambient telemetry context.

    Example::

        with telemetry_session(trace_path="runs/demo/trace.jsonl") as tel:
            SharedMemorySimulator(alg, daemon).run(init, max_steps=1000)
        print(tel.registry.counter("steps_total").total())
    """
    session = TelemetrySession(
        trace_path=trace_path,
        registry=registry,
        max_trace_events=max_trace_events,
    )
    _ACTIVE.append(session)
    try:
        yield session
    finally:
        _ACTIVE.pop()
        session.close()
