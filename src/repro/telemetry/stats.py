"""Trace replay: compute a metrics summary from a JSONL trace.

``python -m repro stats <trace.jsonl>`` loads a trace written by a
telemetry session and re-derives the headline metrics from the raw events
— an independent audit of the counters the live session accumulated (the
test suite asserts the two agree, and that :class:`MessageTrace` totals
match on the same seeded run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import Event
from repro.telemetry.export import iter_trace


@dataclass
class TraceStats:
    """Aggregates re-derived from one event trace."""

    events_total: int = 0
    by_layer: Dict[str, int] = field(default_factory=dict)
    by_kind: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Engine transitions (count of engine "step" events).
    engine_steps: int = 0
    #: Rule executions by rule name, from engine step moves.
    rules: Dict[str, int] = field(default_factory=dict)
    #: Batch-engine lockstep iterations.
    batch_steps: int = 0
    #: Network message accounting (send / deliver / loss / timer).
    messages: Dict[str, int] = field(default_factory=dict)
    #: Last own-view token census seen (any layer), if any.
    last_census: Optional[List[int]] = None
    #: (first, last) event time per layer.
    time_span: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: run_start / net_start descriptors, in order.
    runs: List[dict] = field(default_factory=list)
    #: Sequence monotonicity audit (True unless the trace is corrupt).
    seq_monotonic: bool = True
    _last_seq: int = field(default=-1, repr=False)

    # -- construction ------------------------------------------------------
    def add(self, event: Event) -> None:
        """Fold one event into the aggregates."""
        if event.seq <= self._last_seq:
            self.seq_monotonic = False
        self._last_seq = event.seq
        self.events_total += 1
        self.by_layer[event.layer] = self.by_layer.get(event.layer, 0) + 1
        key = (event.layer, event.kind)
        self.by_kind[key] = self.by_kind.get(key, 0) + 1
        first, last = self.time_span.get(event.layer, (event.time, event.time))
        self.time_span[event.layer] = (min(first, event.time),
                                       max(last, event.time))

        if event.kind in ("run_start", "net_start"):
            descriptor = {"layer": event.layer, "kind": event.kind}
            descriptor.update(event.payload)
            self.runs.append(descriptor)
        elif event.layer == "engine" and event.kind == "step":
            self.engine_steps += 1
            for move in event.payload.get("moves", ()):
                rule = str(move[1])
                self.rules[rule] = self.rules.get(rule, 0) + 1
        elif event.layer == "batch" and event.kind == "batch_step":
            self.batch_steps += 1
        elif event.layer == "network" and event.kind in (
            "send", "deliver", "loss", "timer"
        ):
            self.messages[event.kind] = self.messages.get(event.kind, 0) + 1
        if event.kind == "census":
            holders = event.payload.get("holders")
            if holders is not None:
                self.last_census = list(holders)

    @classmethod
    def from_events(cls, events) -> "TraceStats":
        stats = cls()
        for event in events:
            stats.add(event)
        return stats

    @classmethod
    def from_file(cls, path: str) -> "TraceStats":
        return cls.from_events(iter_trace(path))

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        """Fixed-width text report (the ``repro stats`` output)."""
        lines = [f"events: {self.events_total} "
                 f"(seq monotonic: {self.seq_monotonic})"]
        for layer in sorted(self.by_layer):
            first, last = self.time_span[layer]
            lines.append(
                f"  layer {layer:<10} {self.by_layer[layer]:>8} events, "
                f"time [{first:.2f}, {last:.2f}]"
            )
        if self.runs:
            lines.append("runs:")
            for run in self.runs:
                desc = ", ".join(
                    f"{k}={v}" for k, v in run.items()
                    if k not in ("layer", "kind")
                )
                lines.append(f"  {run['layer']}/{run['kind']}: {desc}")
        if self.engine_steps:
            lines.append(f"engine steps: {self.engine_steps}")
        if self.rules:
            per_rule = "  ".join(
                f"{rule}={self.rules[rule]}" for rule in sorted(self.rules)
            )
            lines.append(f"rule executions: {per_rule}")
        if self.batch_steps:
            lines.append(f"batch steps: {self.batch_steps}")
        if self.messages:
            lines.append(
                "messages: "
                + "  ".join(
                    f"{kind}={self.messages.get(kind, 0)}"
                    for kind in ("send", "deliver", "loss", "timer")
                )
            )
        if self.last_census is not None:
            lines.append(f"final token census: {self.last_census}")
        kinds = ", ".join(
            f"{layer}/{kind}={count}"
            for (layer, kind), count in sorted(self.by_kind.items())
        )
        lines.append(f"event kinds: {kinds}")
        return "\n".join(lines)
