"""Unified telemetry: metrics registry, event bus, traces and manifests.

The observability layer shared by both execution models (see
``docs/TELEMETRY.md``):

* :mod:`repro.telemetry.metrics` — labelled counters / gauges /
  histograms with cheap no-op behaviour when disabled;
* :mod:`repro.telemetry.events` — the one :class:`Event` schema every
  layer publishes (engine steps, batch iterations, link sends/losses,
  timers, token censuses);
* :mod:`repro.telemetry.session` — the ambient :class:`TelemetrySession`
  instrumented code consults (``with telemetry_session(...)``);
* :mod:`repro.telemetry.export` — incremental JSONL trace writing and
  replay;
* :mod:`repro.telemetry.manifest` — the ``manifest.json`` reproducibility
  record written next to every instrumented experiment result;
* :mod:`repro.telemetry.stats` — ``python -m repro stats`` trace replay;
* :mod:`repro.telemetry.progress` — live steps/sec + token-census
  emission for long sweeps.
"""

from repro.telemetry.events import Event, EventBus
from repro.telemetry.export import (
    JsonlTraceWriter,
    iter_trace,
    read_trace,
    write_events,
)
from repro.telemetry.manifest import (
    build_manifest,
    manifest_summary,
    read_manifest,
    write_manifest,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.progress import ProgressEmitter
from repro.telemetry.session import (
    TelemetrySession,
    current_session,
    telemetry_session,
)
from repro.telemetry.stats import TraceStats

__all__ = [
    "Event",
    "EventBus",
    "JsonlTraceWriter",
    "iter_trace",
    "read_trace",
    "write_events",
    "build_manifest",
    "manifest_summary",
    "read_manifest",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProgressEmitter",
    "TelemetrySession",
    "current_session",
    "telemetry_session",
    "TraceStats",
]
