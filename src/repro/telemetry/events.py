"""The structured event bus: one ``Event`` schema for every layer.

Both execution models publish into this bus — the state-reading engine
(layer ``"engine"``), the vectorized batch engine (layer ``"batch"``), the
CST message-passing network (layer ``"network"``) and the experiment
harness (layer ``"experiment"``).  Every event carries:

* ``seq`` — a monotonically increasing sequence number (total order of
  observation, even across layers when buses share a sequencer);
* ``time`` — the publishing layer's own clock (simulated time for the DES
  network, the step counter for the engines);
* ``layer`` / ``kind`` — the source subsystem and event type;
* ``payload`` — a JSON-able dict of event-specific fields.

Publishing is cheap when nobody listens: :meth:`EventBus.publish` returns
before constructing the :class:`Event` if there are no subscribers, so
always-on publish points (links, timers) cost one truthiness check.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

Subscriber = Callable[["Event"], None]

#: Known source layers (informative, not enforced).
LAYERS = ("engine", "batch", "network", "experiment")


@dataclass(frozen=True)
class Event:
    """One observed occurrence, in the unified schema."""

    seq: int
    time: float
    layer: str
    kind: str
    payload: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        """Plain-dict form for JSONL export."""
        return {
            "seq": self.seq,
            "time": self.time,
            "layer": self.layer,
            "kind": self.kind,
            "payload": self.payload,
        }

    @classmethod
    def from_json(cls, row: dict) -> "Event":
        return cls(
            seq=int(row["seq"]),
            time=float(row["time"]),
            layer=str(row["layer"]),
            kind=str(row["kind"]),
            payload=dict(row.get("payload") or {}),
        )


class EventBus:
    """Synchronous publish/subscribe fan-out of :class:`Event`\\ s.

    Parameters
    ----------
    sequence:
        Optional shared sequence counter (an ``itertools.count``).  A
        telemetry session passes its own so events from several buses (one
        per network, plus the session's master bus) interleave with a
        globally monotonic ``seq``.
    """

    def __init__(self, sequence: Optional[Iterator[int]] = None):
        self._subscribers: List[Subscriber] = []
        self._sequence = sequence if sequence is not None else itertools.count()

    # -- subscription ------------------------------------------------------
    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Register ``fn`` to receive every subsequent event; returns it."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove a subscriber (no-op if absent)."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    @property
    def active(self) -> bool:
        """Whether anyone is listening (publish is a no-op otherwise)."""
        return bool(self._subscribers)

    # -- publishing --------------------------------------------------------
    def publish(
        self, layer: str, kind: str, time: float, **payload
    ) -> Optional[Event]:
        """Build and fan out one event; returns it (None if nobody listens).

        The event is only constructed when there is at least one
        subscriber, keeping dormant publish points nearly free.
        """
        if not self._subscribers:
            return None
        event = Event(next(self._sequence), float(time), layer, kind, payload)
        for fn in self._subscribers:
            fn(event)
        return event
