"""JSONL trace export and import.

A trace is one :class:`~repro.telemetry.events.Event` per line, in ``seq``
order, written incrementally as events are published.  Payload values that
are not natively JSON-able (numpy scalars, state namedtuples, arbitrary
objects) are coerced conservatively: numeric types to numbers, sequences
elementwise, everything else to ``repr`` — a trace write must never crash
the run it is observing.

Long sweeps can emit millions of engine step events; the writer therefore
accepts a ``max_events`` cap.  Truncation is *never silent*: the writer
remembers how many events were dropped and the run manifest records it.
"""

from __future__ import annotations

import json
from typing import IO, Iterator, List, Optional, Union

from repro.telemetry.events import Event

#: Default cap on events written to one trace file (~100s of MB of JSONL).
DEFAULT_MAX_TRACE_EVENTS = 1_000_000


def _coerce(value):
    """Best-effort conversion of an arbitrary payload value to JSON types."""
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    return repr(value)


class JsonlTraceWriter:
    """Incremental JSONL writer with a non-silent event cap."""

    def __init__(
        self,
        path: str,
        max_events: Optional[int] = DEFAULT_MAX_TRACE_EVENTS,
    ):
        self.path = path
        self.max_events = max_events
        self.written = 0
        self.dropped = 0
        self._fh: Optional[IO[str]] = open(path, "w")

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def write(self, event: Event) -> None:
        """Append one event (dropped and counted once past the cap)."""
        if self._fh is None:
            raise ValueError(f"trace writer for {self.path} already closed")
        if self.max_events is not None and self.written >= self.max_events:
            self.dropped += 1
            return
        self._fh.write(json.dumps(event.to_json(), default=_coerce))
        self._fh.write("\n")
        self.written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_events(path: str, events) -> int:
    """Write an iterable of events to ``path``; returns the count written."""
    with JsonlTraceWriter(path, max_events=None) as writer:
        for event in events:
            writer.write(event)
        return writer.written


def iter_trace(source: Union[str, IO[str]]) -> Iterator[Event]:
    """Yield events from a JSONL trace file (path or open handle).

    Blank lines are skipped; malformed lines raise :class:`ValueError`
    with the offending line number.
    """
    if isinstance(source, str):
        with open(source) as fh:
            yield from iter_trace(fh)
        return
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield Event.from_json(json.loads(line))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(f"bad trace line {lineno}: {exc}") from exc


def read_trace(path: str) -> List[Event]:
    """Load a whole trace into memory (small traces / tests)."""
    return list(iter_trace(path))
