"""The shared packed-kernel layer.

Every packed execution backend in the repo — the shared-memory simulator
fastpath (and through it the explicit-state model checker), the
message-passing DES codec, and the batched numpy engine — used to carry
its own copy of three things: the SSRmin guard-resolution table, the
``(x << 2) | (rts << 1) | tra`` word codec, and Dijkstra's successor
arithmetic ``C_i``.  This package is the single home for all three, so a
new backend (or a new algorithm in PR 11+) lands its semantics once:

* :mod:`repro.kernels.rule_table` — the 128-entry RULE_TABLE and rule
  name registries;
* :mod:`repro.kernels.packing` — pack/unpack, word bounds, and the
  full-pass packed-word legitimacy predicate;
* :mod:`repro.kernels.successor` — ``next_x`` (the one copy of ``C_i``)
  and the packed-word rule executors;
* :mod:`repro.kernels.batched` — the vectorized numpy expressions over
  ``(trials, n)`` state arrays plus the lockstep convergence-cell runner;
* :mod:`repro.kernels.prng` — counter-based (splitmix64) randomness that
  makes batched trajectories a pure function of per-cell seeds.

Scalar consumers import the scalar modules only; numpy is required just
for :mod:`~repro.kernels.batched` / :mod:`~repro.kernels.prng`.
"""

from repro.kernels.packing import (
    pack_ssrmin,
    ssrmin_decode_table,
    ssrmin_h,
    ssrmin_word_bound,
    ssrmin_words_legitimate,
    ssrmin_x,
    unpack_ssrmin,
)
from repro.kernels.rule_table import (
    DIJKSTRA_RULE_NAMES,
    RULE_TABLE,
    SSRMIN_RULE_NAMES,
    build_rule_table,
    rule_index,
)
from repro.kernels.successor import (
    execute_dijkstra_word,
    execute_ssrmin_word,
    next_x,
)

__all__ = [
    "DIJKSTRA_RULE_NAMES",
    "RULE_TABLE",
    "SSRMIN_RULE_NAMES",
    "build_rule_table",
    "execute_dijkstra_word",
    "execute_ssrmin_word",
    "next_x",
    "pack_ssrmin",
    "rule_index",
    "ssrmin_decode_table",
    "ssrmin_h",
    "ssrmin_word_bound",
    "ssrmin_words_legitimate",
    "ssrmin_x",
    "unpack_ssrmin",
]
