"""Counter-based randomness for batch-composition-independent simulation.

The vectorized sweep backend advances *groups* of cells in lockstep, but
resumability demands that each cell's trajectory be a pure function of its
own seed — never of which other cells happen to share its batch, or of
how a killed run partitioned the grid before dying.  Stateful generators
(``numpy.random.Generator``) cannot give that: every draw shifts the
stream for every later consumer.

Instead, every random number here is a *stateless hash* of its full
coordinate ``(seed, stream, step, lane)`` through the splitmix64
finalizer — the same construction as counter-based RNGs in large-scale
simulation (Salmon et al., "Parallel random numbers: as easy as 1, 2, 3").
Re-running any cell at any step, alone or inside any batch, reproduces
the exact same draw — which is what makes the kill-and-resume test able
to demand bit-identical results.

All arithmetic is numpy ``uint64`` with C wraparound semantics; arrays
are used throughout (numpy integer *arrays* overflow silently, scalars
may warn).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_S11 = np.uint64(11)
#: 2**-53 — maps the top 53 bits of a mixed word onto [0, 1).
_INV53 = float(2.0 ** -53)

SeedVector = Union[Sequence[int], np.ndarray]


def _u64(values) -> np.ndarray:
    """Coerce python ints (possibly negative) to a uint64 array."""
    return np.asarray(values, dtype=np.int64).astype(np.uint64)


def mix64(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, elementwise over a uint64 array."""
    z = z + _GOLDEN
    z = (z ^ (z >> _S30)) * _MIX1
    z = (z ^ (z >> _S27)) * _MIX2
    return z ^ (z >> _S31)


def counter_keys(seeds: SeedVector, stream: int, step: int) -> np.ndarray:
    """One mixed uint64 key per seed for coordinate ``(stream, step)``.

    Streams separate independent uses (state init vs daemon coins vs
    fallback picks); steps separate lockstep iterations.  Nesting the
    mixes keeps the composition asymmetric, so ``(stream=a, step=b)``
    and ``(stream=b, step=a)`` do not collide.
    """
    h = mix64(_u64(seeds))
    h = mix64(h ^ mix64(_u64([stream]))[0])
    return mix64(h ^ mix64(_u64([step]))[0])


def grid_uniforms(
    seeds: SeedVector, stream: int, step: int, lanes: int
) -> np.ndarray:
    """``(len(seeds), lanes)`` float64 uniforms in [0, 1).

    Entry ``[c, l]`` depends only on ``(seeds[c], stream, step, l)``.
    """
    keys = counter_keys(seeds, stream, step)
    lane = mix64(np.arange(lanes, dtype=np.uint64))
    mixed = mix64(keys[:, None] ^ lane[None, :])
    return (mixed >> _S11).astype(np.float64) * _INV53


def grid_integers(
    seeds: SeedVector, stream: int, step: int, lanes: int, bound: int
) -> np.ndarray:
    """``(len(seeds), lanes)`` int64 draws in ``[0, bound)``.

    Scaled from :func:`grid_uniforms` — the modulo-free mapping keeps
    the (negligible) bias deterministic and backend-independent.
    """
    u = grid_uniforms(seeds, stream, step, lanes)
    return np.minimum((u * bound).astype(np.int64), bound - 1)


__all__ = ["counter_keys", "grid_integers", "grid_uniforms", "mix64"]
