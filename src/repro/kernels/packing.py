"""One pack/unpack codec surface for SSRmin's packed word encoding.

Every packed backend encodes an SSRmin local state ``(x, rts, tra)`` as
the integer word ``(x << 2) | (rts << 1) | tra`` — the low two bits are
exactly the handshake code ``h = 2*rts + tra`` the rule table indexes on.
The shared-memory kernel's state keys, the message-passing codec's wire
words and the binary wire's bounds check all use this module instead of
re-deriving the bit layout.

The full-pass legitimacy predicate on packed words
(:func:`ssrmin_words_legitimate`) also lives here: Definition 1 evaluated
on split ``x``/``h`` vectors, shared by the codec (which sees the true
configuration only as packed states) and by any backend without
incremental counters.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def pack_ssrmin(x: int, rts: int, tra: int) -> int:
    """Encode one native local state as a packed word."""
    return (x << 2) | (rts << 1) | tra


def unpack_ssrmin(word: int) -> Tuple[int, int, int]:
    """Decode a packed word back to ``(x, rts, tra)``."""
    return (word >> 2, (word >> 1) & 1, word & 1)


def ssrmin_x(word: int) -> int:
    """The Dijkstra counter of a packed word."""
    return word >> 2


def ssrmin_h(word: int) -> int:
    """The 2-bit handshake code of a packed word."""
    return word & 3


def ssrmin_word_bound(K: int) -> int:
    """Exclusive upper bound of the packed domain for alphabet size ``K``.

    Doubles as the radix (``key_base``) of the kernel's positional state
    keys and as the wire-level corruption filter.
    """
    return K << 2


def ssrmin_decode_table(K: int) -> List[Tuple[int, int, int]]:
    """Interned ``packed -> (x, rts, tra)`` table over the whole domain."""
    return [unpack_ssrmin(p) for p in range(ssrmin_word_bound(K))]


def ssrmin_words_legitimate(words: Sequence[int], K: int) -> bool:
    """Definition 1 on a ring of packed words (full O(n) pass).

    The x-vector must be Dijkstra-legitimate — 0 cyclic boundaries (all
    equal) or exactly 2 with the wraparound among them and a ``+1 mod K``
    step — and the handshake vector one of the three shapes anchored at
    the token position.
    """
    n = len(words)
    x = [w >> 2 for w in words]
    h = [w & 3 for w in words]
    diff_edges = sum(1 for i in range(n) if x[i] != x[i - 1])
    if diff_edges == 0:
        pos = 0
    elif diff_edges == 2:
        if x[0] == x[n - 1]:
            return False
        pos = next(b for b in range(1, n) if x[b] != x[b - 1])
        if x[0] != (x[pos] + 1) % K:
            return False
    else:
        return False
    nz = sum(1 for v in h if v)
    if nz == 1:
        return h[pos] in (1, 2)
    if nz == 2:
        return h[pos] == 2 and h[(pos + 1) % n] == 1
    return False


__all__ = [
    "pack_ssrmin",
    "ssrmin_decode_table",
    "ssrmin_h",
    "ssrmin_word_bound",
    "ssrmin_words_legitimate",
    "ssrmin_x",
    "unpack_ssrmin",
]
