"""The shared SSRmin guard-resolution table — one consumer surface.

SSRmin's five prioritized guards (Algorithm 3) collapse into a 128-entry
lookup table indexed by ``(G_i, h_{i-1}, h_i, h_{i+1})``.  Before the
kernel layer existed this table lived in the shared-memory fastpath and
was *imported sideways* by the message-passing codec and the batch
engine; now all three consume it from here:

* :class:`repro.simulation.fastpath.ssrmin_kernel.SSRminKernel` indexes
  it scalar-at-a-time (and, through it, the explicit-state model
  checker);
* :class:`repro.messagepassing.fastpath.codecs.SSRminMPCodec` resolves
  cached local views through the same index layout;
* :mod:`repro.kernels.batched` broadcasts it with one numpy gather per
  lockstep batch.
"""

from __future__ import annotations

from typing import Tuple


def build_rule_table() -> bytes:
    """Resolve SSRmin's prioritized guards for all 128 local neighborhoods.

    Index layout: ``(g << 6) | (h_pred << 4) | (h_own << 2) | h_succ`` with
    ``g`` the Dijkstra guard bit and each ``h`` the 2-bit handshake code.
    Value: the winning rule id 1..5, or 0 when no guard holds.  Priority
    ("smaller rule number wins") is already folded in, mirroring
    :meth:`repro.core.rules.RuleSet.enabled_rule`:

    * ``G_i`` true: ``h != 10`` -> R1; ``h == 10``: successor ``01`` -> R2,
      neighborhood ``<00, 10, 00>`` -> stable, anything else -> R4;
    * ``G_i`` false: predecessor ``10`` -> R3 unless own is ``01`` (the
      mid-handshake state, stable); otherwise R5 unless own is ``00``.
    """
    table = bytearray(128)
    for g in (0, 1):
        for hp in range(4):
            for h in range(4):
                for hs in range(4):
                    if g:
                        if h != 2:
                            rule = 1
                        elif hs == 1:
                            rule = 2
                        elif hp == 0 and hs == 0:
                            rule = 0
                        else:
                            rule = 4
                    else:
                        if hp == 2:
                            rule = 3 if h != 1 else 0
                        else:
                            rule = 5 if h != 0 else 0
                    table[(g << 6) | (hp << 4) | (h << 2) | hs] = rule
    return bytes(table)


def rule_index(g: int, h_pred: int, h_own: int, h_succ: int) -> int:
    """The table index of one local neighborhood (``g`` is 0 or 1)."""
    return (g << 6) | (h_pred << 4) | (h_own << 2) | h_succ


#: The shared guard-resolution table (scalar kernels index it directly,
#: the batched backend broadcasts it with a numpy gather).
RULE_TABLE: bytes = build_rule_table()

#: SSRmin rule names by id; id 0 (disabled) has no name.
SSRMIN_RULE_NAMES: Tuple[str, ...] = ("", "R1", "R2", "R3", "R4", "R5")

#: Dijkstra K-state rule names by id (D1 at the bottom, D2 elsewhere).
DIJKSTRA_RULE_NAMES: Tuple[str, ...] = ("", "D1", "D2")


__all__ = [
    "DIJKSTRA_RULE_NAMES",
    "RULE_TABLE",
    "SSRMIN_RULE_NAMES",
    "build_rule_table",
    "rule_index",
]
