"""Batched numpy backend over the shared rule table.

The array expressions that used to live privately inside
:class:`repro.simulation.batch.BatchSSRmin` — the rule-table gather, the
vectorized legitimacy/privilege predicates and the command vector — now
live here so every batched consumer (the Theorem-2 batch engine, the
sweep engine's batched-cell mode, the benchmark) evaluates the *same*
expressions against the *same* :data:`~repro.kernels.rule_table.RULE_TABLE`.

All functions take states as ``(trials, n)`` int64 arrays: ``X`` holds
the Dijkstra counters, ``H`` the 2-bit handshake codes.

:func:`run_convergence_cells` is the sweep engine's vectorized cell
executor: it advances one *homogeneous group* of convergence cells (same
``n``, ``K``, daemon, budget — only seeds differ) in lockstep.  Its
randomness is counter-based (:mod:`repro.kernels.prng`), which makes each
cell's trajectory a pure function of its own seed: running a cell alone
or inside any group produces bit-identical results, the property the
resumable sweep store leans on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.prng import grid_integers, grid_uniforms
from repro.kernels.rule_table import RULE_TABLE

#: The 128-entry guard-resolution table as a numpy LUT.
RULE_LUT = np.frombuffer(RULE_TABLE, dtype=np.uint8)

#: PRNG stream ids (:func:`repro.kernels.prng.grid_uniforms` coordinates).
STREAM_INIT_X = 0
STREAM_INIT_H = 1
STREAM_COINS = 2
STREAM_PICK = 3


def batched_guards(X: np.ndarray, H: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(G, rule)`` arrays; rule in {0 (none), 1..5} after priority.

    One gather through the shared rule table (indexed
    ``(G << 6) | (h_pred << 4) | (h_own << 2) | h_succ``) replaces five
    separate guard masks + a ``np.select`` cascade.
    """
    n = X.shape[1]
    Xp = np.roll(X, 1, axis=1)
    G = X != Xp
    G[:, 0] = X[:, 0] == X[:, n - 1]

    Hp = np.roll(H, 1, axis=1)
    Hs = np.roll(H, -1, axis=1)

    idx = (G.astype(np.int64) << 6) | (Hp << 4) | (H << 2) | Hs
    rule = RULE_LUT[idx].astype(np.int64)
    return G, rule


def batched_commands(X: np.ndarray, K: int) -> np.ndarray:
    """The command vector ``C_i`` per trial, from the *current* ``X``.

    The batched form of :func:`repro.kernels.successor.next_x`: the
    bottom column gets ``X[:, n-1] + 1 mod K``, everyone else a copy of
    the predecessor column (composite atomicity: all from the old state).
    """
    n = X.shape[1]
    C = np.roll(X, 1, axis=1)
    C[:, 0] = (X[:, n - 1] + 1) % K
    return C


def batched_privileged_counts(X: np.ndarray, H: np.ndarray) -> np.ndarray:
    """Privileged processes per trial (vectorized token predicates).

    Mirrors :meth:`repro.core.ssrmin.SSRmin.privileged`: a process is
    privileged iff it holds the primary token (``G_i``) or the secondary
    token (``tra_i = 1`` or ``rts_i = 1`` with a quiet successor).
    """
    n = X.shape[1]
    Xp = np.roll(X, 1, axis=1)
    G = X != Xp
    G[:, 0] = X[:, 0] == X[:, n - 1]
    Hs = np.roll(H, -1, axis=1)
    rts = H >= 2
    tra = (H % 2) == 1
    secondary = tra | (rts & (Hs == 0))
    return (G | secondary).sum(axis=1)


def batched_legitimate(X: np.ndarray, H: np.ndarray, K: int) -> np.ndarray:
    """Boolean mask of trials currently in a legitimate configuration.

    The batched form of Definition 1 (same predicate as
    :func:`repro.kernels.packing.ssrmin_words_legitimate`): the x-vector
    is a Dijkstra staircase with token position ``pos`` and the handshake
    vector is one of the three shapes anchored at ``pos``.
    """
    trials, n = X.shape

    interior_diff = X[:, 1:] != X[:, :-1]  # (trials, n-1)
    nb = interior_diff.sum(axis=1)

    # All-equal: token at position 0.
    d0 = nb == 0

    # Single interior boundary at b: X[b-1] == X[b] + 1 (mod K) and the
    # wraparound also steps: X[0] == X[n-1] + 1 (mod K).
    d1 = nb == 1
    boundary = np.where(interior_diff, 1, 0).argmax(axis=1) + 1  # first diff
    rows = np.arange(trials)
    step_ok = X[rows, boundary - 1] == (X[rows, boundary] + 1) % K
    wrap_ok = X[:, 0] == (X[:, n - 1] + 1) % K
    d1 = d1 & step_ok & wrap_ok

    pos = np.where(d1, boundary, 0)
    dijkstra_ok = d0 | d1

    # Handshake shapes relative to pos.
    h_pos = H[rows, pos]
    h_succ = H[rows, (pos + 1) % n]
    nonzero = (H != 0).sum(axis=1)
    shape_a = (nonzero == 1) & (h_pos == 1)          # <0.1> at pos
    shape_b = (nonzero == 1) & (h_pos == 2)          # <1.0> at pos
    shape_c = (nonzero == 2) & (h_pos == 2) & (h_succ == 1)
    return dijkstra_ok & (shape_a | shape_b | shape_c)


# -- daemon families ---------------------------------------------------------

#: Daemon-family axis values the convergence runner understands.
DAEMON_FAMILIES = ("synchronous", "central", "bernoulli")


def parse_daemon(spec: str) -> Tuple[str, float]:
    """``"synchronous" | "central" | "bernoulli:<p>"`` -> (kind, p)."""
    if spec == "synchronous":
        return "synchronous", 1.0
    if spec == "central":
        return "central", 0.0
    if spec.startswith("bernoulli:"):
        p = float(spec.split(":", 1)[1])
        if not 0.0 < p <= 1.0:
            raise ValueError(f"bernoulli parameter must be in (0, 1], got {p}")
        return "bernoulli", p
    raise ValueError(
        f"unknown daemon family {spec!r}; expected one of "
        f"'synchronous', 'central', 'bernoulli:<p>'"
    )


def _pick_one_enabled(
    enabled: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """One-hot selection of the ``floor(u * count)``-th enabled process.

    ``enabled`` is (rows, n) boolean with at least one True per row;
    ``u`` is (rows,) uniforms.  The cumulative-sum trick lands on the
    chosen enabled column without python loops.
    """
    counts = enabled.sum(axis=1)
    target = np.minimum((u * counts).astype(np.int64), counts - 1) + 1
    cs = enabled.cumsum(axis=1)
    chosen = (cs == target[:, None]).argmax(axis=1)
    out = np.zeros_like(enabled)
    out[np.arange(enabled.shape[0]), chosen] = True
    return out


def run_convergence_cells(
    n: int,
    seeds: Sequence[int],
    daemon: str = "bernoulli:0.5",
    *,
    K: Optional[int] = None,
    budget: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Advance one homogeneous group of convergence cells in lockstep.

    Each seed is one cell: states initialize from counter-based draws of
    that seed alone, every daemon decision at step ``k`` hashes
    ``(seed, stream, k)`` — so the returned
    ``{"steps", "converged", "budget"}`` rows are invariant under group
    composition (the per-cell execution path calls this with a single
    seed and must agree bitwise).

    ``steps`` is the number of daemon steps until the configuration first
    satisfied Definition 1 (``-1`` with ``converged=False`` if the budget
    — default ``60 n^2 + 600``, the Theorem-2 envelope with slack — runs
    out, which would falsify Lemma 6).
    """
    if n < 3:
        raise ValueError(f"SSRmin requires n >= 3, got {n}")
    K = n + 1 if K is None else K
    if K <= n:
        raise ValueError(f"K must exceed n (got K={K}, n={n})")
    kind, p = parse_daemon(daemon)
    budget = 60 * n * n + 600 if budget is None else int(budget)
    seeds = list(seeds)
    cells = len(seeds)

    X = grid_integers(seeds, STREAM_INIT_X, 0, n, K)
    H = grid_integers(seeds, STREAM_INIT_H, 0, n, 4)

    steps = np.full(cells, -1, dtype=np.int64)
    legit = batched_legitimate(X, H, K)
    steps[legit] = 0
    active = ~legit
    for k in range(1, budget + 1):
        if not active.any():
            break
        _, rule = batched_guards(X, H)
        enabled = rule > 0
        enabled &= active[:, None]

        if kind == "synchronous":
            selected = enabled
        elif kind == "central":
            any_enabled = enabled.any(axis=1)
            u = grid_uniforms(seeds, STREAM_PICK, k, 1)[:, 0]
            selected = np.zeros_like(enabled)
            if any_enabled.any():
                selected[any_enabled] = _pick_one_enabled(
                    enabled[any_enabled], u[any_enabled]
                )
        else:  # bernoulli
            coins = grid_uniforms(seeds, STREAM_COINS, k, n) < p
            selected = enabled & coins
            empty = enabled.any(axis=1) & ~selected.any(axis=1)
            if empty.any():
                u = grid_uniforms(seeds, STREAM_PICK, k, 1)[:, 0]
                selected[empty] = _pick_one_enabled(
                    enabled[empty], u[empty]
                )

        fire = np.where(selected, rule, 0)
        C = batched_commands(X, K)
        new_H = H.copy()
        new_X = X.copy()
        new_H[fire == 1] = 2            # R1: <1.0>
        mask24 = (fire == 2) | (fire == 4)
        new_H[mask24] = 0               # R2/R4: <0.0>, x <- C_i
        new_X[mask24] = C[mask24]
        new_H[fire == 3] = 1            # R3: <0.1>
        new_H[fire == 5] = 0            # R5: <0.0>
        X, H = new_X, new_H

        legit = batched_legitimate(X, H, K)
        newly = active & legit
        steps[newly] = k
        active &= ~legit

    return [
        {"steps": int(steps[c]), "converged": bool(steps[c] >= 0),
         "budget": budget}
        for c in range(cells)
    ]


__all__ = [
    "DAEMON_FAMILIES",
    "RULE_LUT",
    "STREAM_COINS",
    "STREAM_INIT_H",
    "STREAM_INIT_X",
    "STREAM_PICK",
    "batched_commands",
    "batched_guards",
    "batched_legitimate",
    "batched_privileged_counts",
    "parse_daemon",
    "run_convergence_cells",
]
