"""Shared successor arithmetic: the one copy of ``C_i``.

Both ring families move counter values the same way — Dijkstra's command
``C_i``: the bottom process increments its predecessor's counter mod K,
everyone else copies it.  Before the kernel layer this digit-delta
arithmetic was written out independently in the shared-memory SSRmin
kernel, the Dijkstra kernel and the message-passing codec; the exhaustive
small-n audit in ``tests/kernels/test_successor_audit.py`` pins all call
sites to this module.

:func:`execute_ssrmin_word` is the full packed-word rule executor (R1-R5
on ``(own, pred)`` words); both the shared-memory kernel's ``update`` and
the MP codec's ``execute`` delegate to it, so a rule-semantics change
lands exactly once.
"""

from __future__ import annotations


def next_x(pred_x: int, i: int, K: int) -> int:
    """Dijkstra's command ``C_i`` on the predecessor counter.

    The bottom process (``i == 0``) writes ``pred_x + 1 mod K``; every
    other process copies ``pred_x``.  Callers pass the *cyclic*
    predecessor's counter (``x[n-1]`` for the bottom).
    """
    return (pred_x + 1) % K if i == 0 else pred_x


def execute_ssrmin_word(rid: int, own: int, pred: int, i: int, K: int) -> int:
    """Packed new local state after firing SSRmin rule ``rid`` at ``i``.

    ``own`` and ``pred`` are packed words (``(x << 2) | h``); the result
    is a packed word.  R1/R3/R5 only rewrite the handshake bits; R2/R4
    additionally move the counter through :func:`next_x` and quiet the
    handshake.
    """
    if rid == 1:                      # R1: <rts.tra> <- 10
        return (own & ~3) | 2
    if rid == 3:                      # R3: <rts.tra> <- 01
        return (own & ~3) | 1
    if rid == 5:                      # R5: <rts.tra> <- 00
        return own & ~3
    if rid in (2, 4):                 # R2 / R4: x <- C_i, <rts.tra> <- 00
        return next_x(pred >> 2, i, K) << 2
    raise ValueError(f"unknown SSRmin rule id {rid}")


def execute_dijkstra_word(rid: int, pred: int, K: int) -> int:
    """New counter after firing Dijkstra rule ``rid`` (words == counters).

    D1 is the bottom rule, D2 the interior one — the rule id encodes the
    position, so this is :func:`next_x` keyed by rule instead of index.
    """
    if rid == 1:
        return next_x(pred, 0, K)
    if rid == 2:
        return next_x(pred, 1, K)
    raise ValueError(f"unknown Dijkstra rule id {rid}")


__all__ = ["execute_dijkstra_word", "execute_ssrmin_word", "next_x"]
