"""Phase-diagram sweep specifications: typed grids with stable cell identity.

A :class:`SweepSpec` names a full phase-diagram grid over the axes the
ROADMAP calls for — ring size ``n``, message loss, delay scale, message
duplication and daemon family — in one of two kinds:

* ``"convergence"`` — shared-memory convergence-time cells (steps until
  Definition 1 first holds from a random start), axes
  ``n × daemon × seed``.  Homogeneous groups of these cells are
  *batchable* through the vectorized kernel backend
  (:func:`repro.kernels.batched.run_convergence_cells`).
* ``"des"`` — message-passing chaos-to-stabilized cells (the Theorem 4
  regime: random states + incoherent caches under loss/delay/duplication),
  axes ``n × loss × delay × duplication × seed``; one discrete-event run
  per cell.

Axes that do not apply to a kind must stay at their defaults — a spec
that sets ``loss_rates`` on a convergence sweep is rejected loudly rather
than silently ignored.

**Cell identity.**  Cells enumerate in deterministic grid order
(``itertools.product`` over the kind's axes); each cell's RNG seed is its
``seed`` axis value, so a cell's result is a pure function of its
parameter tuple — never of grid shape, batch composition or execution
order.  That is the contract the resumable store and the kill-and-resume
test build on.  :meth:`SweepSpec.grid_hash` fingerprints the whole spec;
the store refuses to resume a directory whose recorded spec differs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from itertools import product
from typing import Any, Dict, List, Tuple

from repro.kernels.batched import parse_daemon

#: Spec kinds and the axes each one sweeps.
KIND_AXES: Dict[str, Tuple[str, ...]] = {
    "convergence": ("n", "daemon", "seed"),
    "des": ("n", "loss", "delay", "duplication", "seed"),
}

#: Algorithms runnable per kind (the batched backend is SSRmin-only; the
#: DES runs every algorithm with a packed MP codec).
KIND_ALGORITHMS: Dict[str, Tuple[str, ...]] = {
    "convergence": ("ssrmin",),
    "des": ("ssrmin", "dijkstra"),
}


def _fmt(value: Any) -> str:
    """Compact, deterministic axis-value rendering for cell keys."""
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


@dataclass(frozen=True)
class CellSpec:
    """One enumerated grid cell: stable index, key, parameters and seed."""

    index: int
    key: str
    params: Dict[str, Any]
    seed: int

    def group_params(self) -> Tuple[Tuple[str, Any], ...]:
        """The non-seed parameters — the cell's phase-diagram coordinate."""
        return tuple(
            (k, v) for k, v in self.params.items() if k != "seed"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A named, fully-enumerable phase-diagram grid."""

    name: str
    kind: str = "convergence"
    algorithm: str = "ssrmin"
    n_values: Tuple[int, ...] = (8,)
    seeds: Tuple[int, ...] = tuple(range(8))
    #: Daemon-family axis (convergence): "synchronous" | "central" |
    #: "bernoulli:<p>".
    daemons: Tuple[str, ...] = ("bernoulli:0.5",)
    #: DES axes (kind "des" only).
    loss_rates: Tuple[float, ...] = (0.0,)
    delay_scales: Tuple[float, ...] = (1.0,)
    duplication_rates: Tuple[float, ...] = (0.0,)
    #: Convergence budget override (default 60 n^2 + 600 per cell).
    max_steps: int = 0
    #: DES cell parameters (kind "des" only).
    slice_duration: float = 5.0
    max_time: float = 20_000.0
    gap_duration: float = 100.0

    def __post_init__(self):
        if not self.name or "/" in self.name or self.name.startswith("."):
            raise ValueError(f"invalid sweep name {self.name!r}")
        if self.kind not in KIND_AXES:
            raise ValueError(
                f"unknown sweep kind {self.kind!r}; have {sorted(KIND_AXES)}"
            )
        if self.algorithm not in KIND_ALGORITHMS[self.kind]:
            raise ValueError(
                f"kind {self.kind!r} supports algorithms "
                f"{KIND_ALGORITHMS[self.kind]}, got {self.algorithm!r}"
            )
        # Tuple-ify (tolerates lists from JSON round-trips).
        for fld in ("n_values", "seeds", "daemons", "loss_rates",
                    "delay_scales", "duplication_rates"):
            object.__setattr__(self, fld, tuple(getattr(self, fld)))
        for axis, values in (("n_values", self.n_values),
                             ("seeds", self.seeds)):
            if not values:
                raise ValueError(f"{axis} must be non-empty")
        if any(n < 3 for n in self.n_values):
            raise ValueError("ring sizes must be >= 3")
        for d in self.daemons:
            parse_daemon(d)
        # Axes foreign to the kind must stay at their defaults.
        defaults = {
            "daemons": ("bernoulli:0.5",), "loss_rates": (0.0,),
            "delay_scales": (1.0,), "duplication_rates": (0.0,),
        }
        foreign = (
            ("loss_rates", "delay_scales", "duplication_rates")
            if self.kind == "convergence" else ("daemons",)
        )
        for fld in foreign:
            if getattr(self, fld) != defaults[fld]:
                raise ValueError(
                    f"{fld} is not an axis of kind {self.kind!r} "
                    f"(leave it at {defaults[fld]})"
                )

    # -- enumeration ---------------------------------------------------------
    def axes(self) -> List[Tuple[str, Tuple[Any, ...]]]:
        """The kind's axes as ``(name, values)`` in enumeration order."""
        values = {
            "n": self.n_values,
            "daemon": self.daemons,
            "loss": self.loss_rates,
            "delay": self.delay_scales,
            "duplication": self.duplication_rates,
            "seed": self.seeds,
        }
        return [(axis, values[axis]) for axis in KIND_AXES[self.kind]]

    def total_cells(self) -> int:
        """Grid cardinality (the product of the kind's axis lengths)."""
        count = 1
        for _, values in self.axes():
            count *= len(values)
        return count

    def cells(self) -> List[CellSpec]:
        """Every grid cell in deterministic enumeration order."""
        axes = self.axes()
        names = [axis for axis, _ in axes]
        out = []
        for index, combo in enumerate(product(*(v for _, v in axes))):
            params = dict(zip(names, combo))
            key = "/".join(f"{k}={_fmt(v)}" for k, v in params.items())
            out.append(CellSpec(
                index=index, key=key, params=params,
                seed=int(params["seed"]),
            ))
        return out

    # -- identity / serialization --------------------------------------------
    def to_json(self) -> dict:
        """Plain-dict form (``spec.json`` / run-store ``sweeps.spec``)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "SweepSpec":
        fields = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown sweep spec fields: {sorted(unknown)}")
        return cls(**data)

    def grid_hash(self) -> str:
        """Stable fingerprint of the full spec (resume-compatibility check)."""
        payload = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


__all__ = ["CellSpec", "KIND_ALGORITHMS", "KIND_AXES", "SweepSpec"]
