"""Sweep-engine benchmark: batched cells vs one-task-per-cell (PR artifact).

Two measurements, written to ``BENCH_perf_sweep.json``:

* **grid throughput** — one phase-diagram convergence grid (>= 1000 cells
  full / a small smoke grid quick) executed twice through the *same*
  :func:`repro.sweeps.engine.run_sweep` entry point, once in ``per-cell``
  mode (one task per cell, the pre-kernel-layer execution shape) and once
  in ``batched`` mode (homogeneous cell groups vectorized through
  :mod:`repro.kernels.batched`).  Every cell's record is compared
  field-for-field across the two runs (engine / wall-clock excluded), so
  the speedup cannot come from diverging semantics — this is the
  counter-based-PRNG contract, enforced inline on the full grid;
* **Theorem-2 scaling re-fit** — batched convergence sweeps at ring sizes
  up to n = 10^4 (far past what one-task-per-cell reaches in CI time),
  power-law-fitted with :func:`repro.analysis.scaling.fit_power_law`; the
  fitted exponent must stay within the paper's O(n^2) envelope.

Exit status is non-zero when the measured batched/per-cell throughput
ratio falls below ``--min-cell-speedup``, which is how the CI smoke job
uses it (``--quick --min-cell-speedup 2``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, List

from repro.sweeps.engine import run_sweep
from repro.sweeps.spec import SweepSpec

#: Fields compared for cell identity (execution metadata excluded).
IDENTITY_FIELDS = ("index", "key", "params", "seed", "result")

#: The Theorem 2 bound is O(n^2); the fitted exponent must stay inside it.
MAX_SCALING_EXPONENT = 2.5


def _grid_spec(quick: bool) -> SweepSpec:
    if quick:
        return SweepSpec(
            name="bench-grid",
            n_values=(5, 8),
            daemons=("bernoulli:0.5", "central"),
            seeds=tuple(range(12)),
        )
    # 4 ring sizes x 3 daemon families x 84 seeds = 1008 cells.
    return SweepSpec(
        name="bench-grid",
        n_values=(8, 16, 32, 64),
        daemons=("bernoulli:0.5", "central", "synchronous"),
        seeds=tuple(range(84)),
    )


def _load_cells(base_dir: str, name: str) -> List[Dict[str, Any]]:
    path = os.path.join(base_dir, "sweeps", name, "cells.jsonl")
    with open(path) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    return sorted(records, key=lambda r: r["index"])


def _identity(record: Dict[str, Any]) -> Dict[str, Any]:
    return {k: record[k] for k in IDENTITY_FIELDS}


def bench_grid(quick: bool) -> Dict[str, Any]:
    """Time the same grid through both engine modes; assert cell identity."""
    spec = _grid_spec(quick)
    timings: Dict[str, float] = {}
    cells_by_mode: Dict[str, List[Dict[str, Any]]] = {}
    for mode in ("per-cell", "batched"):
        with tempfile.TemporaryDirectory() as tmp:
            t0 = time.perf_counter()
            summary = run_sweep(spec, base_dir=tmp, mode=mode)
            timings[mode] = time.perf_counter() - t0
            if summary["completed"] != spec.total_cells():
                raise RuntimeError(
                    f"{mode} run incomplete: {summary['completed']}"
                    f"/{spec.total_cells()}"
                )
            cells_by_mode[mode] = _load_cells(tmp, spec.name)

    for per_cell, batched in zip(
        cells_by_mode["per-cell"], cells_by_mode["batched"]
    ):
        if _identity(per_cell) != _identity(batched):
            raise RuntimeError(
                "batched and per-cell results diverged at cell "
                f"{per_cell['index']} ({per_cell['key']}): "
                f"{per_cell['result']} vs {batched['result']}"
            )

    total = spec.total_cells()
    return {
        "workload": (
            f"convergence grid n={list(spec.n_values)} x "
            f"{len(spec.daemons)} daemon families x "
            f"{len(spec.seeds)} seeds = {total} cells, "
            "run_sweep per-cell vs batched"
        ),
        "cells": total,
        "per_cell_seconds": round(timings["per-cell"], 4),
        "batched_seconds": round(timings["batched"], 4),
        "per_cell_cells_per_second": round(total / timings["per-cell"], 1),
        "batched_cells_per_second": round(total / timings["batched"], 1),
        "speedup": round(timings["per-cell"] / timings["batched"], 2),
        "identical_cells": total,
    }


def bench_scaling_fit(quick: bool) -> Dict[str, Any]:
    """Theorem-2 re-fit from batched sweeps at large n (up to 10^4 full)."""
    from repro.analysis.scaling import fit_power_law
    from repro.kernels.batched import run_convergence_cells

    n_values = (32, 64, 128) if quick else (100, 316, 1000, 3162, 10000)
    seeds = list(range(3))
    means: List[float] = []
    t0 = time.perf_counter()
    for n in n_values:
        results = run_convergence_cells(n, seeds, "bernoulli:0.5")
        if not all(r["converged"] for r in results):
            raise RuntimeError(f"unconverged cell at n={n}")
        means.append(sum(r["steps"] for r in results) / len(results))
    elapsed = time.perf_counter() - t0
    fit = fit_power_law(list(n_values), means)
    if fit.exponent > MAX_SCALING_EXPONENT:
        raise RuntimeError(
            f"fitted exponent {fit.exponent:.3f} breaks the O(n^2) "
            f"envelope (> {MAX_SCALING_EXPONENT})"
        )
    return {
        "workload": (
            f"batched convergence at n={list(n_values)}, "
            f"{len(seeds)} seeds each, bernoulli:0.5 daemon"
        ),
        "n_values": list(n_values),
        "mean_steps": [round(m, 2) for m in means],
        "exponent": round(fit.exponent, 4),
        "prefactor": round(fit.prefactor, 4),
        "r_squared": round(fit.r_squared, 6),
        "seconds": round(elapsed, 4),
    }


def run_sweep_bench(quick: bool = False) -> Dict[str, Any]:
    """Run both measurements and assemble the artifact payload."""
    grid = bench_grid(quick)
    scaling = bench_scaling_fit(quick)
    return {
        "schema": 1,
        "suite": "perf_sweep",
        "mode": "quick" if quick else "full",
        "grid": grid,
        "scaling_fit": scaling,
        "equivalence": (
            "per-cell and batched modes produced field-identical records "
            "for every grid cell (enforced inline; see "
            "tests/sweeps/test_engine.py for the differential suite)"
        ),
    }


def format_report(payload: Dict[str, Any]) -> str:
    """Two human-readable summary lines for the CLI / CI log."""
    grid = payload["grid"]
    scaling = payload["scaling_fit"]
    return "\n".join([
        f"grid throughput: {grid['speedup']}x "
        f"({grid['per_cell_cells_per_second']} -> "
        f"{grid['batched_cells_per_second']} cells/s, "
        f"{grid['cells']} cells, all identical)",
        f"scaling fit    : steps ~ {scaling['prefactor']} * "
        f"n^{scaling['exponent']} (R^2 = {scaling['r_squared']}, "
        f"n up to {max(scaling['n_values'])}, {scaling['seconds']}s)",
    ])


def check_gates(
    payload: Dict[str, Any], min_cell_speedup: float = None
) -> List[str]:
    """Failure messages for every gate the payload misses (empty = pass)."""
    failures = []
    grid = payload["grid"]
    if min_cell_speedup and grid["speedup"] < min_cell_speedup:
        failures.append(
            f"batched cells/sec speedup {grid['speedup']} < "
            f"{min_cell_speedup}"
        )
    return failures


__all__ = [
    "IDENTITY_FIELDS",
    "MAX_SCALING_EXPONENT",
    "bench_grid",
    "bench_scaling_fit",
    "check_gates",
    "format_report",
    "run_sweep_bench",
]
