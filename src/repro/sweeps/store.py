"""The resumable sweep store: per-cell checkpoints + sqlite manifest index.

Week-long sweeps die — machines reboot, schedulers SIGTERM, quotas hit —
so every completed cell is durable the moment it finishes, in two places:

* ``<base_dir>/sweeps/<name>/cells.jsonl`` — one appended, flushed JSON
  line per cell (``index``, ``key``, ``params``, ``seed``, ``engine``,
  ``wall_seconds``, ``result``).  The append-and-flush discipline means a
  kill can lose at most the line being written; :meth:`completed`
  tolerates (and drops) a truncated tail.
* the :class:`~repro.observability.store.RunStore` ``sweeps`` /
  ``sweep_cells`` tables (schema v3) — the queryable manifest index that
  ``repro sweep status|report`` and the CI assertions read.

The JSONL is the write-ahead source of truth; on open, :meth:`completed`
*reconciles* the two — any cell present in the JSONL but missing from
sqlite (lost to the run store's buffered commits when the process died)
is re-indexed.  Results never change on reconcile: a cell's result is a
pure function of its parameters (see :mod:`repro.sweeps.spec`), which is
what makes re-running only the missing cells bit-identical to an
uninterrupted run.

``spec.json`` in the sweep directory pins the grid; attaching with a
different spec (by :meth:`SweepStore.create`) fails on the grid hash
instead of silently mixing two grids' cells.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
from typing import Any, Dict, Optional

from repro.observability.store import RunStore
from repro.sweeps.spec import SweepSpec

#: Sweep state machine values recorded in the ``sweeps.status`` column.
STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"


def sweep_dir(base_dir: str, name: str) -> str:
    """The checkpoint directory of a named sweep."""
    return os.path.join(base_dir, "sweeps", name)


def _utcnow() -> str:
    return _dt.datetime.now(_dt.timezone.utc).isoformat()


class SweepStore:
    """Durable cell checkpoints for one named sweep.

    Construct via :meth:`create` (new or resumed run, spec in hand) or
    :meth:`attach` (status/report paths, spec loaded from disk).  The
    ``run_store`` is borrowed, not owned — callers manage its lifecycle.
    """

    def __init__(self, spec: SweepSpec, base_dir: str, run_store: RunStore):
        self.spec = spec
        self.base_dir = base_dir
        self.directory = sweep_dir(base_dir, spec.name)
        self.run_store = run_store
        self._cells_path = os.path.join(self.directory, "cells.jsonl")
        self._spec_path = os.path.join(self.directory, "spec.json")
        self._append_fh = None
        os.makedirs(self.directory, exist_ok=True)
        if not os.path.isfile(self._spec_path):
            with open(self._spec_path, "w") as fh:
                json.dump(spec.to_json(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        self.sweep_id = run_store.upsert_sweep(
            spec.name,
            spec=spec.to_json(),
            directory=self.directory,
            cells=spec.total_cells(),
            status=STATUS_RUNNING,
        )
        row = run_store.get_sweep(spec.name)
        if not row.get("created_utc"):
            run_store.upsert_sweep(spec.name, created_utc=_utcnow())

    # -- construction --------------------------------------------------------
    @classmethod
    def create(
        cls,
        spec: SweepSpec,
        base_dir: str,
        run_store: RunStore,
        *,
        resume: bool = False,
        fresh: bool = False,
    ) -> "SweepStore":
        """Open a sweep for running ``spec``.

        An existing directory must carry the *same* grid (hash-checked).
        With checkpointed cells already present, the caller must say what
        they mean: ``resume=True`` keeps them, ``fresh=True`` discards
        them, neither is an error.
        """
        path = os.path.join(sweep_dir(base_dir, spec.name), "spec.json")
        existing = cls._load_spec(path)
        if existing is not None and existing.grid_hash() != spec.grid_hash():
            raise ValueError(
                f"sweep {spec.name!r} already exists with a different grid "
                f"(spec {path}); pick a new name or resume/--fresh it"
            )
        store = cls(spec, base_dir, run_store)
        has_cells = bool(store.completed())
        if has_cells and not (resume or fresh):
            raise ValueError(
                f"sweep {spec.name!r} has checkpointed cells; pass "
                f"resume=True to continue it or fresh=True to restart"
            )
        if fresh:
            store._discard_cells()
        return store

    @classmethod
    def attach(
        cls, name: str, base_dir: str, run_store: RunStore
    ) -> "SweepStore":
        """Open an existing sweep by name (spec from disk, else the index)."""
        spec = cls._load_spec(
            os.path.join(sweep_dir(base_dir, name), "spec.json")
        )
        if spec is None:
            row = run_store.get_sweep(name)
            if row is None or not isinstance(row.get("spec"), dict):
                raise ValueError(
                    f"no sweep named {name!r} under {base_dir!r} or in the "
                    f"run store"
                )
            spec = SweepSpec.from_json(row["spec"])
        return cls(spec, base_dir, run_store)

    @staticmethod
    def _load_spec(path: str) -> Optional[SweepSpec]:
        if not os.path.isfile(path):
            return None
        with open(path) as fh:
            return SweepSpec.from_json(json.load(fh))

    # -- cell checkpoints ----------------------------------------------------
    def completed(self) -> Dict[int, Dict[str, Any]]:
        """Reconciled ``{cell_index: record}`` of every durable cell.

        Reads the JSONL checkpoints (dropping an unparseable truncated
        tail line) and the sqlite index, then repairs the index from the
        JSONL where the two diverge.
        """
        records: Dict[int, Dict[str, Any]] = {}
        if os.path.isfile(self._cells_path):
            with open(self._cells_path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # truncated tail from a kill mid-write
                    if "index" in record and "result" in record:
                        records[int(record["index"])] = record
        indexed = set(self.run_store.sweep_cell_indexes(self.sweep_id))
        for index, record in records.items():
            if index not in indexed:
                self._index_cell(record)
        self.run_store.flush()
        # Cells only the index knows about (jsonl lost/pruned) still count.
        if indexed - set(records):
            for row in self.run_store.sweep_cells_for(self.sweep_id):
                idx = int(row["cell_index"])
                if idx not in records:
                    records[idx] = {
                        "index": idx,
                        "key": row.get("cell_key"),
                        "params": row.get("params") or {},
                        "seed": row.get("seed"),
                        "engine": row.get("engine"),
                        "wall_seconds": row.get("wall_seconds"),
                        "result": row.get("result") or {},
                    }
        return records

    def record(
        self,
        cell,
        result: Dict[str, Any],
        engine: str,
        wall_seconds: float,
    ) -> Dict[str, Any]:
        """Durably checkpoint one completed cell (JSONL first, then index)."""
        record = {
            "index": cell.index,
            "key": cell.key,
            "params": cell.params,
            "seed": cell.seed,
            "engine": engine,
            "wall_seconds": round(wall_seconds, 6),
            "result": result,
        }
        if self._append_fh is None:
            # A kill mid-write can leave a truncated, newline-less tail;
            # start on a fresh line so the garbage can't swallow this record.
            needs_newline = False
            if os.path.isfile(self._cells_path):
                with open(self._cells_path, "rb") as fh:
                    fh.seek(0, os.SEEK_END)
                    if fh.tell() > 0:
                        fh.seek(-1, os.SEEK_END)
                        needs_newline = fh.read(1) != b"\n"
            self._append_fh = open(self._cells_path, "a")
            if needs_newline:
                self._append_fh.write("\n")
        self._append_fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._append_fh.flush()
        self._index_cell(record)
        return record

    def _index_cell(self, record: Dict[str, Any]) -> None:
        self.run_store.upsert_sweep_cell(
            self.sweep_id,
            int(record["index"]),
            cell_key=record.get("key"),
            params=record.get("params"),
            seed=record.get("seed"),
            engine=record.get("engine"),
            wall_seconds=record.get("wall_seconds"),
            result=record.get("result"),
        )

    def _discard_cells(self) -> None:
        self.run_store.reset_sweep_cells(self.sweep_id)
        self.run_store.flush()
        if os.path.isfile(self._cells_path):
            os.remove(self._cells_path)

    # -- sweep row -----------------------------------------------------------
    def finish(self, completed: int, wall_seconds: float) -> None:
        """Update the manifest row after a run/resume pass."""
        row = self.run_store.get_sweep(self.spec.name) or {}
        total = self.spec.total_cells()
        self.run_store.upsert_sweep(
            self.spec.name,
            updated_utc=_utcnow(),
            completed=completed,
            status=(
                STATUS_COMPLETED if completed >= total else STATUS_RUNNING
            ),
            wall_seconds=float(row.get("wall_seconds") or 0.0) + wall_seconds,
        )
        self.run_store.flush()

    def close(self) -> None:
        """Close the JSONL append handle (the run store is borrowed)."""
        if self._append_fh is not None:
            self._append_fh.close()
            self._append_fh = None

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "STATUS_COMPLETED",
    "STATUS_RUNNING",
    "SweepStore",
    "sweep_dir",
]
