"""First-class phase-diagram sweeps over the unified kernel layer.

The package generalizes the one-off seeds × n × loss grid of
:mod:`repro.messagepassing.fastpath.sweep` into a sweep *engine*:

* :mod:`repro.sweeps.spec` — typed grid specifications
  (n × loss × delay × duplication × daemon-family) with deterministic
  cell identity;
* :mod:`repro.sweeps.engine` — batched-cell execution (homogeneous cell
  groups vectorized through :mod:`repro.kernels.batched`) and per-cell
  fallback, with per-cell-seed determinism making the two bit-identical;
* :mod:`repro.sweeps.store` — resumable checkpoints: JSONL write-ahead
  cells plus the RunStore's v3 ``sweeps``/``sweep_cells`` manifest index;
* :mod:`repro.sweeps.report` — store-derived aggregation and the
  Theorem-2 scaling re-fit.

CLI surface: ``repro sweep run|resume|status|report``.
"""

from repro.sweeps.engine import resume_sweep, run_sweep
from repro.sweeps.report import build_sweep_report, render_report, render_status
from repro.sweeps.spec import CellSpec, SweepSpec
from repro.sweeps.store import SweepStore, sweep_dir

__all__ = [
    "CellSpec",
    "SweepSpec",
    "SweepStore",
    "build_sweep_report",
    "render_report",
    "render_status",
    "resume_sweep",
    "run_sweep",
    "sweep_dir",
]
