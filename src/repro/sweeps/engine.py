"""The sweep scheduler: batched-cell and per-cell execution with resume.

:func:`run_sweep` drives one :class:`~repro.sweeps.spec.SweepSpec` to
completion:

1. open the :class:`~repro.sweeps.store.SweepStore` (create / resume /
   fresh), reconcile already-checkpointed cells, and enumerate the
   *missing* ones;
2. execute the missing cells —

   * **batched-cell mode**: convergence cells partition into homogeneous
     groups (same ``n`` and daemon; only seeds differ) and each group
     advances in lockstep through the vectorized kernel backend
     (:func:`repro.kernels.batched.run_convergence_cells`), amortizing
     per-cell task setup into one numpy pipeline.  Counter-based per-cell
     randomness makes the results identical to running each cell alone —
     the benchmark asserts this cell-by-cell;
   * **per-cell mode**: one task per cell through
     :func:`repro.experiments.parallel.run_tasks_parallel` (the
     pre-kernel-layer execution shape; DES cells always run this way);

3. checkpoint every completed cell durably (JSONL + sqlite index) the
   moment it finishes, and stream one ``("sweep", "sweep_progress")``
   telemetry event per cell into the ambient session.

A killed run (SIGTERM mid-grid) therefore loses nothing but in-flight
cells; ``resume`` re-runs exactly the missing set and, because cells are
pure functions of their parameters, lands bit-identical results.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.observability.store import RunStore
from repro.sweeps.spec import CellSpec, SweepSpec
from repro.sweeps.store import SweepStore

#: Execution modes: ``auto`` batches whatever is batchable.
MODES = ("auto", "batched", "per-cell")

#: Cells per lockstep group — bounds peak array memory at
#: ``2 * chunk * max(n)`` int64 while keeping per-chunk numpy dispatch
#: overhead amortized.
GROUP_CHUNK = 256

#: Algorithm factories by name (names, not classes, cross process
#: boundaries in per-cell mode).
def _make_algorithm(algorithm: str, n: int):
    if algorithm == "ssrmin":
        from repro.core.ssrmin import SSRmin

        return SSRmin(n, n + 1)
    if algorithm == "dijkstra":
        from repro.algorithms.dijkstra import DijkstraKState

        return DijkstraKState(n, n + 1)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _convergence_cell_worker(payload: tuple) -> Dict[str, Any]:
    """One convergence cell as an isolated task (module-level, picklable).

    Calls the same counter-based kernel backend as batched mode with a
    single-seed group — the construction that guarantees batched results
    match per-cell results bitwise.
    """
    n, daemon, seed, max_steps = payload
    from repro.kernels.batched import run_convergence_cells

    return run_convergence_cells(
        n, [seed], daemon, budget=max_steps or None,
    )[0]


def _des_cell_worker(payload: tuple) -> Dict[str, Any]:
    """One DES chaos-to-stabilized cell (module-level, picklable)."""
    (algorithm, n, loss, delay_scale, duplication, seed,
     slice_duration, max_time, gap_duration) = payload
    from repro.messagepassing.coherence import CoherenceTracker
    from repro.messagepassing.cst import transformed_from_chaos
    from repro.messagepassing.links import UniformDelay
    from repro.messagepassing.modelgap import evaluate_gap

    alg = _make_algorithm(algorithm, n)
    net = transformed_from_chaos(
        alg,
        seed=seed,
        loss_probability=loss,
        duplicate_probability=duplication,
        delay_model=UniformDelay(0.5 * delay_scale, 1.5 * delay_scale),
    )
    tracker = CoherenceTracker(net)
    stabilized = tracker.run_until_stabilized(
        slice_duration=slice_duration, max_time=max_time,
    )
    report = evaluate_gap(net, duration=gap_duration, warmup=net.queue.now)
    return {
        "stabilized_at": stabilized,
        "min_tokens": report.min_count,
        "max_tokens": report.max_count,
        "zero_time": report.zero_time,
        "events": net.queue.executed,
    }


def _publish_progress(
    name: str, done: int, total: int, cell: Optional[CellSpec], engine: str
) -> None:
    from repro.telemetry.session import current_session

    session = current_session()
    if session is None:
        return
    fields: Dict[str, Any] = {
        "name": name, "total": total, "engine": engine,
    }
    if cell is not None:
        fields["cell_index"] = cell.index
        fields["cell_key"] = cell.key
    session.bus.publish("sweep", "sweep_progress", float(done), **fields)


def _batch_groups(
    cells: Sequence[CellSpec],
) -> List[Tuple[Tuple[int, str], List[CellSpec]]]:
    """Partition convergence cells into homogeneous (n, daemon) groups."""
    groups: Dict[Tuple[int, str], List[CellSpec]] = {}
    for cell in cells:
        key = (int(cell.params["n"]), str(cell.params["daemon"]))
        groups.setdefault(key, []).append(cell)
    return sorted(groups.items())


def run_sweep(
    spec: SweepSpec,
    *,
    base_dir: str = "runs",
    run_store: Union[RunStore, str, None] = None,
    resume: bool = False,
    fresh: bool = False,
    mode: str = "auto",
    workers: int = 1,
    throttle: float = 0.0,
) -> Dict[str, Any]:
    """Run (or resume) one sweep to completion; returns a summary dict.

    Parameters
    ----------
    spec:
        The grid to run.
    base_dir:
        Checkpoint root (cells land under ``<base_dir>/sweeps/<name>/``).
    run_store:
        An open :class:`RunStore`, a path to one, or None for
        ``<base_dir>/store.sqlite``.
    resume, fresh:
        What to do when the named sweep already has checkpointed cells:
        keep them and run only the missing set, or discard and restart.
    mode:
        ``"auto"`` (batch whatever is batchable), ``"batched"`` (require
        the batched backend; error for DES grids) or ``"per-cell"`` (one
        task per cell — the pre-refactor execution shape, and the
        benchmark baseline).
    workers:
        Process fan-out for per-cell tasks (1 = in-process).
    throttle:
        Parent-side sleep after each recorded cell — a pacing knob for
        kill/resume tests and CI smoke jobs; 0 disables.
    """
    import os

    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    batchable = spec.kind == "convergence" and spec.algorithm == "ssrmin"
    if mode == "batched" and not batchable:
        raise ValueError(
            f"kind {spec.kind!r}/{spec.algorithm} has no batched backend; "
            f"use mode='auto' or 'per-cell'"
        )
    use_batched = batchable and mode != "per-cell"

    owns_store = not isinstance(run_store, RunStore)
    if owns_store:
        path = run_store if isinstance(run_store, str) else os.path.join(
            base_dir, "store.sqlite"
        )
        run_store = RunStore(path)
    t0 = time.perf_counter()
    try:
        store = SweepStore.create(
            spec, base_dir, run_store, resume=resume, fresh=fresh,
        )
        with store:
            done_before = store.completed()
            cells = spec.cells()
            total = len(cells)
            missing = [c for c in cells if c.index not in done_before]
            done = len(done_before)
            _publish_progress(spec.name, done, total, None, mode)

            def _record(cell: CellSpec, result: Dict[str, Any],
                        engine: str, wall: float) -> None:
                nonlocal done
                store.record(cell, result, engine, wall)
                done += 1
                _publish_progress(spec.name, done, total, cell, engine)
                if throttle > 0.0:
                    time.sleep(throttle)

            if use_batched:
                for (n, daemon), group in _batch_groups(missing):
                    from repro.kernels.batched import run_convergence_cells

                    for lo in range(0, len(group), GROUP_CHUNK):
                        chunk = group[lo:lo + GROUP_CHUNK]
                        g0 = time.perf_counter()
                        results = run_convergence_cells(
                            n, [c.seed for c in chunk], daemon,
                            budget=spec.max_steps or None,
                        )
                        per_cell_wall = (
                            (time.perf_counter() - g0) / len(chunk)
                        )
                        for cell, result in zip(chunk, results):
                            _record(cell, result, "batched", per_cell_wall)
            else:
                from repro.experiments.parallel import run_tasks_parallel

                if spec.kind == "convergence":
                    worker = _convergence_cell_worker
                    payloads = [
                        (int(c.params["n"]), str(c.params["daemon"]),
                         c.seed, spec.max_steps)
                        for c in missing
                    ]
                else:
                    worker = _des_cell_worker
                    payloads = [
                        (spec.algorithm, int(c.params["n"]),
                         float(c.params["loss"]), float(c.params["delay"]),
                         float(c.params["duplication"]), c.seed,
                         spec.slice_duration, spec.max_time,
                         spec.gap_duration)
                        for c in missing
                    ]
                walls: Dict[int, float] = {}

                def _on_result(index, result, _done, _total):
                    cell = missing[index]
                    wall = time.perf_counter() - walls.get(index, t0)
                    _record(cell, result, "per-cell", wall)

                # Wall clocks are informational; parallel completion order
                # makes exact per-cell timing from the parent approximate.
                for i in range(len(missing)):
                    walls[i] = time.perf_counter()
                run_tasks_parallel(
                    worker, payloads, workers=workers, on_result=_on_result,
                )

            wall = time.perf_counter() - t0
            store.finish(done, wall)
            ran = done - len(done_before)
            return {
                "name": spec.name,
                "kind": spec.kind,
                "cells": total,
                "completed": done,
                "skipped": len(done_before),
                "ran": ran,
                "wall_seconds": wall,
                "cells_per_sec": (ran / wall) if wall > 0 and ran else 0.0,
                "mode": "batched" if use_batched else "per-cell",
                "status": "completed" if done >= total else "running",
                "directory": store.directory,
            }
    finally:
        if owns_store:
            run_store.close()


def resume_sweep(
    name: str,
    *,
    base_dir: str = "runs",
    run_store: Union[RunStore, str, None] = None,
    mode: str = "auto",
    workers: int = 1,
    throttle: float = 0.0,
) -> Dict[str, Any]:
    """Resume a named sweep from its recorded spec (only missing cells run)."""
    import os

    owns_store = not isinstance(run_store, RunStore)
    if owns_store:
        path = run_store if isinstance(run_store, str) else os.path.join(
            base_dir, "store.sqlite"
        )
        run_store = RunStore(path)
    try:
        store = SweepStore.attach(name, base_dir, run_store)
        spec = store.spec
        store.close()
        return run_sweep(
            spec, base_dir=base_dir, run_store=run_store, resume=True,
            mode=mode, workers=workers, throttle=throttle,
        )
    finally:
        if owns_store:
            run_store.close()


__all__ = ["GROUP_CHUNK", "MODES", "resume_sweep", "run_sweep"]
