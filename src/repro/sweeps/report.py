"""Store-derived sweep reports: per-coordinate stats + Theorem-2 scaling fit.

Reports are computed **from the run store's manifest index**, not from the
in-memory results of the run that just finished — the same numbers are
reproducible after the process (or machine) that ran the sweep is gone,
and the CI sweep-smoke job asserts on exactly this path.

A report groups cells by their phase-diagram coordinate (every axis except
``seed``), aggregates each group's headline metric over seeds
(count/mean/p50/p99/max), and — when the grid spans at least two ring
sizes — re-fits the Theorem 2 scaling law ``E[steps] = a * n^alpha``
against the per-``n`` mean convergence times, the same
:func:`repro.analysis.scaling.fit_power_law` the verification suite gates
with ``alpha <= 2.5``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.observability.slo import quantile
from repro.observability.store import RunStore

#: Headline metric per sweep kind (the value aggregated over seeds).
KIND_METRICS: Dict[str, str] = {
    "convergence": "steps",
    "des": "stabilized_at",
}


def _metric(kind: str, result: Dict[str, Any]) -> Optional[float]:
    value = result.get(KIND_METRICS.get(kind, "steps"))
    if value is None:
        return None
    return float(value)


def _group_stats(values: List[float]) -> Dict[str, float]:
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": quantile(values, 0.50),
        "p99": quantile(values, 0.99),
        "max": max(values),
    }


def build_sweep_report(
    run_store: RunStore, name: str
) -> Dict[str, Any]:
    """Aggregate a named sweep's indexed cells into a report dict.

    Raises :class:`ValueError` when the sweep is unknown to the store.
    """
    row = run_store.get_sweep(name)
    if row is None:
        raise ValueError(f"no sweep named {name!r} in the run store")
    spec = row.get("spec") if isinstance(row.get("spec"), dict) else {}
    kind = spec.get("kind", "convergence")
    cells = run_store.sweep_cells_for(row["id"])

    groups: Dict[Tuple[Tuple[str, Any], ...], List[float]] = {}
    incomplete = 0
    for cell in cells:
        params = cell.get("params") or {}
        result = cell.get("result") or {}
        value = _metric(kind, result)
        if value is None or (
            kind == "convergence" and not result.get("converged", True)
        ):
            incomplete += 1
            continue
        coord = tuple(
            (k, v) for k, v in params.items() if k != "seed"
        )
        groups.setdefault(coord, []).append(value)

    group_rows = []
    for coord, values in sorted(groups.items(), key=lambda kv: str(kv[0])):
        group_rows.append({
            "params": dict(coord),
            "stats": _group_stats(values),
        })

    report: Dict[str, Any] = {
        "name": name,
        "kind": kind,
        "status": row.get("status"),
        "cells": row.get("cells"),
        "completed": len(cells),
        "unconverged": incomplete,
        "wall_seconds": row.get("wall_seconds"),
        "metric": KIND_METRICS.get(kind, "steps"),
        "groups": group_rows,
    }

    fit = fit_scaling(group_rows)
    if fit is not None:
        report["scaling_fit"] = fit
    return report


def fit_scaling(group_rows: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Power-law fit of mean metric vs n, when >=2 distinct ring sizes.

    Pools each ring size's per-coordinate means (across daemons / loss
    rates) so heterogeneous grids still produce one Theorem-2-style curve.
    """
    from repro.analysis.scaling import fit_power_law

    by_n: Dict[int, List[float]] = {}
    for row in group_rows:
        n = row["params"].get("n")
        if n is None:
            continue
        by_n.setdefault(int(n), []).append(row["stats"]["mean"])
    if len(by_n) < 2:
        return None
    xs = sorted(by_n)
    ys = [sum(by_n[n]) / len(by_n[n]) for n in xs]
    fit = fit_power_law(xs, ys)
    return {
        "exponent": fit.exponent,
        "prefactor": fit.prefactor,
        "r_squared": fit.r_squared,
        "n_values": xs,
        "mean_metric": ys,
    }


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`build_sweep_report`'s dict."""
    lines = [
        f"sweep {report['name']} [{report['kind']}] — "
        f"{report['completed']}/{report['cells']} cells, "
        f"status {report['status']}",
        f"metric: {report['metric']}"
        + (f"  (unconverged cells: {report['unconverged']})"
           if report.get("unconverged") else ""),
    ]
    for row in report["groups"]:
        coord = " ".join(f"{k}={v}" for k, v in row["params"].items())
        s = row["stats"]
        lines.append(
            f"  {coord}: count={s['count']} mean={s['mean']:.2f} "
            f"p50={s['p50']:.2f} p99={s['p99']:.2f} max={s['max']:.0f}"
        )
    fit = report.get("scaling_fit")
    if fit:
        lines.append(
            f"scaling fit: metric = {fit['prefactor']:.3g} * "
            f"n^{fit['exponent']:.3f} (R^2 = {fit['r_squared']:.4f}, "
            f"n in {fit['n_values']})"
        )
    return "\n".join(lines)


def render_status(run_store: RunStore, name: Optional[str] = None) -> str:
    """One status line per sweep (or detail for one named sweep)."""
    rows = run_store.list_sweeps()
    if name is not None:
        rows = [r for r in rows if r.get("name") == name]
        if not rows:
            raise ValueError(f"no sweep named {name!r} in the run store")
    if not rows:
        return "no sweeps recorded"
    lines = []
    for row in rows:
        done = len(run_store.sweep_cell_indexes(row["id"]))
        total = row.get("cells") or 0
        wall = row.get("wall_seconds") or 0.0
        lines.append(
            f"{row['name']}: {done}/{total} cells, status "
            f"{row.get('status')}, wall {wall:.1f}s"
        )
    return "\n".join(lines)


def report_to_json(report: Dict[str, Any]) -> str:
    """Deterministically-ordered JSON rendering (``--json`` output)."""
    return json.dumps(report, indent=2, sort_keys=True)


__all__ = [
    "KIND_METRICS",
    "build_sweep_report",
    "fit_scaling",
    "render_report",
    "render_status",
    "report_to_json",
]
