"""Temporal properties over recorded executions.

A lightweight LTL-flavoured toolkit for stating the paper's guarantees as
checkable properties of finite executions:

* :func:`always` — a state predicate holds at every configuration;
* :func:`eventually` — it holds at some configuration;
* :func:`eventually_always` — from some point on it holds forever
  (convergence: ``eventually_always(is_legitimate)``);
* :func:`leads_to` — whenever ``p`` holds, ``q`` holds at that or a later
  configuration (progress: "enabled leads to served");
* :func:`until` — ``p`` holds at least until ``q`` first holds.

All functions take a sequence of configurations (an
:class:`~repro.simulation.execution.Execution` iterates its configurations)
and return a :class:`PropertyResult` that localizes the first
counterexample, which makes failing tests actionable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence

Predicate = Callable[[Any], bool]


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of a temporal-property check.

    Attributes
    ----------
    holds:
        Whether the property holds on the execution.
    counterexample_index:
        Index of the configuration witnessing failure, when applicable.
    note:
        Human-readable explanation.
    """

    holds: bool
    counterexample_index: Optional[int] = None
    note: str = ""

    def __bool__(self) -> bool:
        return self.holds


def _materialize(execution: Iterable[Any]) -> List[Any]:
    return list(execution)


def always(execution: Iterable[Any], p: Predicate) -> PropertyResult:
    """``G p``: the predicate holds at every configuration."""
    for t, config in enumerate(execution):
        if not p(config):
            return PropertyResult(False, t, f"predicate false at index {t}")
    return PropertyResult(True)


def eventually(execution: Iterable[Any], p: Predicate) -> PropertyResult:
    """``F p``: the predicate holds at some configuration."""
    count = 0
    for t, config in enumerate(execution):
        count += 1
        if p(config):
            return PropertyResult(True, note=f"first satisfied at index {t}")
    return PropertyResult(
        False, max(count - 1, 0), "predicate never satisfied"
    )


def eventually_always(execution: Iterable[Any], p: Predicate) -> PropertyResult:
    """``F G p``: from some index on the predicate holds forever.

    On finite executions: the suffix starting at the last falsifying index
    plus one must be non-empty.
    """
    configs = _materialize(execution)
    last_bad = -1
    for t, config in enumerate(configs):
        if not p(config):
            last_bad = t
    if last_bad == len(configs) - 1:
        return PropertyResult(
            False, last_bad, "predicate false at the final configuration"
        )
    return PropertyResult(
        True, note=f"stable from index {last_bad + 1}"
    )


def leads_to(execution: Iterable[Any], p: Predicate, q: Predicate) -> PropertyResult:
    """``G (p -> F q)``: every ``p``-state is followed (inclusively) by ``q``.

    On finite executions, a ``p``-state with no subsequent ``q`` is a
    counterexample.
    """
    configs = _materialize(execution)
    # Compute, for each index, whether q holds at or after it.
    q_later = [False] * (len(configs) + 1)
    for t in range(len(configs) - 1, -1, -1):
        q_later[t] = q(configs[t]) or q_later[t + 1]
    for t, config in enumerate(configs):
        if p(config) and not q_later[t]:
            return PropertyResult(
                False, t, f"p at index {t} never followed by q"
            )
    return PropertyResult(True)


def until(execution: Iterable[Any], p: Predicate, q: Predicate) -> PropertyResult:
    """``p U q``: ``p`` holds at every configuration before the first ``q``.

    Requires ``q`` to eventually hold (strong until).
    """
    for t, config in enumerate(_materialize(execution)):
        if q(config):
            return PropertyResult(True, note=f"q first at index {t}")
        if not p(config):
            return PropertyResult(False, t, f"p false at {t} before any q")
    return PropertyResult(False, None, "q never holds (strong until)")


# -- paper-specific property bundles -----------------------------------------

def check_convergence_property(execution: Sequence[Any], algorithm) -> PropertyResult:
    """Lemma 6 as ``F G legitimate`` on a recorded execution."""
    return eventually_always(execution, algorithm.is_legitimate)


def check_mutual_inclusion_property(
    execution: Sequence[Any], algorithm, after_convergence: bool = True
) -> PropertyResult:
    """Theorem 1's band as a temporal property.

    With ``after_convergence`` the band ``1 <= |privileged| <= 2`` is
    required only from the first legitimate configuration on.
    """
    def band(config) -> bool:
        return 1 <= len(algorithm.privileged(config)) <= 2

    configs = _materialize(execution)
    if not after_convergence:
        return always(configs, band)
    start = next(
        (t for t, c in enumerate(configs) if algorithm.is_legitimate(c)),
        None,
    )
    if start is None:
        return PropertyResult(False, len(configs) - 1,
                              "never reached legitimacy")
    return always(configs[start:], band)
