"""Explicit-state transition systems over an algorithm's full state space.

For small instances the configuration space ``|Q|^n`` is enumerable (e.g.
SSRmin with ``n=4, K=5`` has ``(4*5)^4 = 160,000`` configurations).  A
:class:`TransitionSystem` materializes successors on demand and memoizes
them, supporting both daemon semantics:

* ``"central"`` — successors via each single enabled process;
* ``"distributed"`` — successors via every non-empty subset of enabled
  processes (optionally capped at ``max_selection`` to bound fan-out; the cap
  is reported so callers know when coverage is partial).

Configurations are identified by their hashable normal forms (tuples of local
states, or :class:`~repro.core.state.Configuration` which hashes likewise).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.algorithms.base import RingAlgorithm


def nonempty_subsets(
    items: Tuple[int, ...], max_size: Optional[int] = None
) -> Iterator[Tuple[int, ...]]:
    """All non-empty subsets of ``items``, optionally size-capped."""
    top = len(items) if max_size is None else min(max_size, len(items))
    for r in range(1, top + 1):
        yield from itertools.combinations(items, r)


class TransitionSystem:
    """Lazy explicit-state transition system for one algorithm instance.

    Parameters
    ----------
    algorithm:
        The algorithm; must have finite :meth:`local_state_space`.
    daemon:
        ``"central"`` or ``"distributed"``.
    max_selection:
        For the distributed daemon, the largest selection size explored;
        ``None`` explores all subsets (exponential in the enabled count —
        fine here because self-stabilizing ring algorithms rarely have many
        simultaneously enabled processes in small instances).
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        daemon: str = "distributed",
        max_selection: Optional[int] = None,
    ):
        if daemon not in ("central", "distributed"):
            raise ValueError(f"daemon must be 'central' or 'distributed', got {daemon!r}")
        self.algorithm = algorithm
        self.daemon = daemon
        self.max_selection = 1 if daemon == "central" else max_selection
        self._succ_cache: Dict[Any, Tuple[Any, ...]] = {}

    # -- state enumeration ----------------------------------------------------
    def states(self) -> Iterator[Any]:
        """Every configuration in the space (|Q|^n values)."""
        return self.algorithm.configuration_space()

    def state_count(self) -> int:
        """|Q|^n for the default configuration space.

        Algorithms overriding :meth:`configuration_space` (e.g. the 4-state
        ring with frozen bits) are counted by iteration.
        """
        try:
            q = self.algorithm.state_count_per_process()
            # Trust the product form only for the default space.
            if type(self.algorithm).configuration_space is RingAlgorithm.configuration_space:
                return q ** self.algorithm.n
        except Exception:
            pass
        return sum(1 for _ in self.states())

    # -- successors -------------------------------------------------------------
    def successors(self, config: Any) -> Tuple[Any, ...]:
        """Distinct successor configurations under the chosen daemon."""
        key = self._key(config)
        cached = self._succ_cache.get(key)
        if cached is not None:
            return cached
        enabled = self.algorithm.enabled_processes(config)
        succs: List[Any] = []
        seen = set()
        for sel in nonempty_subsets(enabled, self.max_selection):
            nxt = self.algorithm.step(config, sel)
            k = self._key(nxt)
            if k not in seen:
                seen.add(k)
                succs.append(nxt)
        out = tuple(succs)
        self._succ_cache[key] = out
        return out

    def is_deadlocked(self, config: Any) -> bool:
        """True iff no process is enabled."""
        return not self.algorithm.enabled_processes(config)

    @staticmethod
    def _key(config: Any) -> Any:
        states = getattr(config, "states", None)
        return states if states is not None else config

    # -- reachability -----------------------------------------------------------
    def reachable_from(self, initial: Iterable[Any]) -> Dict[Any, Any]:
        """BFS closure: map ``key -> configuration`` reachable from ``initial``."""
        frontier = list(initial)
        seen: Dict[Any, Any] = {self._key(c): c for c in frontier}
        while frontier:
            nxt_frontier = []
            for c in frontier:
                for s in self.successors(c):
                    k = self._key(s)
                    if k not in seen:
                        seen[k] = s
                        nxt_frontier.append(s)
            frontier = nxt_frontier
        return seen
