"""Explicit-state transition systems over an algorithm's full state space.

For small instances the configuration space ``|Q|^n`` is enumerable (e.g.
SSRmin with ``n=4, K=5`` has ``(4*5)^4 = 160,000`` configurations).  A
:class:`TransitionSystem` materializes successors on demand and memoizes
them, supporting both daemon semantics:

* ``"central"`` — successors via each single enabled process;
* ``"distributed"`` — successors via every non-empty subset of enabled
  processes (optionally capped at ``max_selection`` to bound fan-out; the cap
  is reported so callers know when coverage is partial).

Configurations are identified by their hashable normal forms.  With a
:mod:`~repro.simulation.fastpath` kernel available, keys are *packed ints*
(collision-free base-``|Q|`` encodings — cheaper to hash and compare than
tuples-of-tuples), successor generation computes each enabled command
**once** per configuration and reuses it across all daemon selections
(the naive path re-evaluates guards for every subset), and legitimacy
tests are memoized per key for the model checker's repeated queries.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.simulation.fastpath import resolve_kernel


def nonempty_subsets(
    items: Tuple[int, ...], max_size: Optional[int] = None
) -> Iterator[Tuple[int, ...]]:
    """All non-empty subsets of ``items``, optionally size-capped."""
    top = len(items) if max_size is None else min(max_size, len(items))
    for r in range(1, top + 1):
        yield from itertools.combinations(items, r)


class TransitionSystem:
    """Lazy explicit-state transition system for one algorithm instance.

    Parameters
    ----------
    algorithm:
        The algorithm; must have finite :meth:`local_state_space`.
    daemon:
        ``"central"`` or ``"distributed"``.
    max_selection:
        For the distributed daemon, the largest selection size explored;
        ``None`` explores all subsets (exponential in the enabled count —
        fine here because self-stabilizing ring algorithms rarely have many
        simultaneously enabled processes in small instances).
    use_fastpath:
        Force the packed kernel on/off; default probes
        ``algorithm.fast_kernel()`` and falls back to the naive path.
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        daemon: str = "distributed",
        max_selection: Optional[int] = None,
        use_fastpath: Optional[bool] = None,
    ):
        if daemon not in ("central", "distributed"):
            raise ValueError(f"daemon must be 'central' or 'distributed', got {daemon!r}")
        self.algorithm = algorithm
        self.daemon = daemon
        self.max_selection = 1 if daemon == "central" else max_selection
        self._kernel = resolve_kernel(algorithm, use_fastpath)
        self._succ_cache: Dict[Any, Tuple[Any, ...]] = {}
        self._succ_keys: Dict[Any, Tuple[Any, ...]] = {}
        self._succ_cfgs: Dict[Any, Tuple[Any, ...]] = {}
        self._legit_cache: Dict[Any, bool] = {}

    # -- state enumeration ----------------------------------------------------
    def states(self) -> Iterator[Any]:
        """Every configuration in the space (|Q|^n values)."""
        return self.algorithm.configuration_space()

    def state_count(self) -> int:
        """|Q|^n for the default configuration space.

        Algorithms overriding :meth:`configuration_space` (e.g. restricted
        sub-spaces) are counted by iteration.
        """
        try:
            q = self.algorithm.state_count_per_process()
            # Trust the product form only for the default space.
            if type(self.algorithm).configuration_space is RingAlgorithm.configuration_space:
                return q ** self.algorithm.n
        except (TypeError, NotImplementedError):
            # state_count_per_process needs a materializable local state
            # space; fall through to counting by iteration.
            pass
        return sum(1 for _ in self.states())

    # -- successors -------------------------------------------------------------
    def successors(self, config: Any) -> Tuple[Any, ...]:
        """Distinct successor configurations under the chosen daemon."""
        key = self._key(config)
        cached = self._succ_cfgs.get(key)
        if cached is None:
            cached = tuple(c for _, c in self.successor_items(config, key))
            self._succ_cfgs[key] = cached
        return cached

    def successor_items(
        self, config: Any, key: Optional[Any] = None
    ) -> Tuple[Tuple[Any, Any], ...]:
        """Distinct successors as ``(key, configuration)`` pairs.

        The model checker is key-centric (colour maps, value tables, memo
        probes all index by key), so handing keys out with the successors
        lets it avoid ever re-packing a configuration it already visited.
        ``key`` may be passed when the caller has already computed it.
        """
        if key is None:
            key = self._key(config)
        cached = self._succ_cache.get(key)
        if cached is not None:
            return cached
        if self._kernel is not None:
            out = self._successor_items_fast(config, key)
        else:
            out = self._successor_items_naive(config)
        self._succ_cache[key] = out
        self._succ_keys.setdefault(key, tuple(k for k, _ in out))
        return out

    def successor_keys(
        self, config: Any, key: Optional[Any] = None
    ) -> Tuple[Any, ...]:
        """Distinct successor *keys* only — no configurations materialized.

        The model checker's bulk phases (closure sweep, cycle detection,
        longest path) never look inside a successor, only at its identity
        and legitimacy, so on the fast path this skips building the
        tuples-of-tuples configuration objects entirely.  Configurations
        are recovered on demand via :meth:`config_for_key`.
        """
        if key is None:
            key = self._key(config)
        cached = self._succ_keys.get(key)
        if cached is not None:
            return cached
        if self._kernel is not None:
            self._kernel.load(config)
            out = self._succ_keys_from_loaded(key)
        else:
            out = tuple(k for k, _ in self.successor_items(config, key))
        self._succ_keys[key] = out
        return out

    def successor_keys_for(self, key: Any) -> Tuple[Any, ...]:
        """:meth:`successor_keys` addressed purely by key.

        On the fast path the kernel decodes the key directly into its
        packed vectors (:meth:`~repro.simulation.fastpath.kernel.FastKernel.load_key`);
        the naive path reconstructs the configuration first.
        """
        cached = self._succ_keys.get(key)
        if cached is not None:
            return cached
        if self._kernel is not None:
            self._kernel.load_key(key)
            out = self._succ_keys_from_loaded(key)
        else:
            out = tuple(
                k for k, _ in self.successor_items(self.config_for_key(key), key)
            )
        self._succ_keys[key] = out
        return out

    def _succ_keys_from_loaded(self, key: Any) -> Tuple[Any, ...]:
        """Successor keys of the kernel's loaded configuration.

        Each enabled command is evaluated once; every selection's key then
        falls out of digit-delta integer arithmetic on ``key``.  The load
        also seeds the legitimacy memo for free (counter-gated, near O(1)).
        """
        kernel = self._kernel
        if key not in self._legit_cache:
            self._legit_cache[key] = kernel.is_legitimate()
        enabled = kernel.enabled()
        if not enabled:
            return ()
        digit = kernel.digit
        weights = kernel.key_weights
        delta = {
            i: (digit(kernel.update(i)) - digit(kernel.native_state(i)))
            * weights[i]
            for i in enabled
        }
        out: List[Any] = []
        seen = set()
        for sel in nonempty_subsets(enabled, self.max_selection):
            k = key
            for i in sel:
                k += delta[i]
            if k not in seen:
                seen.add(k)
                out.append(k)
        return tuple(out)

    def config_for_key(self, key: Any) -> Any:
        """The algorithm-native configuration a key encodes.

        Fast path: arithmetic decode (inverse of ``pack_key``).  Naive
        path: keys *are* the configuration's normal-form state tuple, so
        :meth:`~repro.algorithms.base.RingAlgorithm.normalize_configuration`
        rebuilds the native type.
        """
        if self._kernel is not None:
            return self._kernel.unpack_key(key)
        return self.algorithm.normalize_configuration(key)

    def _successor_items_naive(
        self, config: Any
    ) -> Tuple[Tuple[Any, Any], ...]:
        enabled = self.algorithm.enabled_processes(config)
        succs: List[Tuple[Any, Any]] = []
        seen = set()
        for sel in nonempty_subsets(enabled, self.max_selection):
            nxt = self.algorithm.step(config, sel)
            k = self._key(nxt)
            if k not in seen:
                seen.add(k)
                succs.append((k, nxt))
        return tuple(succs)

    def _successor_items_fast(
        self, config: Any, key: Any
    ) -> Tuple[Tuple[Any, Any], ...]:
        """Kernel-backed successor generation.

        Loads ``config`` once, computes every enabled process's command
        once, then derives each selection's successor *key* by integer
        digit-delta arithmetic on the loaded key — no guard re-evaluation
        and no re-packing per subset; configurations are only materialized
        for keys not seen before.  The load also yields the configuration's
        own legitimacy (counter-gated, near O(1)), which seeds the
        :meth:`is_legitimate` memo for free.
        """
        kernel = self._kernel
        kernel.load(config)
        if key not in self._legit_cache:
            self._legit_cache[key] = kernel.is_legitimate()
        enabled = kernel.enabled()
        if not enabled:
            return ()
        base = kernel.native_states(config)
        digit = kernel.digit
        weights = kernel.key_weights
        updates = {}
        delta = {}
        for i in enabled:
            updates[i] = up = kernel.update(i)
            delta[i] = (digit(up) - digit(base[i])) * weights[i]
        wrap = kernel.wrap_states
        succs: List[Tuple[Any, Any]] = []
        seen = set()
        for sel in nonempty_subsets(enabled, self.max_selection):
            k = key
            for i in sel:
                k += delta[i]
            if k not in seen:
                seen.add(k)
                states = list(base)
                for i in sel:
                    states[i] = updates[i]
                succs.append((k, wrap(tuple(states))))
        return tuple(succs)

    def is_deadlocked(self, config: Any) -> bool:
        """True iff no process is enabled."""
        if self._kernel is not None:
            self._kernel.load(config)
            return not self._kernel.enabled()
        return not self.algorithm.enabled_processes(config)

    def is_legitimate(self, config: Any, key: Optional[Any] = None) -> bool:
        """Memoized legitimacy test keyed like :meth:`successors`.

        The model checker asks this for the same configuration along many
        paths; memoization turns the repeated O(n) predicate into one dict
        probe per revisit.  ``key`` may be passed when already known.
        """
        if key is None:
            key = self._key(config)
        cached = self._legit_cache.get(key)
        if cached is None:
            cached = self.algorithm.is_legitimate(config)
            self._legit_cache[key] = cached
        return cached

    def is_legitimate_key(self, key: Any) -> bool:
        """:meth:`is_legitimate` addressed purely by key.

        Usually a dict hit — successor generation seeds the memo for every
        configuration it loads.  On a miss the fast path decodes the key
        into the kernel (no configuration object); the naive path rebuilds
        the configuration.
        """
        cached = self._legit_cache.get(key)
        if cached is None:
            if self._kernel is not None:
                self._kernel.load_key(key)
                cached = self._kernel.is_legitimate()
            else:
                cached = self.algorithm.is_legitimate(self.config_for_key(key))
            self._legit_cache[key] = cached
        return cached

    def _key(self, config: Any) -> Any:
        """Hashable identity of ``config`` (packed int on the fast path)."""
        if self._kernel is not None:
            return self._kernel.pack_key(config)
        states = getattr(config, "states", None)
        return states if states is not None else config

    # -- reachability -----------------------------------------------------------
    def reachable_from(self, initial: Iterable[Any]) -> Dict[Any, Any]:
        """BFS closure: map ``key -> configuration`` reachable from ``initial``."""
        frontier = list(initial)
        seen: Dict[Any, Any] = {self._key(c): c for c in frontier}
        while frontier:
            nxt_frontier = []
            for c in frontier:
                for k, s in self.successor_items(c):
                    if k not in seen:
                        seen[k] = s
                        nxt_frontier.append(s)
            frontier = nxt_frontier
        return seen
