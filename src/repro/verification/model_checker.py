"""Model checking self-stabilization on explicit transition systems.

:func:`check_self_stabilization` verifies, by exhaustive enumeration:

* **no deadlock** (Lemma 4): every configuration has a successor;
* **closure** (Lemma 1): successors of legitimate configurations are
  legitimate;
* **convergence** (Lemma 6): the *illegitimate* subgraph is acyclic — i.e.
  there is no infinite execution avoiding the legitimate set, no matter what
  the (unfair, distributed) daemon chooses;
* **worst-case convergence steps** (Theorem 2's quantity, exactly): the
  longest path through the illegitimate region, which equals the value of
  the game where the daemon maximizes time-to-Lambda.

Convergence + the longest path are computed together by an iterative DFS
with 3-colouring over illegitimate states: a back edge to a grey state means
an illegitimate cycle (convergence fails); otherwise each state's value is
``1 + max(successor values)`` with legitimate successors contributing 0.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.verification.transition_system import TransitionSystem


@dataclass
class StabilizationReport:
    """Result of an exhaustive self-stabilization check.

    Attributes
    ----------
    state_count:
        Number of configurations examined.
    legitimate_count:
        Size of the legitimate set Lambda.
    deadlocks:
        Configurations with no enabled process (empty for a correct ring).
    closure_violations:
        ``(legitimate config, illegitimate successor)`` pairs (empty = Lemma 1
        holds).
    illegitimate_cycle:
        A cycle through illegitimate configurations if one exists (None =
        Lemma 6 holds).
    worst_case_steps:
        Exact maximum steps-to-Lambda over all configurations and daemon
        strategies; ``None`` if convergence fails.
    convergence_checked:
        Whether the cycle/longest-path analysis actually ran
        (``compute_worst_case=True``); without it, convergence is unknown
        and :attr:`self_stabilizing` refuses to claim success.
    """

    state_count: int
    legitimate_count: int
    deadlocks: List[Any]
    closure_violations: List[Tuple[Any, Any]]
    illegitimate_cycle: Optional[List[Any]]
    worst_case_steps: Optional[int]
    convergence_checked: bool = True

    @property
    def self_stabilizing(self) -> bool:
        """True iff no deadlocks, closure holds, convergence verified to hold.

        Also requires a non-empty legitimate set — an algorithm whose Lambda
        is empty vacuously satisfies closure but cannot converge to it.
        """
        return (
            self.convergence_checked
            and self.legitimate_count > 0
            and not self.deadlocks
            and not self.closure_violations
            and self.illegitimate_cycle is None
        )

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        verdict = "SELF-STABILIZING" if self.self_stabilizing else "NOT self-stabilizing"
        lines = [
            f"{verdict}: {self.state_count} configurations, "
            f"{self.legitimate_count} legitimate",
            f"  deadlocks: {len(self.deadlocks)}",
            f"  closure violations: {len(self.closure_violations)}",
            f"  illegitimate cycle: "
            f"{'none' if self.illegitimate_cycle is None else len(self.illegitimate_cycle)}",
        ]
        if self.worst_case_steps is not None:
            lines.append(f"  worst-case convergence steps: {self.worst_case_steps}")
        return "\n".join(lines)


def _longest_path_to_lambda(
    ts: TransitionSystem,
) -> Tuple[Optional[int], Optional[List[Any]]]:
    """Longest illegitimate path; detects illegitimate cycles.

    Returns ``(worst_case_steps, None)`` when convergence holds, or
    ``(None, cycle)`` when an illegitimate cycle exists.

    Everything is key-centric: the DFS stack, colour map, value table and
    path all hold packed keys only
    (:meth:`~repro.verification.transition_system.TransitionSystem.successor_keys`),
    so the bulk of the state space is explored without ever materializing a
    configuration object.  Configurations are decoded only to report a
    cycle.
    """
    legit = ts.is_legitimate_key
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {}
    value = {}
    best = 0

    for start in ts.states():
        k0 = ts._key(start)
        if colour.get(k0, WHITE) != WHITE or legit(k0):
            continue
        # Iterative DFS from this illegitimate configuration.  Stack frames
        # carry (key, successor keys, next index); path carries the keys
        # for cycle extraction.
        stack: List[Tuple[Any, Tuple[Any, ...], int]] = [
            (k0, ts.successor_keys(start, k0), 0)
        ]
        colour[k0] = GREY
        path: List[Any] = [k0]
        while stack:
            nk, succs, idx = stack[-1]
            if idx < len(succs):
                stack[-1] = (nk, succs, idx + 1)
                ck = succs[idx]
                if legit(ck):
                    value[nk] = max(value.get(nk, 1), 1)
                    continue
                c = colour.get(ck, WHITE)
                if c == GREY:
                    # Illegitimate cycle found; decode it from the path.
                    cyc = path[path.index(ck):] + [ck]
                    return None, [ts.config_for_key(k) for k in cyc]
                if c == WHITE:
                    colour[ck] = GREY
                    path.append(ck)
                    stack.append((ck, ts.successor_keys_for(ck), 0))
                else:  # BLACK
                    value[nk] = max(value.get(nk, 1), 1 + value[ck])
            else:
                colour[nk] = BLACK
                v = value.get(nk, 1)
                value[nk] = v
                best = max(best, v)
                stack.pop()
                path.pop()
                if stack:
                    pk = stack[-1][0]
                    value[pk] = max(value.get(pk, 1), 1 + v)
    return best, None


def check_self_stabilization(
    ts: TransitionSystem, compute_worst_case: bool = True
) -> StabilizationReport:
    """Run the full exhaustive check on a transition system.

    Enumerates every configuration once for deadlock/closure and (optionally)
    runs the longest-path analysis for convergence + worst case.  All
    legitimacy queries go through the transition system's memoized
    :meth:`~repro.verification.transition_system.TransitionSystem.is_legitimate`
    so each configuration is classified once across both phases.
    """
    deadlocks: List[Any] = []
    closure_violations: List[Tuple[Any, Any]] = []
    state_count = 0
    legit_count = 0

    for config in ts.states():
        state_count += 1
        key = ts._key(config)
        skeys = ts.successor_keys(config, key)
        legit = ts.is_legitimate_key(key)
        if legit:
            legit_count += 1
        if not skeys:
            if not ts.is_deadlocked(config):
                raise AssertionError(
                    "successor computation inconsistent with enabledness")
            deadlocks.append(config)
            continue
        if legit:
            for sk in skeys:
                if not ts.is_legitimate_key(sk):
                    closure_violations.append((config, ts.config_for_key(sk)))

    worst: Optional[int] = None
    cycle: Optional[List[Any]] = None
    if compute_worst_case:
        worst, cycle = _longest_path_to_lambda(ts)

    return StabilizationReport(
        state_count=state_count,
        legitimate_count=legit_count,
        deadlocks=deadlocks,
        closure_violations=closure_violations,
        illegitimate_cycle=cycle,
        worst_case_steps=worst,
        convergence_checked=compute_worst_case,
    )


def worst_case_convergence_steps(ts: TransitionSystem) -> int:
    """Exact adversarial convergence time; raises if convergence fails."""
    worst, cycle = _longest_path_to_lambda(ts)
    if cycle is not None:
        raise AssertionError(
            f"algorithm does not converge: illegitimate cycle of length {len(cycle)}"
        )
    assert worst is not None
    return worst


def worst_case_witness(ts: TransitionSystem) -> List[Any]:
    """An exact worst-case execution: the longest path into Lambda.

    Returns the configuration sequence ``[gamma_0, ..., gamma_T]`` where
    ``gamma_0`` maximizes the adversarial steps-to-Lambda, every transition
    is a legal daemon choice, and ``gamma_T`` is the first legitimate
    configuration.  This is the *ground truth* the heuristic
    :class:`~repro.daemons.adversarial.AdversarialDaemon` approximates.

    Computed by valuing every illegitimate configuration (memoized greedy
    over the acyclic illegitimate region — well-defined once convergence
    holds) and then walking value-maximizing successors.
    """
    legit = ts.is_legitimate_key

    # Value function: steps-to-Lambda under the adversarial daemon,
    # computed entirely on packed keys.
    value: Dict[Any, int] = {}

    def val(k: Any) -> int:
        if legit(k):
            return 0
        if k in value:
            return value[k]
        # Sentinel to catch cycles (would mean non-convergence).
        value[k] = -1
        best = 0
        for sk in ts.successor_keys_for(k):
            v = val(sk)
            if v < 0:
                raise AssertionError("illegitimate cycle: no worst case exists")
            best = max(best, 1 + v)
        value[k] = best
        return best

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10 * ts.state_count() + 1000))
    try:
        worst_key = None
        worst_val = -1
        for config in ts.states():
            k = ts._key(config)
            # Prime the successor-key cache from the configuration we
            # already hold (spares the naive path a key decode).
            ts.successor_keys(config, k)
            v = val(k)
            if v > worst_val:
                worst_val, worst_key = v, k
    finally:
        sys.setrecursionlimit(old_limit)

    assert worst_key is not None
    key = worst_key
    path = [ts.config_for_key(key)]
    while not legit(key):
        key = max(ts.successor_keys_for(key), key=val)
        path.append(ts.config_for_key(key))
    return path
