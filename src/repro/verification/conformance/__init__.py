"""Conformance harness: differential oracle, fuzzer, shrinker, corpus.

The three executable models of this repository — the reference guard-walk
engine, the packed fastpath kernels, and the CST message-passing transform
— must agree step for step.  This package makes that a checked property:

* :mod:`~repro.verification.conformance.oracle` — lockstep execution of
  one ``(configuration, schedule, fault script)`` through all models with
  per-step equality and invariant checks;
* :mod:`~repro.verification.conformance.fuzzer` — seeded adversarial
  campaigns over random instances, four daemon families and concrete
  fault scripts;
* :mod:`~repro.verification.conformance.shrink` — delta-debugging
  minimization of failing witnesses;
* :mod:`~repro.verification.conformance.witness` — the deterministic
  JSONL repro format replayed by ``pytest tests/corpus``;
* :mod:`~repro.verification.conformance.seeds` — builders for the
  checked-in corpus.

CLI: ``python -m repro fuzz run|shrink|replay|seed-corpus``.
"""

from repro.verification.conformance.oracle import (
    TOKEN_BOUNDS,
    ConformanceReport,
    Divergence,
    LockstepOracle,
)
from repro.verification.conformance.fuzzer import (
    DAEMON_FAMILIES,
    CampaignResult,
    DivergenceRecord,
    Scenario,
    generate_scenario,
    make_daemon,
    run_campaign,
    run_trial,
)
from repro.verification.conformance.shrink import ShrinkStats, shrink_witness
from repro.verification.conformance.witness import (
    ReplayOutcome,
    Witness,
    build_algorithm,
    corpus_files,
    replay_witness_file,
)
from repro.verification.conformance.seeds import seed_corpus

__all__ = [
    "TOKEN_BOUNDS",
    "ConformanceReport",
    "Divergence",
    "LockstepOracle",
    "DAEMON_FAMILIES",
    "CampaignResult",
    "DivergenceRecord",
    "Scenario",
    "generate_scenario",
    "make_daemon",
    "run_campaign",
    "run_trial",
    "ShrinkStats",
    "shrink_witness",
    "ReplayOutcome",
    "Witness",
    "build_algorithm",
    "corpus_files",
    "replay_witness_file",
    "seed_corpus",
]
