"""Witness minimization: shrink a failing conformance scenario.

Given a witness whose replay diverges, produce the smallest witness we can
find (greedy delta debugging) whose replay *still* diverges.  Because the
oracle replays schedules with filtering semantics — recorded selections are
intersected with the current enabled set and empty intersections skip the
step — every structural mutation below yields a *valid* witness; the only
question each candidate answers is "does it still fail?".

Shrink passes, applied to a fixpoint (bounded by rounds and a replay
budget):

1. **truncation** — cut the schedule right after the first divergence and
   drop fault ops past it (always sound: the oracle stops at the first
   divergence, so the tail was never consumed);
2. **ring-size reduction** — remove one process, reindexing selections and
   fault targets and dropping ops that no longer name a ring edge;
3. **schedule-prefix bisection** — repeatedly try to keep only the first
   half of the schedule;
4. **step dropping** — remove single schedule entries (later fault steps
   shift down);
5. **selection thinning** — drop single processes from multi-process
   selections;
6. **fault-op dropping** — remove single fault-script entries.

The returned witness carries the divergence of its *own* final replay in
its header, so the corpus file documents exactly what it reproduces.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.verification.conformance.witness import Witness, build_algorithm

#: Smallest meaningful ring per algorithm (SSRmin is defined for n >= 3,
#: Dijkstra's K-state for n >= 2).
MIN_RING = {"ssrmin": 3, "dijkstra": 2}

_INDEX_KEYS = ("src", "dst", "node", "neighbor", "process")


@dataclass
class ShrinkStats:
    """Bookkeeping for one shrink run."""

    replays: int = 0
    rounds: int = 0
    accepted: int = 0
    initial_size: Tuple[int, int, int] = (0, 0, 0)  # (n, |schedule|, |faults|)
    final_size: Tuple[int, int, int] = (0, 0, 0)

    def summary(self) -> str:
        """One-line description of the size reduction achieved."""
        i, f = self.initial_size, self.final_size
        return (
            f"shrunk (n={i[0]}, steps={i[1]}, faults={i[2]}) -> "
            f"(n={f[0]}, steps={f[1]}, faults={f[2]}) in {self.replays} "
            f"replays / {self.rounds} rounds"
        )


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _size(w: Witness) -> Tuple[int, int, int]:
    return (w.n, len(w.schedule), len(w.faults))


def _rebuilt(w: Witness, **changes) -> Witness:
    return dataclasses.replace(w, **changes)


def _still_fails(
    w: Witness, budget: _Budget, use_cst: bool
) -> Optional[Witness]:
    """Replay ``w``; on divergence return it with its header updated."""
    if not budget.take():
        return None
    report = w.replay(use_cst=use_cst)
    if report.ok:
        return None
    d = report.divergences[0]
    return _rebuilt(
        w,
        expect="divergence",
        divergence=d.to_json(),
    )


# -- individual passes --------------------------------------------------------
def _truncate_after_divergence(w: Witness) -> Witness:
    if w.divergence is None:
        return w
    cut = int(w.divergence["step"]) + 1
    if cut >= len(w.schedule):
        return w
    return _rebuilt(
        w,
        schedule=list(w.schedule[:cut]),
        faults=[op for op in w.faults if int(op["step"]) < cut],
    )


def _remove_process(w: Witness, j: int) -> Optional[Witness]:
    if w.n <= MIN_RING.get(w.algorithm, 3):
        return None
    new_n = w.n - 1
    alg = build_algorithm(w.algorithm, new_n, w.K)

    def remap(i: int) -> int:
        return i - 1 if i > j else i

    schedule = [
        tuple(remap(i) for i in sel if i != j) for sel in w.schedule
    ]
    faults: List[dict] = []
    for op in w.faults:
        keys = [k for k in _INDEX_KEYS if k in op]
        if any(int(op[k]) == j for k in keys):
            continue
        new_op = dict(op)
        for k in keys:
            new_op[k] = remap(int(op[k]))
        # A reindexed channel/cache op must still name a real ring edge of
        # the smaller instance; otherwise removing j orphaned it.
        if "src" in new_op and new_op["dst"] not in alg.ring.message_neighbors(
            new_op["src"]
        ):
            continue
        if "node" in new_op and new_op[
            "neighbor"
        ] not in alg.ring.readable_neighbors(new_op["node"]):
            continue
        faults.append(new_op)
    config = [s for i, s in enumerate(w.config) if i != j]
    return _rebuilt(
        w, n=new_n, config=config, schedule=schedule, faults=faults
    )


def _keep_prefix(w: Witness, length: int) -> Optional[Witness]:
    if length >= len(w.schedule) or length < 1:
        return None
    return _rebuilt(
        w,
        schedule=list(w.schedule[:length]),
        faults=[op for op in w.faults if int(op["step"]) < length],
    )


def _drop_step(w: Witness, t: int) -> Optional[Witness]:
    if len(w.schedule) <= 1:
        return None
    schedule = [sel for i, sel in enumerate(w.schedule) if i != t]
    faults = []
    for op in w.faults:
        new_op = dict(op)
        if int(op["step"]) > t:
            new_op["step"] = int(op["step"]) - 1
        if int(new_op["step"]) >= len(schedule):
            continue
        faults.append(new_op)
    return _rebuilt(w, schedule=schedule, faults=faults)


def _thin_selection(w: Witness, t: int, i: int) -> Optional[Witness]:
    sel = w.schedule[t]
    if len(sel) <= 1 or i not in sel:
        return None
    schedule = list(w.schedule)
    schedule[t] = tuple(p for p in sel if p != i)
    return _rebuilt(w, schedule=schedule)


def _drop_fault(w: Witness, k: int) -> Optional[Witness]:
    faults = [op for i, op in enumerate(w.faults) if i != k]
    return _rebuilt(w, faults=faults)


# -- the driver ---------------------------------------------------------------
def shrink_witness(
    witness: Witness,
    max_rounds: int = 8,
    max_replays: int = 250,
    use_cst: bool = True,
) -> Tuple[Witness, ShrinkStats]:
    """Minimize a failing witness; returns ``(shrunk, stats)``.

    Raises ``ValueError`` if the witness does not fail to begin with (there
    is nothing to shrink — the caller's mutation may no longer be active).
    """
    budget = _Budget(max_replays)
    stats = ShrinkStats(initial_size=_size(witness))

    current = _still_fails(witness, budget, use_cst)
    if current is None:
        raise ValueError(
            "witness replay reported no divergence; nothing to shrink"
        )
    stats.replays = budget.used

    truncated = _still_fails(
        _truncate_after_divergence(current), budget, use_cst
    )
    if truncated is not None:
        current = truncated

    for _ in range(max_rounds):
        stats.rounds += 1
        improved = False

        # Ring-size reduction (largest wins first).
        j = current.n - 1
        while j >= 0 and budget.used < budget.limit:
            candidate = _remove_process(current, j)
            accepted = (
                _still_fails(candidate, budget, use_cst)
                if candidate is not None else None
            )
            if accepted is not None:
                current = accepted
                stats.accepted += 1
                improved = True
                j = min(j, current.n - 1)
            else:
                j -= 1

        # Schedule-prefix bisection.
        while len(current.schedule) > 1 and budget.used < budget.limit:
            candidate = _keep_prefix(current, len(current.schedule) // 2)
            accepted = (
                _still_fails(candidate, budget, use_cst)
                if candidate is not None else None
            )
            if accepted is None:
                break
            current = accepted
            stats.accepted += 1
            improved = True

        # Step dropping, back to front.
        t = len(current.schedule) - 1
        while t >= 0 and budget.used < budget.limit:
            candidate = _drop_step(current, t)
            accepted = (
                _still_fails(candidate, budget, use_cst)
                if candidate is not None else None
            )
            if accepted is not None:
                current = accepted
                stats.accepted += 1
                improved = True
            t -= 1
            t = min(t, len(current.schedule) - 1)

        # Selection thinning.
        for t in range(len(current.schedule)):
            for i in list(current.schedule[t]):
                if budget.used >= budget.limit:
                    break
                candidate = _thin_selection(current, t, i)
                accepted = (
                    _still_fails(candidate, budget, use_cst)
                    if candidate is not None else None
                )
                if accepted is not None:
                    current = accepted
                    stats.accepted += 1
                    improved = True

        # Fault-op dropping, back to front.
        for k in range(len(current.faults) - 1, -1, -1):
            if budget.used >= budget.limit or k >= len(current.faults):
                continue
            accepted = _still_fails(
                _drop_fault(current, k), budget, use_cst
            )
            if accepted is not None:
                current = accepted
                stats.accepted += 1
                improved = True

        if not improved or budget.used >= budget.limit:
            break

    stats.replays = budget.used
    stats.final_size = _size(current)
    return current, stats
