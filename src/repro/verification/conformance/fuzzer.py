"""The adversarial schedule fuzzer and campaign runner.

Every trial is generated from a derived seed (``Random(f"{seed}:{trial}")``
— stable across runs and Python versions), so a campaign is fully
reproducible from its master seed: a random instance (algorithm, ring size,
counter modulus), a random initial configuration (an arbitrary post-fault
state), a daemon drawn from one of four schedule families (central,
distributed, adversarial lookahead, weighted-unfair), and a concrete fault
script whose values are pre-drawn at generation time (message loss / delay
/ duplication on ring edges, cache corruption, state corruption).

The trial runs through the :class:`~.oracle.LockstepOracle` in generative
mode; any divergence is captured as a :class:`~.witness.Witness`
(schedule included), shrunk by :mod:`~.shrink`, and written to the corpus
directory.  Campaigns emit telemetry like any other run: ``fuzz``-layer
bus events, labelled counters (``fuzz_trials_total{algorithm,daemon}``,
``fuzz_divergences_total``, ``fuzz_steps_total``) and — via the CLI — a
run manifest next to the JSONL trace.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.daemons.adversarial import AdversarialDaemon
from repro.daemons.base import Daemon
from repro.daemons.central import RandomCentralDaemon
from repro.daemons.distributed import (
    BernoulliDaemon,
    RandomSubsetDaemon,
    SynchronousDaemon,
)
from repro.daemons.weighted import WeightedUnfairDaemon
from repro.faults.injection import random_local_state
from repro.telemetry.session import current_session
from repro.verification.conformance.oracle import ConformanceReport, LockstepOracle
from repro.verification.conformance.shrink import shrink_witness
from repro.verification.conformance.witness import Witness, build_algorithm

#: The four schedule families of the conformance campaign.
DAEMON_FAMILIES = ("central", "distributed", "adversarial", "weighted")

#: Channel fault kinds drawn by the script generator.
CHANNEL_FAULTS = ("lose", "delay", "duplicate")


@dataclass
class Scenario:
    """One fully concrete fuzz trial (before execution)."""

    trial: int
    algorithm: str
    n: int
    K: int
    config: List[Any]
    daemon_family: str
    daemon: Daemon
    steps: int
    faults: List[dict]

    def witness(
        self,
        schedule: Sequence[Tuple[int, ...]],
        expect: str = "pass",
        divergence: Optional[dict] = None,
        seed: Optional[int] = None,
        note: str = "",
    ) -> Witness:
        """Package this scenario (plus an executed schedule) as a witness."""
        return Witness(
            algorithm=self.algorithm,
            n=self.n,
            K=self.K,
            config=list(self.config),
            schedule=list(schedule),
            faults=[dict(op) for op in self.faults],
            expect=expect,
            seed=seed,
            note=note,
            divergence=divergence,
        )


def make_daemon(family: str, algorithm, rng: random.Random) -> Daemon:
    """A seeded daemon instance from one of the four schedule families."""
    seed = rng.randrange(2**31)
    if family == "central":
        return RandomCentralDaemon(seed=seed)
    if family == "distributed":
        pick = rng.randrange(3)
        if pick == 0:
            return SynchronousDaemon()
        if pick == 1:
            return RandomSubsetDaemon(seed=seed)
        return BernoulliDaemon(p=rng.uniform(0.2, 0.9), seed=seed)
    if family == "adversarial":
        return AdversarialDaemon(
            algorithm, depth=1, max_subsets=6, seed=seed
        )
    if family == "weighted":
        return WeightedUnfairDaemon(
            bias=rng.uniform(2.0, 6.0),
            multi_p=rng.uniform(0.0, 0.5),
            seed=seed,
        )
    raise ValueError(f"unknown daemon family {family!r} "
                     f"(known: {', '.join(DAEMON_FAMILIES)})")


def generate_fault_script(
    algorithm, rng: random.Random, steps: int, max_ops: int = 4
) -> List[dict]:
    """A concrete fault script: every value pre-drawn, nothing left random.

    Channel ops target real directed ring edges (CST message recipients);
    cache ops target real readable-neighbor cache entries; state ops carry
    a concrete domain value from
    :func:`repro.faults.injection.random_local_state`.
    """
    n = algorithm.n
    ring = algorithm.ring
    ops: List[dict] = []
    for _ in range(rng.randrange(max_ops + 1)):
        step = rng.randrange(steps)
        roll = rng.random()
        if roll < 0.45:
            src = rng.randrange(n)
            dst = rng.choice(list(ring.message_neighbors(src)))
            ops.append({
                "step": step,
                "kind": rng.choice(CHANNEL_FAULTS),
                "src": src,
                "dst": dst,
            })
        elif roll < 0.75:
            node = rng.randrange(n)
            neighbor = rng.choice(list(ring.readable_neighbors(node)))
            ops.append({
                "step": step,
                "kind": "corrupt-cache",
                "node": node,
                "neighbor": neighbor,
                "value": _jsonable(random_local_state(algorithm, rng)),
            })
        else:
            ops.append({
                "step": step,
                "kind": "corrupt-state",
                "process": rng.randrange(n),
                "value": _jsonable(random_local_state(algorithm, rng)),
            })
    ops.sort(key=lambda op: op["step"])
    return ops


def _jsonable(state: Any) -> Any:
    return list(state) if isinstance(state, tuple) else state


def generate_scenario(
    trial: int,
    seed: int,
    algorithms: Sequence[str] = ("ssrmin", "dijkstra"),
    ns: Sequence[int] = (3, 4, 5, 6, 7, 8),
    daemon_families: Sequence[str] = DAEMON_FAMILIES,
    min_steps: int = 20,
    max_steps: int = 80,
    fault_ops: int = 4,
) -> Scenario:
    """Derive trial ``trial`` of campaign ``seed`` (pure function of both)."""
    rng = random.Random(f"{seed}:{trial}")
    name = rng.choice(list(algorithms))
    n = rng.choice(list(ns))
    K = n + 1 + rng.randrange(3)
    algorithm = build_algorithm(name, n, K)
    config = list(algorithm.random_configuration(rng))
    family = rng.choice(list(daemon_families))
    daemon = make_daemon(family, algorithm, rng)
    steps = rng.randrange(min_steps, max_steps + 1)
    faults = generate_fault_script(algorithm, rng, steps, max_ops=fault_ops)
    return Scenario(
        trial=trial,
        algorithm=name,
        n=n,
        K=K,
        config=config,
        daemon_family=family,
        daemon=daemon,
        steps=steps,
        faults=faults,
    )


def run_trial(
    scenario: Scenario, use_cst: bool = True
) -> ConformanceReport:
    """Execute one scenario through the lockstep oracle (generative mode)."""
    algorithm = build_algorithm(scenario.algorithm, scenario.n, scenario.K)
    if isinstance(scenario.daemon, AdversarialDaemon):
        # The lookahead adversary simulates on the algorithm it was built
        # with; rebind it to the fresh instance for a clean replay.
        scenario.daemon.algorithm = algorithm
    oracle = LockstepOracle(algorithm, use_cst=use_cst)
    return oracle.run_daemon(
        scenario.config, scenario.daemon, scenario.steps,
        faults=scenario.faults,
    )


@dataclass
class DivergenceRecord:
    """One divergence found by a campaign, with its shrunk witness."""

    trial: int
    scenario: Scenario
    divergence: dict
    witness: Witness
    shrunk: Witness
    path: Optional[str] = None


@dataclass
class CampaignResult:
    """Summary of one fuzz campaign."""

    seed: int
    trials: int
    fired_steps: int
    elapsed: float
    divergences: List[DivergenceRecord] = field(default_factory=list)
    params: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every trial ran divergence-free."""
        return not self.divergences

    def summary(self) -> str:
        """One-line human-readable campaign verdict."""
        verdict = (
            "zero divergences"
            if self.ok
            else f"{len(self.divergences)} DIVERGENCE(S)"
        )
        return (
            f"fuzz campaign seed={self.seed}: {self.trials} trials, "
            f"{self.fired_steps} lockstep steps, {self.elapsed:.1f}s — "
            f"{verdict}"
        )

    def to_json(self) -> dict:
        """JSON-able campaign summary (embedded in run manifests)."""
        return {
            "seed": self.seed,
            "trials": self.trials,
            "fired_steps": self.fired_steps,
            "elapsed_seconds": round(self.elapsed, 3),
            "ok": self.ok,
            "params": self.params,
            "divergences": [
                {
                    "trial": rec.trial,
                    "algorithm": rec.scenario.algorithm,
                    "daemon": rec.scenario.daemon_family,
                    "divergence": rec.divergence,
                    "witness_file": rec.path,
                }
                for rec in self.divergences
            ],
        }


def run_campaign(
    seed: int = 0,
    trials: Optional[int] = None,
    time_budget: Optional[float] = None,
    algorithms: Sequence[str] = ("ssrmin", "dijkstra"),
    ns: Sequence[int] = (3, 4, 5, 6, 7, 8),
    daemon_families: Sequence[str] = DAEMON_FAMILIES,
    fault_ops: int = 4,
    use_cst: bool = True,
    shrink: bool = True,
    corpus_dir: Optional[str] = None,
    max_divergences: int = 5,
) -> CampaignResult:
    """Run a seeded fuzz campaign; returns its :class:`CampaignResult`.

    Either ``trials`` (exact trial count, fully deterministic) or
    ``time_budget`` (seconds of wall clock; per-trial results are still
    deterministic, only the count varies) must bound the campaign.
    Divergences are shrunk (unless ``shrink=False``) and written to
    ``corpus_dir`` when given.  Telemetry flows into the ambient
    :func:`~repro.telemetry.session.current_session` when one is active.
    """
    if trials is None and time_budget is None:
        raise ValueError("bound the campaign with trials= or time_budget=")
    tel = current_session()
    params = {
        "algorithms": list(algorithms),
        "ns": list(ns),
        "daemon_families": list(daemon_families),
        "fault_ops": fault_ops,
        "use_cst": use_cst,
        "trials": trials,
        "time_budget": time_budget,
    }
    if tel is not None:
        tel.bus.publish("fuzz", "run_start", 0.0, seed=seed, **params)
        trials_counter = tel.registry.counter(
            "fuzz_trials_total", "conformance fuzz trials executed")
        steps_counter = tel.registry.counter(
            "fuzz_steps_total", "lockstep steps fired by fuzz trials")
        div_counter = tel.registry.counter(
            "fuzz_divergences_total", "divergences found by fuzz campaigns")

    result = CampaignResult(
        seed=seed, trials=0, fired_steps=0, elapsed=0.0, params=params
    )
    started = time.monotonic()
    trial = 0
    while True:
        if trials is not None and trial >= trials:
            break
        if time_budget is not None and time.monotonic() - started >= time_budget:
            break
        scenario = generate_scenario(
            trial, seed,
            algorithms=algorithms, ns=ns,
            daemon_families=daemon_families, fault_ops=fault_ops,
        )
        report = run_trial(scenario, use_cst=use_cst)
        result.trials += 1
        result.fired_steps += report.fired_steps
        if tel is not None:
            trials_counter.inc(
                algorithm=scenario.algorithm, daemon=scenario.daemon_family)
            steps_counter.inc(report.fired_steps)
            if tel.step_detail:
                tel.bus.publish(
                    "fuzz", "trial", float(trial),
                    trial=trial,
                    algorithm=scenario.algorithm,
                    n=scenario.n,
                    daemon=scenario.daemon_family,
                    fired_steps=report.fired_steps,
                    ok=report.ok,
                )
        if not report.ok:
            rec = _capture_divergence(
                scenario, report, seed, shrink=shrink, use_cst=use_cst,
                corpus_dir=corpus_dir,
            )
            result.divergences.append(rec)
            if tel is not None:
                div_counter.inc(
                    algorithm=scenario.algorithm, kind=rec.divergence["kind"])
                tel.bus.publish(
                    "fuzz", "divergence", float(trial),
                    trial=trial, **rec.divergence,
                )
            if len(result.divergences) >= max_divergences:
                break
        trial += 1

    result.elapsed = time.monotonic() - started
    if tel is not None:
        tel.bus.publish(
            "fuzz", "run_end", float(result.trials),
            trials=result.trials,
            fired_steps=result.fired_steps,
            divergences=len(result.divergences),
        )
    return result


def _capture_divergence(
    scenario: Scenario,
    report: ConformanceReport,
    seed: int,
    shrink: bool,
    use_cst: bool,
    corpus_dir: Optional[str],
) -> DivergenceRecord:
    d = report.divergences[0]
    witness = scenario.witness(
        report.schedule,
        expect="divergence",
        divergence=d.to_json(),
        seed=seed,
        note=(
            f"fuzz trial {scenario.trial} (seed {seed}), daemon family "
            f"{scenario.daemon_family}: {d.kind} divergence at step {d.step}"
        ),
    )
    shrunk = shrink_witness(witness, use_cst=use_cst)[0] if shrink else witness
    path = None
    if corpus_dir is not None:
        import os

        path = os.path.join(
            corpus_dir,
            f"divergence_seed{seed}_trial{scenario.trial}.jsonl",
        )
        shrunk.save(path)
    return DivergenceRecord(
        trial=scenario.trial,
        scenario=scenario,
        divergence=d.to_json(),
        witness=witness,
        shrunk=shrunk,
        path=path,
    )
