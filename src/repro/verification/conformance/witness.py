"""Replayable conformance witnesses — the ``tests/corpus/`` file format.

A witness pins down one lockstep scenario completely: algorithm instance
``(name, n, K)``, initial configuration, fault script and concrete
schedule, plus the *expectation* (``pass`` — the oracle must report zero
divergences; ``divergence`` — the oracle must reproduce a failure, used
transiently by the mutation smoke tests).  Files are JSONL with one record
per line, written deterministically (sorted keys) so shrunk repros diff
cleanly in review:

.. code-block:: text

    {"algorithm": "ssrmin", "expect": "pass", "format": ..., "n": 3, ...}
    {"config": [[0, 0, 1], [0, 0, 0], [0, 0, 0]]}
    {"fault": {"kind": "lose", "src": 0, "dst": 1, "step": 2}}
    {"schedule": [[0], [1], [1, 2]]}

``pytest tests/corpus`` replays every ``*.jsonl`` in the corpus directory
on each run; ``python -m repro fuzz replay <file>`` does the same from the
command line.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

FORMAT = "repro-conformance-witness"
FORMAT_VERSION = 1

#: Registered algorithm constructors: name -> factory(n, K).
ALGORITHMS = ("ssrmin", "dijkstra")


def build_algorithm(name: str, n: int, K: int):
    """Instantiate the algorithm a witness names."""
    if name == "ssrmin":
        from repro.core.ssrmin import SSRmin

        return SSRmin(n, K)
    if name == "dijkstra":
        from repro.algorithms.dijkstra import DijkstraKState

        return DijkstraKState(n, K)
    raise ValueError(f"unknown witness algorithm {name!r} "
                     f"(known: {', '.join(ALGORITHMS)})")


def _state_to_json(state: Any) -> Any:
    return list(state) if isinstance(state, tuple) else state


def _state_from_json(state: Any) -> Any:
    return tuple(state) if isinstance(state, list) else state


@dataclass
class Witness:
    """One replayable conformance scenario."""

    algorithm: str
    n: int
    K: int
    config: List[Any]
    schedule: List[Tuple[int, ...]]
    faults: List[dict] = field(default_factory=list)
    expect: str = "pass"
    seed: Optional[int] = None
    note: str = ""
    divergence: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.expect not in ("pass", "divergence"):
            raise ValueError(f"expect must be 'pass' or 'divergence', "
                             f"got {self.expect!r}")
        self.config = [_state_from_json(s) for s in self.config]
        self.schedule = [tuple(sel) for sel in self.schedule]

    # -- replay --------------------------------------------------------------
    def build(self):
        """Instantiate the algorithm this witness targets."""
        return build_algorithm(self.algorithm, self.n, self.K)

    def replay(self, use_cst: bool = True):
        """Run the witness through the oracle; returns a ConformanceReport."""
        from repro.verification.conformance.oracle import LockstepOracle

        oracle = LockstepOracle(self.build(), use_cst=use_cst)
        return oracle.run_schedule(self.config, self.schedule, self.faults)

    # -- serialization -------------------------------------------------------
    def to_lines(self) -> List[str]:
        """The witness as deterministic JSONL lines (sorted keys)."""
        header = {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "algorithm": self.algorithm,
            "n": self.n,
            "K": self.K,
            "expect": self.expect,
            "seed": self.seed,
            "note": self.note,
        }
        if self.divergence is not None:
            header["divergence"] = self.divergence
        lines = [json.dumps(header, sort_keys=True)]
        lines.append(json.dumps(
            {"config": [_state_to_json(s) for s in self.config]},
            sort_keys=True,
        ))
        for op in self.faults:
            lines.append(json.dumps({"fault": op}, sort_keys=True))
        lines.append(json.dumps(
            {"schedule": [list(sel) for sel in self.schedule]},
            sort_keys=True,
        ))
        return lines

    def save(self, path: str) -> str:
        """Write the witness to ``path`` (creating directories); returns it."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w") as fh:
            fh.write("\n".join(self.to_lines()) + "\n")
        return path

    @classmethod
    def load(cls, path: str) -> "Witness":
        header = None
        config: Optional[list] = None
        faults: List[dict] = []
        schedule: Optional[list] = None
        with open(path) as fh:
            for lineno, raw in enumerate(fh, 1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: not valid JSON: {exc}"
                    ) from None
                if "format" in record:
                    if record["format"] != FORMAT:
                        raise ValueError(
                            f"{path}: unknown format {record['format']!r}"
                        )
                    header = record
                elif "config" in record:
                    config = record["config"]
                elif "fault" in record:
                    faults.append(record["fault"])
                elif "schedule" in record:
                    schedule = record["schedule"]
                else:
                    raise ValueError(
                        f"{path}:{lineno}: unrecognized record {record!r}"
                    )
        if header is None or config is None or schedule is None:
            raise ValueError(
                f"{path}: incomplete witness (need header, config, schedule)"
            )
        return cls(
            algorithm=header["algorithm"],
            n=int(header["n"]),
            K=int(header["K"]),
            config=config,
            schedule=schedule,
            faults=faults,
            expect=header.get("expect", "pass"),
            seed=header.get("seed"),
            note=header.get("note", ""),
            divergence=header.get("divergence"),
        )


@dataclass
class ReplayOutcome:
    """Verdict of replaying one witness against its expectation."""

    path: str
    ok: bool
    message: str
    report: Any


def replay_witness_file(path: str, use_cst: bool = True) -> ReplayOutcome:
    """Load, replay and judge one corpus file against its expectation.

    The single entry point shared by ``pytest tests/corpus``, the mutation
    smoke tests and ``repro fuzz replay``.
    """
    witness = Witness.load(path)
    report = witness.replay(use_cst=use_cst)
    if witness.expect == "pass":
        if report.ok:
            return ReplayOutcome(
                path, True,
                f"pass as expected ({report.fired_steps} steps fired)",
                report,
            )
        d = report.divergences[0]
        return ReplayOutcome(
            path, False,
            f"expected pass but diverged at step {d.step} "
            f"[{d.kind}]: {d.detail}", report,
        )
    # expect == "divergence"
    if report.ok:
        return ReplayOutcome(
            path, False,
            "expected a divergence but the replay passed "
            "(stale repro? the bug it captured may be fixed — "
            "delete the file or flip expect to 'pass')", report,
        )
    d = report.divergences[0]
    return ReplayOutcome(
        path, True,
        f"divergence reproduced at step {d.step} [{d.kind}]", report,
    )


def corpus_files(directory: str) -> List[str]:
    """Sorted ``*.jsonl`` witness files under ``directory``.

    ``golden_*.jsonl`` files are skipped: those are frozen figure traces
    (:mod:`repro.experiments.golden`) that share the corpus directory but
    are replayed by their own regression test, not the witness harness.
    """
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".jsonl") and not name.startswith("golden_")
    )
