"""Builders for the checked-in replay corpus (``tests/corpus/*.jsonl``).

Each seed is an ``expect: pass`` witness capturing a scenario the paper (or
our verification layer) singles out as interesting:

* the **exact worst-case convergence witnesses** from the model checker —
  the longest adversarial path into Lambda for SSRmin and Dijkstra on the
  exhaustively-checked n=3 instances (``verification.model_checker.
  worst_case_witness``), with daemon selections recovered from the
  configuration path;
* a **Figure 11/12 model-gap scenario** — a legitimate SSRmin run whose
  channels lose, delay and duplicate state broadcasts and whose caches get
  corrupted, exercising the CST repair path (timer rebroadcast, Lemma 9)
  that keeps the lockstep models coherent;
* a **chaos-recovery scenario** — transient state corruption mid-run, after
  which all three models must track the same recovery;
* a **weighted-unfair scenario** — the n=8 biased daemon that starves
  high-index processes.

Regenerate with ``python -m repro fuzz seed-corpus``; every file is
replayed and judged at generation time, so a failing build here means the
tree itself is broken.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Sequence, Tuple

from repro.daemons.central import RandomCentralDaemon
from repro.daemons.weighted import WeightedUnfairDaemon
from repro.verification.conformance.oracle import LockstepOracle
from repro.verification.conformance.witness import (
    Witness,
    build_algorithm,
    replay_witness_file,
)


def _states(config: Any) -> Tuple[Any, ...]:
    states = getattr(config, "states", None)
    return states if states is not None else tuple(config)


def selections_from_path(algorithm, path: Sequence[Any]) -> List[Tuple[int, ...]]:
    """Recover daemon selections from a configuration path.

    The changed-index diff is the natural candidate; when a selected
    process's rule happens to leave its state unchanged the diff under-
    approximates, so we fall back to searching subsets of the enabled set.
    """
    selections: List[Tuple[int, ...]] = []
    for before, after in zip(path, path[1:]):
        sa, sb = _states(before), _states(after)
        config = algorithm.normalize_configuration(list(sa))
        changed = tuple(i for i in range(algorithm.n) if sa[i] != sb[i])
        if changed and _states(algorithm.step(config, changed)) == sb:
            selections.append(changed)
            continue
        enabled = algorithm.enabled_processes(config)
        found = None
        for r in range(1, len(enabled) + 1):
            for subset in itertools.combinations(enabled, r):
                if _states(algorithm.step(config, subset)) == sb:
                    found = subset
                    break
            if found is not None:
                break
        if found is None:
            raise ValueError(
                f"no daemon selection maps {sa} to {sb} in one step"
            )
        selections.append(found)
    return selections


def worst_case_seed(name: str, n: int = 3, K: int = 4) -> Witness:
    """The model checker's exact worst-case convergence path as a witness."""
    from repro.verification.model_checker import worst_case_witness
    from repro.verification.transition_system import TransitionSystem

    algorithm = build_algorithm(name, n, K)
    path = worst_case_witness(TransitionSystem(algorithm, "distributed"))
    schedule = selections_from_path(algorithm, path)
    return Witness(
        algorithm=name,
        n=n,
        K=K,
        config=list(_states(path[0])),
        schedule=schedule,
        note=(
            f"exact worst-case convergence path for {name}({n},{K}) from "
            f"the exhaustive model checker ({len(schedule)} adversarial "
            f"steps into Lambda)"
        ),
    )


def _daemon_schedule(
    algorithm, initial, daemon, steps: int, faults: Sequence[dict] = ()
) -> List[Tuple[int, ...]]:
    """Run the oracle in generative mode; a clean run yields the schedule."""
    report = LockstepOracle(algorithm).run_daemon(
        initial, daemon, steps, faults=faults
    )
    if not report.ok:
        d = report.divergences[0]
        raise AssertionError(
            f"seed generation hit a real divergence at step {d.step} "
            f"[{d.kind}]: {d.detail}"
        )
    return report.schedule


def modelgap_seed() -> Witness:
    """Figure 11/12-flavoured channel faults on a legitimate SSRmin run."""
    n, K = 5, 6
    algorithm = build_algorithm("ssrmin", n, K)
    initial = list(_states(algorithm.initial_configuration()))
    faults = [
        {"step": 3, "kind": "lose", "src": 1, "dst": 2},
        {"step": 6, "kind": "delay", "src": 2, "dst": 1},
        {"step": 9, "kind": "duplicate", "src": 3, "dst": 4},
        {"step": 12, "kind": "corrupt-cache",
         "node": 0, "neighbor": 4, "value": [3, 1, 0]},
        {"step": 15, "kind": "lose", "src": 4, "dst": 0},
        {"step": 18, "kind": "delay", "src": 0, "dst": 4},
    ]
    schedule = _daemon_schedule(
        algorithm, initial, RandomCentralDaemon(seed=11), 24, faults
    )
    return Witness(
        algorithm="ssrmin", n=n, K=K, config=initial,
        schedule=schedule, faults=faults, seed=11,
        note=(
            "fig11/12 model-gap scenario: legitimate start, lossy/delaying/"
            "duplicating channels plus one corrupted cache entry; the CST "
            "timer rebroadcast must repair every perturbation before the "
            "next rule fires"
        ),
    )


def chaos_recovery_seed() -> Witness:
    """Transient state corruption mid-run; all models track the recovery."""
    n, K = 4, 5
    algorithm = build_algorithm("ssrmin", n, K)
    initial = list(_states(algorithm.initial_configuration()))
    faults = [
        {"step": 5, "kind": "corrupt-state", "process": 2, "value": [4, 1, 1]},
        {"step": 13, "kind": "corrupt-state", "process": 0, "value": [2, 0, 1]},
        {"step": 13, "kind": "corrupt-cache",
         "node": 1, "neighbor": 0, "value": [0, 1, 0]},
    ]
    schedule = _daemon_schedule(
        algorithm, initial, RandomCentralDaemon(seed=7), 30, faults
    )
    return Witness(
        algorithm="ssrmin", n=n, K=K, config=initial,
        schedule=schedule, faults=faults, seed=7,
        note=(
            "chaos recovery: two transient state corruptions (plus a "
            "coinciding cache hit) treated as fresh initial configurations; "
            "engine, kernel and CST projection must re-converge in lockstep"
        ),
    )


def weighted_unfair_seed() -> Witness:
    """The biased daemon on the largest campaign ring size."""
    n, K = 8, 9
    algorithm = build_algorithm("ssrmin", n, K)
    import random as _random

    rng = _random.Random(42)
    initial = list(_states(algorithm.random_configuration(rng)))
    daemon = WeightedUnfairDaemon(bias=4.0, multi_p=0.35, seed=42)
    schedule = _daemon_schedule(algorithm, initial, daemon, 40)
    return Witness(
        algorithm="ssrmin", n=n, K=K, config=initial,
        schedule=schedule, seed=42,
        note=(
            "weighted-unfair daemon on n=8: geometrically biased toward "
            "low-index processes with occasional multi-process selections, "
            "from an arbitrary (post-fault) configuration"
        ),
    )


def dijkstra_channel_seed() -> Witness:
    """Dijkstra's unidirectional CST projection under channel faults."""
    n, K = 4, 5
    algorithm = build_algorithm("dijkstra", n, K)
    import random as _random

    rng = _random.Random(3)
    initial = list(_states(algorithm.random_configuration(rng)))
    faults = [
        {"step": 2, "kind": "lose", "src": 0, "dst": 1},
        {"step": 5, "kind": "delay", "src": 1, "dst": 2},
        {"step": 8, "kind": "duplicate", "src": 3, "dst": 0},
        {"step": 11, "kind": "corrupt-cache",
         "node": 2, "neighbor": 1, "value": 3},
    ]
    schedule = _daemon_schedule(
        algorithm, initial, RandomCentralDaemon(seed=3), 20, faults
    )
    return Witness(
        algorithm="dijkstra", n=n, K=K, config=initial,
        schedule=schedule, faults=faults, seed=3,
        note=(
            "Dijkstra K-state under unidirectional channel faults: tokens "
            "flow one way, caches repair through the same timer path"
        ),
    )


#: ``filename -> builder`` for the checked-in corpus.
SEEDS = {
    "ssrmin_worst_case_n3.jsonl": lambda: worst_case_seed("ssrmin"),
    "dijkstra_worst_case_n3.jsonl": lambda: worst_case_seed("dijkstra"),
    "ssrmin_modelgap_channel_faults.jsonl": modelgap_seed,
    "ssrmin_chaos_recovery.jsonl": chaos_recovery_seed,
    "ssrmin_weighted_unfair_n8.jsonl": weighted_unfair_seed,
    "dijkstra_channel_faults.jsonl": dijkstra_channel_seed,
}


def seed_corpus(directory: str, verify: bool = True) -> List[str]:
    """Build every seed witness into ``directory``; returns written paths.

    With ``verify`` (default), each file is immediately replayed through
    :func:`~.witness.replay_witness_file` and must judge OK.
    """
    import os

    paths = []
    for filename, builder in sorted(SEEDS.items()):
        witness = builder()
        path = witness.save(os.path.join(directory, filename))
        if verify:
            outcome = replay_witness_file(path)
            if not outcome.ok:
                raise AssertionError(f"{filename}: {outcome.message}")
        paths.append(path)
    return paths
