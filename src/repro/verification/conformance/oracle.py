"""The differential oracle: lockstep execution of one schedule through
every executable model of an algorithm.

Three models run the same ``(configuration, schedule, fault script)``:

* the **reference engine** — the naive guard walk over
  :class:`~repro.core.rules.RuleSet` via ``algorithm.step`` (deliberately
  simple, treated as ground truth);
* the **fastpath kernel** — the packed
  :class:`~repro.simulation.fastpath.kernel.FastKernel`
  (``RULE_TABLE``-driven for SSRmin, comparison-driven for Dijkstra);
* the **CST projection** — real cached
  :class:`~repro.messagepassing.node.CSTNode`\\ s driven at quiescent
  points (:class:`~repro.messagepassing.projection.SynchronousCSTProjection`).

After every step the oracle asserts, in order: cache coherence (CST views
vs true states), enabled-set equality, per-process rule resolution, state
equality, privilege-set equality (including the CST own-view holder set —
Definition 3's ``h_i``), legitimacy agreement, the paper's token-count
invariant on legitimate configurations (1..2 tokens for SSRmin, exactly 1
for Dijkstra — Theorems 1/3), and closure (a legitimate configuration may
not step outside Lambda).  The first violated check becomes a
:class:`Divergence`; everything needed to replay it deterministically is in
the accompanying :class:`~repro.verification.conformance.witness.Witness`.

Schedules replay with *filtering* semantics: each recorded selection is
intersected with the reference enabled set and the step is skipped when the
intersection is empty.  This keeps every schedule applicable to every
configuration, which is what lets the shrinker mutate witnesses freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.daemons.base import Daemon
from repro.faults.injection import corrupt_process_to
from repro.messagepassing.projection import SynchronousCSTProjection

#: ``algorithm-name -> (min tokens, max tokens)`` on legitimate
#: configurations; checked as the (1,2)-token invariant.
TOKEN_BOUNDS = {"SSRmin": (1, 2), "DijkstraKState": (1, 1)}


@dataclass
class Divergence:
    """One observed disagreement between models (or property violation)."""

    step: int
    kind: str
    detail: str
    config: Tuple[Any, ...]

    def to_json(self) -> dict:
        """JSON-able form (stored in witness headers and fuzz events)."""
        return {
            "step": self.step,
            "kind": self.kind,
            "detail": self.detail,
            "config": [list(s) if isinstance(s, tuple) else s
                       for s in self.config],
        }


@dataclass
class ConformanceReport:
    """Outcome of one lockstep run."""

    steps: int
    fired_steps: int
    divergences: List[Divergence] = field(default_factory=list)
    final_config: Optional[Tuple[Any, ...]] = None
    #: The concrete schedule actually consumed (selections as recorded,
    #: including entries that were skipped after filtering) — this is what
    #: a witness stores and the shrinker mutates.
    schedule: List[Tuple[int, ...]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _states_of(config: Any) -> Tuple[Any, ...]:
    states = getattr(config, "states", None)
    return states if states is not None else tuple(config)


class LockstepOracle:
    """Differential conformance checker for one algorithm instance.

    Parameters
    ----------
    algorithm:
        Instance under test; must provide ``fast_kernel()`` for the kernel
        leg (every shipped SSRmin/Dijkstra instance does).
    use_cst:
        Include the CST projection leg (default on).
    max_divergences:
        Stop after this many recorded divergences (default 1 — the
        shrinker wants the earliest failure).
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        use_cst: bool = True,
        max_divergences: int = 1,
    ):
        self.algorithm = algorithm
        self.use_cst = use_cst
        self.max_divergences = max_divergences
        self.token_bounds = TOKEN_BOUNDS.get(type(algorithm).__name__)

    # -- public entry points -------------------------------------------------
    def run_schedule(
        self,
        initial: Any,
        schedule: Sequence[Sequence[int]],
        faults: Sequence[dict] = (),
    ) -> ConformanceReport:
        """Replay a recorded schedule (filtering semantics) with faults."""
        schedule = [tuple(sel) for sel in schedule]

        def driver(enabled: Tuple[int, ...], step: int) -> Tuple[int, ...]:
            recorded = schedule[step]
            return tuple(i for i in recorded if i in enabled)

        return self._run(initial, driver, len(schedule), faults,
                         recorded=schedule)

    def run_daemon(
        self,
        initial: Any,
        daemon: Daemon,
        steps: int,
        faults: Sequence[dict] = (),
    ) -> ConformanceReport:
        """Generate the schedule live from ``daemon`` (campaign mode).

        The daemon selects against the *reference* enabled set and view;
        its selections are recorded in the report so a failing trial can be
        replayed and shrunk as a concrete witness.
        """
        daemon.reset()

        def driver(enabled: Tuple[int, ...], step: int) -> Tuple[int, ...]:
            if not enabled:
                return ()
            return Daemon.validate_selection(
                daemon.select(enabled, self._config, step), enabled
            )

        return self._run(initial, driver, steps, faults, recorded=None)

    # -- the lockstep loop ---------------------------------------------------
    def _run(
        self,
        initial: Any,
        driver: Callable[[Tuple[int, ...], int], Tuple[int, ...]],
        steps: int,
        faults: Sequence[dict],
        recorded: Optional[List[Tuple[int, ...]]],
    ) -> ConformanceReport:
        alg = self.algorithm
        config = alg.normalize_configuration(
            tuple(_states_of(alg.normalize_configuration(initial)))
        )
        self._config = config
        kernel = alg.fast_kernel()
        if kernel is None:  # pragma: no cover - both algorithms have kernels
            raise ValueError(
                f"{type(alg).__name__} has no fast kernel to compare against"
            )
        kernel.load(config)
        projection = (
            SynchronousCSTProjection(alg, list(_states_of(config)))
            if self.use_cst else None
        )

        faults_by_step: dict = {}
        for op in faults:
            faults_by_step.setdefault(int(op["step"]), []).append(op)

        report = ConformanceReport(steps=0, fired_steps=0)
        was_legitimate = alg.is_legitimate(config)

        for step in range(steps):
            step_ops = faults_by_step.get(step, ())
            config, faulted = self._apply_faults(
                config, kernel, projection, step_ops
            )
            self._config = config
            if projection is not None:
                # Channel phase already ran inside _apply_faults; now the
                # timer sweep repairs caches, then coherence is asserted.
                projection.timer_sweep()

            if faulted:
                # A fault legitimately restarts the execution: closure is
                # not violated by leaving Lambda through corruption.
                was_legitimate = alg.is_legitimate(config)

            if self._check_static(config, kernel, projection, step, report):
                # Record an entry for the diverging step so a replayed
                # witness runs far enough to re-execute this check (an
                # empty selection skips the rule phase but not the checks).
                report.schedule.append(
                    recorded[step] if recorded is not None else ()
                )
                report.steps = step + 1
                break

            enabled = alg.enabled_processes(config)
            selection = driver(enabled, step)
            if recorded is None:
                report.schedule.append(tuple(selection))
            else:
                report.schedule.append(recorded[step])
            report.steps = step + 1
            if not selection:
                continue

            next_config = alg.step(config, selection)
            kernel.apply(selection)
            if projection is not None:
                projection.apply(selection)
            report.fired_steps += 1
            config = next_config
            self._config = config

            if self._check_post(
                config, kernel, projection, step, was_legitimate, report
            ):
                break
            was_legitimate = alg.is_legitimate(config)

        report.final_config = _states_of(config)
        return report

    # -- fault application ---------------------------------------------------
    def _apply_faults(
        self, config, kernel, projection, ops
    ) -> Tuple[Any, bool]:
        alg = self.algorithm
        faulted = False
        for op in ops:
            kind = op["kind"]
            if kind == "corrupt-state":
                value = _decode_state(op["value"])
                config = corrupt_process_to(
                    alg, config, int(op["process"]), value
                )
                kernel.load(config)
                if projection is not None:
                    projection.corrupt_node(int(op["process"]), value)
                faulted = True
            elif projection is None:
                continue
            elif kind == "corrupt-cache":
                projection.corrupt_cache(
                    int(op["node"]), int(op["neighbor"]),
                    _decode_state(op["value"]),
                )
            elif kind == "lose":
                # A dropped broadcast: the receiver's cache keeps whatever
                # it had — nothing to do until the timer sweep repairs it.
                pass
            elif kind == "delay":
                projection.deliver_stale(int(op["src"]), int(op["dst"]))
            elif kind == "duplicate":
                projection.deliver_current(
                    int(op["src"]), int(op["dst"]), copies=2
                )
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        return config, faulted

    # -- checks --------------------------------------------------------------
    def _diverge(
        self, report: ConformanceReport, step: int, kind: str, detail: str,
        config: Any,
    ) -> bool:
        report.divergences.append(
            Divergence(step, kind, detail, _states_of(config))
        )
        return len(report.divergences) >= self.max_divergences

    def _check_static(
        self, config, kernel, projection, step, report
    ) -> bool:
        """Pre-step checks: coherence, enabledness, rules, privilege."""
        alg = self.algorithm
        states = _states_of(config)

        if projection is not None:
            bad = projection.incoherent_entries(states)
            if bad:
                return self._diverge(
                    report, step, "coherence",
                    f"stale cache entries after timer sweep: {bad}", config,
                )
            if projection.states() != states:
                return self._diverge(
                    report, step, "state",
                    f"CST node states {projection.states()} != "
                    f"reference {states}", config,
                )

        if kernel.export() != config and _states_of(kernel.export()) != states:
            return self._diverge(
                report, step, "state",
                f"kernel states {_states_of(kernel.export())} != "
                f"reference {states}", config,
            )

        ref_enabled = alg.enabled_processes(config)
        if kernel.enabled() != ref_enabled:
            return self._diverge(
                report, step, "enabled",
                f"kernel enabled {kernel.enabled()} != "
                f"reference {ref_enabled}", config,
            )
        if projection is not None and projection.enabled() != ref_enabled:
            return self._diverge(
                report, step, "enabled",
                f"CST enabled {projection.enabled()} != "
                f"reference {ref_enabled}", config,
            )

        for i in ref_enabled:
            ref_rule = alg.enabled_rule(config, i).name
            if kernel.rule_name(i) != ref_rule:
                return self._diverge(
                    report, step, "rule",
                    f"process {i}: kernel resolves {kernel.rule_name(i)}, "
                    f"reference {ref_rule}", config,
                )
            if projection is not None and projection.rule_name(i) != ref_rule:
                return self._diverge(
                    report, step, "rule",
                    f"process {i}: CST view resolves "
                    f"{projection.rule_name(i)}, reference {ref_rule}",
                    config,
                )

        ref_priv = alg.privileged(config)
        if kernel.privileged() != ref_priv:
            return self._diverge(
                report, step, "privilege",
                f"kernel privileged {kernel.privileged()} != "
                f"reference {ref_priv}", config,
            )
        if projection is not None:
            own = projection.own_view_holders()
            if own != ref_priv:
                return self._diverge(
                    report, step, "own-view",
                    f"CST own-view holders {own} != "
                    f"reference privileged {ref_priv}", config,
                )

        ref_legit = alg.is_legitimate(config)
        if kernel.is_legitimate() != ref_legit:
            return self._diverge(
                report, step, "legitimacy",
                f"kernel legitimacy {kernel.is_legitimate()} != "
                f"reference {ref_legit}", config,
            )
        if ref_legit and self.token_bounds is not None:
            lo, hi = self.token_bounds
            if not lo <= len(ref_priv) <= hi:
                return self._diverge(
                    report, step, "token-count",
                    f"legitimate configuration holds {len(ref_priv)} tokens,"
                    f" expected {lo}..{hi}", config,
                )
        return False

    def _check_post(
        self, config, kernel, projection, step, was_legitimate, report
    ) -> bool:
        """Post-step checks: state equality across models, closure."""
        alg = self.algorithm
        states = _states_of(config)
        kstates = _states_of(kernel.export())
        if kstates != states:
            return self._diverge(
                report, step, "state",
                f"after step {step}: kernel {kstates} != reference {states}",
                config,
            )
        if projection is not None and projection.states() != states:
            return self._diverge(
                report, step, "state",
                f"after step {step}: CST {projection.states()} != "
                f"reference {states}", config,
            )
        if was_legitimate and not alg.is_legitimate(config):
            return self._diverge(
                report, step, "closure",
                "legitimate configuration stepped outside Lambda", config,
            )
        return False


def _decode_state(value: Any) -> Any:
    """JSON round-trip normalization: lists back to tuples, ints stay."""
    if isinstance(value, list):
        return tuple(value)
    return value
