"""Exhaustive verification of self-stabilization for small instances.

The paper proves closure (Lemma 1), no-deadlock (Lemma 4) and convergence
(Lemma 6, Theorem 2) by hand.  For small ``(n, K)`` we can *mechanically*
verify the same properties by enumerating the full configuration space and
transition relation:

* **no deadlock** — every configuration has an enabled process;
* **closure** — no transition leaves the legitimate set;
* **convergence** — no cycle of the transition graph lies entirely outside
  the legitimate set (so every infinite execution must enter it, whatever
  the daemon does);
* **worst-case convergence time** — the game value of the daemon trying to
  maximize steps-to-Lambda (longest path over the illegitimate region, well
  defined exactly when convergence holds).

Transition relations are available for the central daemon (all single-process
moves) and the distributed daemon (all non-empty subsets of enabled
processes, optionally capped).  These checks also validate the reconstructed
Dijkstra 3-/4-state algorithms before experiments rely on them.

:mod:`repro.verification.conformance` complements the exhaustive checks
with a *differential* harness: a lockstep oracle across the reference
engine, fastpath kernels and CST projection, an adversarial fuzzer, a
witness shrinker and the ``tests/corpus`` replay format.
"""

from repro.verification.transition_system import TransitionSystem
from repro.verification.model_checker import (
    check_self_stabilization,
    StabilizationReport,
    worst_case_convergence_steps,
)
from repro.verification.properties import (
    always,
    eventually,
    eventually_always,
    leads_to,
    until,
    PropertyResult,
)

__all__ = [
    "TransitionSystem",
    "check_self_stabilization",
    "StabilizationReport",
    "worst_case_convergence_steps",
    "always",
    "eventually",
    "eventually_always",
    "leads_to",
    "until",
    "PropertyResult",
]
