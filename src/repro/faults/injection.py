"""Primitive fault injectors.

For state-reading configurations, a transient fault replaces a process's
local state with an arbitrary domain value.  For message-passing networks,
faults can additionally hit caches (a corrupted cache entry is exactly the
"bad incoherence" of section 5) — message loss itself is a property of the
:class:`~repro.messagepassing.links.Link`.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Optional, Sequence

from repro.algorithms.base import RingAlgorithm


def random_local_state(algorithm: RingAlgorithm, rng: random.Random) -> Any:
    """A uniform random value of the algorithm's local-state domain.

    The sampling primitive behind every injector here; the conformance
    fuzzer also uses it to pre-draw *concrete* fault values at script
    generation time, so fault scripts replay deterministically without an
    RNG.
    """
    space = list(algorithm.local_state_space())
    return rng.choice(space)


def corrupt_process_to(
    algorithm: RingAlgorithm, config: Any, i: int, new_state: Any
) -> Any:
    """Replace process ``i``'s local state with a *given* domain value.

    The deterministic core of :func:`corrupt_process`; scripted fault
    replay (``tests/corpus/``) calls this directly with recorded values.
    Returns the corrupted configuration (configurations are immutable).
    """
    replace = getattr(config, "replace", None)
    if callable(replace):
        return replace(i, new_state)
    states = list(config)
    states[i] = new_state
    return algorithm.normalize_configuration(states)


def corrupt_process(
    algorithm: RingAlgorithm, config: Any, i: int, rng: random.Random
) -> Any:
    """Replace process ``i``'s local state with a uniform random domain value.

    Returns the corrupted configuration (configurations are immutable).
    """
    return corrupt_process_to(
        algorithm, config, i, random_local_state(algorithm, rng)
    )


def corrupt_processes(
    algorithm: RingAlgorithm,
    config: Any,
    indices: Iterable[int],
    rng: random.Random,
) -> Any:
    """Corrupt several processes (a fault burst)."""
    for i in indices:
        config = corrupt_process(algorithm, config, i, rng)
    return config


class FaultInjector:
    """Stateful injector with a seeded RNG and an injection log.

    Works on state-reading configurations (:meth:`hit_config`) and on
    message-passing networks (:meth:`hit_network_state`,
    :meth:`hit_network_cache`).
    """

    def __init__(self, algorithm: RingAlgorithm, seed: int = 0):
        self.algorithm = algorithm
        self.rng = random.Random(seed)
        #: Log of ``(kind, target)`` tuples, in injection order.
        self.log: list = []

    def hit_config(self, config: Any, count: int = 1) -> Any:
        """Corrupt ``count`` uniformly chosen processes of a configuration."""
        for _ in range(count):
            i = self.rng.randrange(self.algorithm.n)
            config = corrupt_process(self.algorithm, config, i, self.rng)
            self.log.append(("state", i))
        return config

    def hit_network_state(self, network, count: int = 1) -> None:
        """Corrupt ``count`` node states of a running CST network in place."""
        space = list(self.algorithm.local_state_space())
        for _ in range(count):
            i = self.rng.randrange(self.algorithm.n)
            network.corrupt_node(i, self.rng.choice(space))
            self.log.append(("node-state", i))

    def hit_network_cache(self, network, count: int = 1) -> None:
        """Corrupt ``count`` cache entries of a running CST network."""
        space = list(self.algorithm.local_state_space())
        n = self.algorithm.n
        for _ in range(count):
            i = self.rng.randrange(n)
            neighbor = self.rng.choice([(i - 1) % n, (i + 1) % n])
            network.corrupt_cache(i, neighbor, self.rng.choice(space))
            self.log.append(("cache", (i, neighbor)))
