"""Composed fault scenarios for recovery experiments.

A :class:`FaultScenario` interleaves fault injections with simulation in the
state-reading model and measures recovery: after each injection, how many
steps until the system is legitimate again.  Factory helpers build the two
standard shapes:

* :func:`burst_fault` — one burst of ``f`` simultaneous corruptions
  (superstabilization literature's "single topology-change event" analogue);
* :func:`periodic_faults` — repeated single faults every ``period`` steps
  (a soft-error-rate regime); the system is "available" whenever legitimate,
  so the scenario also reports the availability fraction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.algorithms.base import RingAlgorithm
from repro.daemons.base import Daemon
from repro.faults.injection import FaultInjector
from repro.simulation.convergence import converge


@dataclass
class RecoveryRecord:
    """Recovery from one injection: steps back to legitimacy."""

    fault_index: int
    corrupted_processes: int
    recovery_steps: int


@dataclass
class ScenarioResult:
    """Outcome of a full fault scenario run."""

    records: List[RecoveryRecord] = field(default_factory=list)
    total_steps: int = 0
    legitimate_steps: int = 0

    @property
    def availability(self) -> float:
        """Fraction of steps spent in legitimate configurations."""
        return self.legitimate_steps / self.total_steps if self.total_steps else 1.0

    @property
    def max_recovery(self) -> int:
        """Worst observed recovery time."""
        return max((r.recovery_steps for r in self.records), default=0)


class FaultScenario:
    """Run: converge, inject, recover, repeat.

    Parameters
    ----------
    algorithm, daemon:
        The system under test.
    faults_per_injection:
        How many process states each injection corrupts.
    injections:
        Number of injection/recovery rounds.
    seed:
        Master seed (injector and recovery budget use derived seeds).
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        daemon: Daemon,
        faults_per_injection: int = 1,
        injections: int = 10,
        seed: int = 0,
    ):
        self.algorithm = algorithm
        self.daemon = daemon
        self.faults_per_injection = faults_per_injection
        self.injections = injections
        self.injector = FaultInjector(algorithm, seed=seed)
        self.rng = random.Random(seed + 7919)

    def run(self, initial: Optional[Any] = None) -> ScenarioResult:
        """Execute the scenario; returns per-injection recovery records."""
        alg = self.algorithm
        config = (
            alg.normalize_configuration(initial)
            if initial is not None
            else alg.random_configuration(self.rng)
        )
        result = ScenarioResult()

        # Initial convergence (not counted as a recovery record).
        res = converge(alg, self.daemon, config)
        if not res.converged:
            raise RuntimeError("initial convergence failed")
        config = res.final_config
        result.total_steps += res.steps

        for k in range(self.injections):
            config = self.injector.hit_config(config, self.faults_per_injection)
            res = converge(alg, self.daemon, config)
            if not res.converged:
                raise RuntimeError(f"recovery {k} failed to converge")
            config = res.final_config
            result.records.append(
                RecoveryRecord(
                    fault_index=k,
                    corrupted_processes=self.faults_per_injection,
                    recovery_steps=res.steps,
                )
            )
            result.total_steps += res.steps
            result.legitimate_steps += 0  # illegitimate during recovery
            # Let the system run legitimately for a lap between faults.
            lap = 3 * alg.n
            from repro.simulation.engine import SharedMemorySimulator

            sim = SharedMemorySimulator(alg, self.daemon)
            run_res = sim.run(config, max_steps=lap, record=False)
            config = run_res.final_config
            result.total_steps += run_res.steps
            result.legitimate_steps += run_res.steps
        return result


def burst_fault(
    algorithm: RingAlgorithm, daemon: Daemon, faults: int, seed: int = 0
) -> ScenarioResult:
    """One burst of ``faults`` simultaneous corruptions, then recovery."""
    scenario = FaultScenario(
        algorithm, daemon, faults_per_injection=faults, injections=1, seed=seed
    )
    return scenario.run()


def periodic_faults(
    algorithm: RingAlgorithm,
    daemon: Daemon,
    rounds: int,
    seed: int = 0,
) -> ScenarioResult:
    """``rounds`` single-fault injections with legitimate laps in between."""
    scenario = FaultScenario(
        algorithm, daemon, faults_per_injection=1, injections=rounds, seed=seed
    )
    return scenario.run()
