"""Transient-fault injection (the faults self-stabilization tolerates).

Section 2.2: a self-stabilizing system tolerates "any kind and any finite
number of transient faults, for example, memory corruption by soft error,
message loss and/or corruption" — the configuration just after the fault is
treated as a fresh initial configuration.

* :mod:`repro.faults.injection` — primitive injectors for state-reading
  configurations and for message-passing networks (state, cache, message).
* :mod:`repro.faults.scenarios` — composed scenarios: single bit-flip,
  bursts, periodic faults with a mean time between faults, used by the
  recovery experiments and the fault_recovery example.
"""

from repro.faults.injection import (
    corrupt_process,
    corrupt_process_to,
    corrupt_processes,
    random_local_state,
    FaultInjector,
)
from repro.faults.scenarios import FaultScenario, periodic_faults, burst_fault

__all__ = [
    "corrupt_process",
    "corrupt_process_to",
    "corrupt_processes",
    "random_local_state",
    "FaultInjector",
    "FaultScenario",
    "periodic_faults",
    "burst_fault",
]
