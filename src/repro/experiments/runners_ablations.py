"""Ablation and application runners.

* ``abl1`` — the secondary-token condition ablation the paper motivates in
  section 3.1: with the weak ``tra_i = 1``-only predicate the secondary
  token goes extinct in the message-passing model; the full predicate keeps
  it alive.
* ``abl2`` — daemon sweep: SSRmin converges under every scheduler from the
  central daemon to aggressive distributed/adversarial ones (it is proven
  under the weakest, the unfair distributed daemon).
* ``abl3`` — the ``K > n`` requirement: below the threshold, the embedded
  Dijkstra ring stops being self-stabilizing (exhaustively shown).
* ``abl4`` — CST refresh-timer sensitivity of recovery latency.
* ``app1`` — the motivating camera-network application end to end.
"""

from __future__ import annotations

import random
from typing import List

from repro.algorithms.dijkstra import DijkstraKState
from repro.analysis.statistics import summarize
from repro.apps.energy import EnergyModel
from repro.apps.monitoring import CameraNetwork
from repro.core.ssrmin import SSRmin
from repro.core.tokens import weak_secondary_condition
from repro.daemons.adversarial import AdversarialDaemon
from repro.daemons.central import FixedPriorityDaemon, RandomCentralDaemon, RoundRobinDaemon
from repro.daemons.distributed import BernoulliDaemon, RandomSubsetDaemon, SynchronousDaemon
from repro.experiments.registry import ExperimentResult
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import evaluate_gap
from repro.simulation.convergence import convergence_steps
from repro.verification.model_checker import check_self_stabilization
from repro.verification.transition_system import TransitionSystem


def _secondary_full(node) -> bool:
    """Own-view *secondary-token* predicate, the paper's two-disjunct form."""
    view = node.view()
    n = node.algorithm.n
    i = node.index
    _, rts, tra = view[i]
    _, rts_s, tra_s = view[(i + 1) % n]
    return tra == 1 or (rts == 1 and rts_s == 0 and tra_s == 0)


def _secondary_weak(node) -> bool:
    """Own-view secondary predicate using the rejected tra-only rule."""
    view = node.view()
    _, rts, tra = view[node.index]
    return weak_secondary_condition((rts, tra), (0, 0))


def run_abl1(fast: bool = False) -> ExperimentResult:
    """Ablation: the secondary-token condition (section 3.1's discussion).

    Lemma 2 establishes that exactly one secondary token circulates; the
    paper rejects the simpler condition ``tra_i = 1`` because under it the
    secondary token goes extinct whenever the two tokens co-locate — the
    state-reading model shrugs (the primary still exists) but in the
    message-passing model the extinction lasts a whole transient period.
    This runner therefore tracks the *secondary token's* existence in the
    nodes' own cached views under both conditions.
    """
    duration = 150.0 if fast else 600.0
    rows: List[List[str]] = []
    zero = {}
    for label, predicate in (
        ("full (paper)", _secondary_full),
        ("tra-only (weak)", _secondary_weak),
    ):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=21, delay_model=UniformDelay(0.5, 1.5),
                          token_predicate=predicate)
        rep = evaluate_gap(net, duration=duration)
        zero[label] = rep.zero_time
        rows.append([label, f"{rep.zero_time:.1f}",
                     f"{rep.zero_time / duration:.1%}",
                     str(rep.min_count), str(rep.max_count)])
    ok = zero["full (paper)"] == 0.0 and zero["tra-only (weak)"] > 0.0
    return ExperimentResult(
        experiment_id="abl1",
        title="Secondary-token condition ablation (section 3.1)",
        paper_claim="with condition tra_i=1 alone the secondary token "
        "extincts when the tokens co-locate; the paper's two-disjunct "
        "condition keeps it alive through every transient period",
        measured="weak condition loses the secondary token; the paper's "
        "condition never does" if ok
        else "ablation did not separate the predicates",
        match=ok,
        header=["secondary condition", "no-secondary time", "fraction",
                "min holders", "max holders"],
        rows=rows,
        notes="holder counts here are of the SECONDARY token only",
    )


def run_abl2(fast: bool = False) -> ExperimentResult:
    """Ablation: convergence under a spectrum of daemons."""
    n = 8
    trials = 8 if fast else 30
    daemons = {
        "central (random)": lambda alg, s: RandomCentralDaemon(seed=s),
        "central (round robin)": lambda alg, s: RoundRobinDaemon(),
        "central (fixed priority)": lambda alg, s: FixedPriorityDaemon(),
        "synchronous": lambda alg, s: SynchronousDaemon(),
        "random subset": lambda alg, s: RandomSubsetDaemon(seed=s),
        "bernoulli p=0.2": lambda alg, s: BernoulliDaemon(0.2, seed=s),
        "adversarial depth=1": lambda alg, s: AdversarialDaemon(alg, depth=1, seed=s),
    }
    rows = []
    ok = True
    for label, factory in daemons.items():
        try:
            samples = convergence_steps(
                algorithm_factory=lambda: SSRmin(n, n + 1),
                daemon_factory=factory,
                trials=trials,
                seed=7,
            )
            s = summarize(samples)
            rows.append([label, f"{s.mean:.1f}", f"{s.maximum:.0f}", "yes"])
        except RuntimeError:
            rows.append([label, "-", "-", "NO"])
            ok = False
    return ExperimentResult(
        experiment_id="abl2",
        title="Daemon sweep (unfair distributed daemon claim)",
        paper_claim="SSRmin is correct under the unfair distributed daemon, "
        "hence under every scheduler it subsumes",
        measured="converged under every daemon tested" if ok
        else "a daemon prevented convergence",
        match=ok,
        header=["daemon", "mean steps", "max steps", "always converged"],
        rows=rows,
        notes=f"n={n}, {trials} random initial configurations per daemon",
    )


def run_abl3(fast: bool = False) -> ExperimentResult:
    """Ablation: the K > n requirement of the embedded Dijkstra ring."""
    rows = []
    ok = True
    cases = ((3,), (4,)) if not fast else ((3,),)
    for (n,) in cases:
        for K in (max(2, n - 1), n, n + 1):
            alg = DijkstraKState(n, K, allow_small_k=True)
            ts = TransitionSystem(alg, daemon="distributed")
            rep = check_self_stabilization(ts)
            stab = rep.self_stabilizing
            rows.append([str(n), str(K), "K>n" if K > n else "K<=n",
                         str(stab),
                         str(rep.worst_case_steps) if stab else "-"])
            if K > n and not stab:
                ok = False
            if K < n and stab:
                # Below n-1 the ring must fail; equality cases are allowed
                # to go either way per the literature's tightness results.
                ok = False
    return ExperimentResult(
        experiment_id="abl3",
        title="K sensitivity of Dijkstra's K-state ring (K > n requirement)",
        paper_claim="SSToken requires K > n under the distributed daemon",
        measured="K > n instances verified self-stabilizing; "
        "small-K failures localized below the threshold" if ok
        else "a K > n instance failed (or K < n-1 passed) the checker",
        match=ok,
        header=["n", "K", "regime", "self-stabilizing", "worst-case steps"],
        rows=rows,
        notes="exhaustive model checking under the distributed daemon",
    )


def run_app1(fast: bool = False) -> ExperimentResult:
    """Application: continuous-observation camera network (section 1.1)."""
    duration = 200.0 if fast else 1000.0
    n = 6
    cam = CameraNetwork(n, seed=77, delay_model=UniformDelay(0.5, 1.5))
    # Harvest must cover the ~1/n duty cycle with headroom for the longest
    # continuous active stretch (a few handover periods on this ring).
    model = EnergyModel(active_power=8.0, idle_power=0.5, harvest_rate=4.0,
                        capacity=200.0, initial_charge=150.0)
    report = cam.run(duration, energy_model=model)
    e = report.energy
    rows = [
        ["coverage", f"{report.coverage:.4f}"],
        ["min active cameras", str(report.min_active)],
        ["max active cameras", str(report.max_active)],
        ["handovers", str(report.handovers)],
        ["graceful handovers", str(report.graceful_handovers)],
        ["mean duty cycle", f"{sum(e.duty_cycle) / n:.2f}"],
        ["energy saving vs always-on", f"x{e.saving_factor:.1f}"],
        ["sustainable (no brownout)", str(e.sustainable)],
    ]
    ok = (
        report.continuous_observation
        and report.handovers == report.graceful_handovers
        and e.sustainable
    )
    return ExperimentResult(
        experiment_id="app1",
        title="Self-organizing camera monitoring network (section 1.1)",
        paper_claim="at least one node actively monitors at every instant; "
        "inactive nodes save/harvest energy; handover is graceful",
        measured=f"coverage {report.coverage:.1%}, "
        f"{report.graceful_handovers}/{report.handovers} handovers graceful, "
        f"energy saving x{e.saving_factor:.1f}",
        match=ok,
        header=["quantity", "value"],
        rows=rows,
        notes="SSRmin over the CST message-passing substrate; duty cycle "
        "~1/n per node while coverage stays 100%",
    )


def run_abl4(fast: bool = False) -> ExperimentResult:
    """Ablation: CST refresh-timer sensitivity of fault recovery.

    Algorithm 4's periodic state broadcasts are what repair corrupted
    caches; the refresh period therefore bounds recovery latency.  This
    ablation measures time-to-(legitimate + coherent) from chaos as a
    function of the timer interval.
    """
    from repro.analysis.statistics import summarize
    from repro.messagepassing.coherence import CoherenceTracker
    from repro.messagepassing.cst import transformed_from_chaos

    seeds = range(4) if fast else range(12)
    rows = []
    means = []
    intervals = (2.0, 5.0, 15.0)
    ok = True
    for interval in intervals:
        times = []
        for seed in seeds:
            alg = SSRmin(5, 6)
            net = transformed_from_chaos(
                alg, seed=200 + seed, loss_probability=0.1,
                timer_interval=interval, timer_jitter=interval / 3.0,
            )
            t = CoherenceTracker(net).run_until_stabilized(
                slice_duration=5.0, max_time=50_000.0
            )
            times.append(t)
        s = summarize(times)
        means.append(s.mean)
        rows.append([f"{interval:.0f}", f"{s.mean:.1f}", f"{s.maximum:.1f}"])
    # All runs must stabilize, and because the *circulating token itself*
    # refreshes caches every lap, recovery latency should be largely
    # insensitive to the timer (within a factor of ~2 across a 7.5x sweep).
    spread = max(means) / min(means)
    ok = ok and spread <= 2.0
    return ExperimentResult(
        experiment_id="abl4",
        title="CST refresh-timer sensitivity of recovery",
        paper_claim="Algorithm 4's periodic transmission is 'important for "
        "self-stabilization of real network' — it repairs caches that no "
        "rule execution would otherwise refresh",
        measured="every run stabilized at every interval; latency varied by "
        f"only {spread:.2f}x across a 7.5x interval sweep — in a "
        "*circulating* system the token's own state messages refresh caches "
        "every lap, so the timer is a liveness backstop, not the recovery "
        "pacer" if ok else "unexpectedly strong timer dependence",
        match=ok,
        header=["timer interval", "mean stabilize time", "max"],
        rows=rows,
        notes="chaos start (random states AND caches), 10% message loss",
    )


def run_abl5(fast: bool = False) -> ExperimentResult:
    """Ablation: K sensitivity *above* the threshold.

    abl3 shows K <= n breaks self-stabilization; this sweep asks the
    complementary question: once K > n, does making K larger change
    convergence speed?  It should not — the embedded ring's convergence is
    driven by the bottom process erasing foreign values, which takes one
    circulation regardless of how many unused counter values exist.
    """
    n = 8
    trials = 10 if fast else 40
    rows = []
    means = []
    ks = (n + 1, 2 * n, 4 * n, 16 * n)
    for K in ks:
        samples = convergence_steps(
            algorithm_factory=lambda K=K: SSRmin(n, K),
            daemon_factory=lambda alg, s: RandomSubsetDaemon(seed=s),
            trials=trials,
            seed=3 * K,
        )
        s = summarize(samples)
        means.append(s.mean)
        rows.append([str(K), f"{s.mean:.1f}", f"{s.maximum:.0f}"])
    spread = max(means) / min(means)
    ok = spread <= 1.6
    return ExperimentResult(
        experiment_id="abl5",
        title="K insensitivity above the threshold",
        paper_claim="K is 'any constant such that K > n' — beyond the "
        "threshold its magnitude is immaterial",
        measured=f"mean convergence steps varied by only {spread:.2f}x "
        f"across K = n+1 .. 16n" if ok
        else "unexpected K dependence above the threshold",
        match=ok,
        header=["K", "mean steps", "max steps"],
        rows=rows,
        notes=f"n={n}, {trials} random starts per K, random-subset daemon",
    )
