"""Generic deterministic parameter sweeps.

Experiment runners keep re-implementing the same loop: for each parameter
point, run seeded trials, summarize, print a table.  :class:`Sweep` factors
it out with deterministic per-point seeding (point index and trial index are
mixed into the seed, so adding points does not reshuffle existing ones) and
structured output that plugs straight into
:class:`~repro.experiments.registry.ExperimentResult` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.analysis.statistics import Summary, summarize

#: Trial function: (point, trial_seed) -> measured value.
TrialFn = Callable[[Any, int], float]


@dataclass(frozen=True)
class SweepPoint:
    """Results at one parameter point."""

    point: Any
    summary: Summary

    def row(self, fmt: str = "{:.1f}") -> List[str]:
        """A table row: point, mean, max, std."""
        s = self.summary
        return [
            str(self.point),
            fmt.format(s.mean),
            fmt.format(s.maximum),
            fmt.format(s.std),
        ]


class Sweep:
    """Run seeded trials over a sequence of parameter points.

    Parameters
    ----------
    trial:
        ``trial(point, seed) -> float`` — one measurement.
    trials:
        Trials per point.
    seed:
        Master seed; the trial seed for point ``p`` (index ``i``) and trial
        ``t`` is ``seed + 10_000 * i + t``, stable under point insertion at
        the end.
    """

    def __init__(self, trial: TrialFn, trials: int, seed: int = 0):
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.trial = trial
        self.trials = trials
        self.seed = seed

    def run(self, points: Sequence[Any]) -> List[SweepPoint]:
        """Measure every point; returns per-point summaries in order."""
        out: List[SweepPoint] = []
        for i, point in enumerate(points):
            samples = [
                self.trial(point, self.seed + 10_000 * i + t)
                for t in range(self.trials)
            ]
            out.append(SweepPoint(point=point, summary=summarize(samples)))
        return out

    def run_dict(self, points: Sequence[Any]) -> Dict[Any, Summary]:
        """Like :meth:`run` but keyed by point."""
        return {sp.point: sp.summary for sp in self.run(points)}


def table(points: Sequence[SweepPoint], header_label: str = "point") -> Tuple[
    List[str], List[List[str]]
]:
    """``(header, rows)`` for an :class:`ExperimentResult`-style table."""
    header = [header_label, "mean", "max", "std"]
    return header, [sp.row() for sp in points]
