"""Golden traces: frozen seeded runs that pin figure determinism.

Two executions are canonical enough to freeze byte-for-byte:

* **fig04** — the unique legitimate 16-step execution of SSRmin(5, 6)
  from gamma_0(3) (the paper's Figure 4).  Fully deterministic by
  construction (exactly one process is enabled at every step).
* **fig13** — the seeded DES run behind the Figure 13 model-gap
  experiment: SSRmin(5, 6) under the CST transform with seed 13 and
  uniform message delays in [0.5, 1.5].  Deterministic because the DES
  draws every delay from one seeded RNG stream.

:func:`regenerate` rewrites the JSONL corpus under ``tests/corpus/``;
the regression test re-derives both traces from source and compares
record-for-record, so any drift in the simulator, the rule table, the
privilege predicates or the RNG discipline fails loudly with the first
diverging record.  Records hold plain JSON scalars only — Python's
``json`` round-trips floats exactly (shortest-repr), so equality after a
load is equality of the runs.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List

#: Corpus file names, relative to the corpus directory.
FIG04_FILE = "golden_fig04_trace.jsonl"
FIG13_FILE = "golden_fig13_timeline.jsonl"

FIG04_SCHEMA = "repro-golden-fig04/1"
FIG13_SCHEMA = "repro-golden-fig13/1"

#: Simulated duration of the frozen fig13 run (the bench's fast mode).
FIG13_DURATION = 150.0


def fig04_trace_records() -> List[dict]:
    """Per-step records of the Figure 4 execution (states + privileges)."""
    from repro.analysis.tracefmt import annotate_process
    from repro.core.ssrmin import SSRmin
    from repro.experiments.runners_figures import _canonical_execution

    alg = SSRmin(5, 6)
    result = _canonical_execution(alg, x=3, steps=15)
    records: List[dict] = [{
        "schema": FIG04_SCHEMA,
        "algorithm": "SSRmin", "n": alg.n, "K": alg.K,
        "x": 3, "steps": 15,
    }]
    moves = result.execution.moves
    for t, config in enumerate(result.execution.configurations):
        record = {
            "step": t,
            "states": [[config.x(i), config.rts(i), config.tra(i)]
                       for i in range(alg.n)],
            "cells": [annotate_process(alg, config, i)
                      for i in range(alg.n)],
            "privileged": sorted(alg.privileged(config)),
        }
        if t < len(moves):
            move = moves[t][0]
            record["move"] = {"process": move.process, "rule": move.rule}
        records.append(record)
    return records


def fig13_timeline_records(duration: float = FIG13_DURATION) -> List[dict]:
    """Change-points + sampled observations of the seeded fig13 DES run."""
    from repro.core.ssrmin import SSRmin
    from repro.messagepassing.cst import transformed
    from repro.messagepassing.links import UniformDelay
    from repro.messagepassing.modelgap import evaluate_gap

    alg = SSRmin(5, 6)
    net = transformed(alg, seed=13, delay_model=UniformDelay(0.5, 1.5))
    rep = evaluate_gap(net, duration=duration, sample_observations=True,
                       sample_every=duration / 50)
    records: List[dict] = [{
        "schema": FIG13_SCHEMA,
        "algorithm": "SSRmin", "n": alg.n, "K": alg.K,
        "seed": 13, "duration": duration, "delay": [0.5, 1.5],
        "zero_time": rep.zero_time,
        "min_count": rep.min_count, "max_count": rep.max_count,
    }]
    for point in net.timeline.points:
        records.append({
            "time": point.time,
            "holders": list(point.holders),
        })
    for obs in rep.observations:
        records.append({
            "obs_time": obs.time,
            "cached_holders": list(obs.cached_holders),
            "true_holders": list(obs.true_holders),
        })
    return records


#: ``file name -> generator`` for every golden trace.
GOLDEN_TRACES: Dict[str, Callable[[], List[dict]]] = {
    FIG04_FILE: fig04_trace_records,
    FIG13_FILE: fig13_timeline_records,
}


def write_jsonl(path: str, records: List[dict]) -> str:
    """Write one sorted-key JSON record per line; returns ``path``."""
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_jsonl(path: str) -> List[dict]:
    """Load the records of a JSONL file written by :func:`write_jsonl`."""
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def regenerate(directory: str) -> List[str]:
    """(Re)write every golden trace into ``directory``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    return [
        write_jsonl(os.path.join(directory, name), generate())
        for name, generate in sorted(GOLDEN_TRACES.items())
    ]
