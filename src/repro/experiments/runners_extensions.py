"""Beyond-paper extension experiments (ext1-ext5).

These quantify behaviours the paper mentions but does not measure:

* ``ext1`` — single-fault recovery and the ">= 1 token" safety predicate
  (the superstabilization angle of the paper's related/future work);
* ``ext2`` — round complexity next to step complexity;
* ``ext3`` — service fairness and message cost of the transformed system;
* ``ext4`` — large-scale convergence scaling via the vectorized batch
  simulator (thousands of trials, rings up to n=64);
* ``ext5`` — the layered (m, 2m)-critical-section construction: m SSRmin
  layers keep their token band through the message-passing transform,
  unlike the Figure-12 composition of SSTokens.
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.rounds import measure_rounds
from repro.analysis.scaling import fit_power_law
from repro.analysis.service import ServiceMonitor, service_report
from repro.analysis.statistics import summarize
from repro.analysis.superstabilization import study_single_fault
from repro.core.ssrmin import SSRmin
from repro.daemons.central import FixedPriorityDaemon
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.experiments.registry import ExperimentResult
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.simulation.batch import batch_convergence_steps
from repro.simulation.engine import SharedMemorySimulator


def run_ext1(fast: bool = False) -> ExperimentResult:
    """Single-fault recovery study (superstabilization angle)."""
    trials = 20 if fast else 100
    rows: List[List[str]] = []
    ok = True
    for n in ((5, 8) if fast else (5, 8, 12)):
        alg = SSRmin(n, n + 1)
        report = study_single_fault(
            alg, lambda a, s: RandomSubsetDaemon(seed=s), trials=trials,
            seed=11 * n,
        )
        ok = ok and report.max_recovery <= 60 * n * n + 600
        rows.append(
            [str(n), f"{report.mean_recovery:.1f}", str(report.max_recovery),
             f"{report.safety_fraction:.0%}", str(report.worst_burst)]
        )
    return ExperimentResult(
        experiment_id="ext1",
        title="Single-fault recovery (superstabilization study)",
        paper_claim="(beyond paper; related work [4,15] and future work) — "
        "self-stabilization guarantees recovery from a single fault within "
        "the O(n^2) budget; superstabilizing variants would also keep a "
        "safety predicate throughout",
        measured="recoveries comfortably inside the budget; the >= 1-token "
        "predicate held in most (not all) single-fault recoveries — SSRmin "
        "is not superstabilizing, matching its absence of such a claim",
        match=ok,
        header=["n", "mean recovery", "max recovery",
                "safety (>=1 token) held", "worst token burst"],
        rows=rows,
        notes=f"{trials} random (legit config, 1 fault, schedule) trials per n",
    )


def run_ext2(fast: bool = False) -> ExperimentResult:
    """Round complexity next to step complexity."""
    trials = 8 if fast else 30
    rows = []
    ok = True
    ns = (5, 8) if fast else (5, 8, 12, 17)
    mean_rounds = []
    for n in ns:
        alg_steps = []
        alg_rounds = []
        for t in range(trials):
            alg = SSRmin(n, n + 1)
            rng = random.Random(23 * n + t)
            init = alg.random_configuration(rng)
            daemon = (
                FixedPriorityDaemon() if t % 2 else RandomSubsetDaemon(seed=t)
            )
            steps, rounds = measure_rounds(alg, daemon, init)
            alg_steps.append(steps)
            alg_rounds.append(rounds)
            if steps and rounds > steps:
                ok = False
        s, r = summarize(alg_steps), summarize(alg_rounds)
        mean_rounds.append(max(r.mean, 0.5))
        rows.append([str(n), f"{s.mean:.1f}", f"{r.mean:.1f}",
                     f"{r.maximum:.0f}",
                     f"{r.mean / s.mean:.2f}" if s.mean else "-"])
    fit = fit_power_law(ns, mean_rounds)
    ok = ok and fit.exponent <= 2.5
    return ExperimentResult(
        experiment_id="ext2",
        title="Round complexity of SSRmin convergence",
        paper_claim="(beyond paper) — the paper counts steps (O(n^2)); the "
        "literature's round measure factors out daemon starvation",
        measured=f"rounds <= steps always; mean rounds fit {fit}",
        match=ok,
        header=["n", "mean steps", "mean rounds", "max rounds",
                "rounds/steps"],
        rows=rows,
        notes="mixed unfair-central and random-subset daemons",
    )


def run_ext3(fast: bool = False) -> ExperimentResult:
    """Service fairness + message cost of the transformed system."""
    duration = 150.0 if fast else 600.0
    laps = 4 if fast else 12
    rows = []
    ok = True

    # State-reading service fairness over several laps.
    n = 6
    alg = SSRmin(n, n + 1)
    mon = ServiceMonitor(alg)
    sim = SharedMemorySimulator(alg, SynchronousDaemon(), monitors=[mon])
    sim.run(alg.initial_configuration(), max_steps=3 * n * laps, record=False)
    rep = service_report(mon.history, n)
    ok = ok and rep.all_served and rep.jain_index > 0.9
    rows.append(["state-reading", f"jain={rep.jain_index:.3f}",
                 f"max wait {rep.max_gap} steps",
                 f"{laps} laps"])

    # Message-passing: service + message cost per handover.
    net = transformed(alg, seed=31, delay_model=UniformDelay(0.5, 1.5))
    net.run(duration)
    stats = net.message_stats()
    timeline = net.timeline
    handovers = timeline.holder_changes()
    per_handover = stats["sent"] / max(handovers, 1)
    served = {h for pt in timeline.points for h in pt.holders}
    ok = ok and served == set(range(n))
    rows.append(["message-passing",
                 f"all {n} nodes served: {served == set(range(n))}",
                 f"{stats['sent']} msgs, {per_handover:.1f}/holder-change",
                 f"t={duration:.0f}"])
    return ExperimentResult(
        experiment_id="ext3",
        title="Service fairness and message cost",
        paper_claim="(beyond paper) — every process eventually enters the "
        "critical section; CST costs messages per state change plus "
        "periodic refresh",
        measured="perfect fairness over whole laps; bounded message cost "
        "per holder change",
        match=ok,
        header=["model", "fairness", "cost", "scope"],
        rows=rows,
    )


def run_ext4(fast: bool = False) -> ExperimentResult:
    """Large-scale convergence scaling via the vectorized batch simulator."""
    ns = (8, 16, 32) if fast else (8, 16, 32, 48, 64)
    trials = 200 if fast else 1000
    rows = []
    means = []
    ok = True
    from repro.simulation.batch import BatchSSRmin

    band_ok = True
    for n in ns:
        # Convergence sweep ...
        batch = BatchSSRmin(n, n + 1, trials=trials, p=0.5, seed=n)
        batch.randomize(seed=n + 1)
        result = batch.run_until_legitimate(60 * n * n + 600)
        if not result.all_converged:
            ok = False
            continue
        steps = result.steps
        # ... then Theorem 1's band, vectorized, for 3n more steps.
        for _ in range(3 * n):
            counts = batch.privileged_counts()
            if counts.min() < 1 or counts.max() > 2:
                band_ok = False
            batch.step()
        s = summarize(steps.tolist())
        means.append(s.mean)
        rows.append([str(n), str(trials), f"{s.mean:.1f}", f"{s.maximum:.0f}",
                     f"{s.maximum / n / n:.3f}", str(band_ok)])
        ok = ok and s.maximum <= 60 * n * n + 600
    fit = fit_power_law(ns, means)
    ok = ok and fit.exponent <= 2.2 and band_ok
    return ExperimentResult(
        experiment_id="ext4",
        title="Large-scale convergence scaling (vectorized batch simulator)",
        paper_claim="Theorem 2's O(n^2) and Theorem 1's 1..2-token band "
        "should persist at ring sizes far beyond what the scalar engine "
        "can sweep",
        measured=f"mean steps fit {fit} over {trials} trials per n up to "
        f"n={ns[-1]}; post-convergence privileged counts stayed in [1, 2] "
        "for every trial",
        match=ok,
        header=["n", "trials", "mean steps", "max steps", "max/n^2",
                "band [1,2]"],
        rows=rows,
        notes="numpy-vectorized Bernoulli(0.5) daemon; batch engine "
        "equivalence-tested against the scalar engine",
    )


def run_ext5(fast: bool = False) -> ExperimentResult:
    """Layered SSRmin: the (m, 2m) band survives message passing."""
    from repro.algorithms.multi_inclusion import LayeredSSRmin

    duration = 120.0 if fast else 400.0
    rows: List[List[str]] = []
    ok = True
    for m in (1, 2, 3):
        alg = LayeredSSRmin(6, m)
        init = alg.staggered_initial()
        net = transformed(alg, seed=41 + m, initial_states=list(init),
                          delay_model=UniformDelay(0.5, 1.5))

        counts: List[int] = []

        def layer_tokens(network=net, alg=alg):
            total = 0
            for node in network.nodes:
                view = node.view()
                for l, sub in enumerate(alg.layers):
                    proj = alg.layer_config(view, l)
                    if sub.node_holds_token(proj, node.index):
                        total += 1
            return total

        net.observers.append(lambda n_, f=layer_tokens: counts.append(f()))
        net.run(duration)
        lo, hi = min(counts), max(counts)
        band_lo, band_hi = alg.band()
        band_ok = band_lo <= lo and hi <= band_hi
        ok = ok and band_ok
        rows.append([str(m), f"[{band_lo}, {band_hi}]", f"[{lo}, {hi}]",
                     str(band_ok)])
    return ExperimentResult(
        experiment_id="ext5",
        title="Layered SSRmin: (m, 2m)-critical-section under messages",
        paper_claim="(beyond paper; reference [9]'s (l,k)-CS family) — "
        "composing m gap-tolerant rings should keep m..2m layer-tokens even "
        "in the message-passing model, where the SSToken composition of "
        "Figure 12 fails",
        measured="layer-token counts stayed inside the (m, 2m) band at every "
        "observation for every m" if ok else "band violated",
        match=ok,
        header=["layers m", "guaranteed band", "observed", "held"],
        rows=rows,
    )


def run_ext6(fast: bool = False) -> ExperimentResult:
    """Link outage: graceful degradation and guaranteed recovery."""
    outage = 30.0
    post = 100.0 if fast else 150.0
    seeds = range(3) if fast else range(10)
    rows: List[List[str]] = []
    ok = True
    extinct_during = 0
    for seed in seeds:
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=100 + seed,
                          delay_model=UniformDelay(0.5, 1.5),
                          timer_interval=3.0)
        net.run(20.0)
        heal_at = net.queue.now + outage
        edge = (seed % 5, (seed + 1) % 5)
        net.fail_link(*edge, duration=outage)
        net.run(outage + post)
        net.timeline.finish(net.queue.now)
        zero = net.timeline.zero_intervals()
        confined = all(a >= 20.0 and b <= heal_at + 60.0 for a, b in zero)
        recovered = net.timeline.coverage_fraction(
            from_time=heal_at + 60.0) == 1.0
        lo, hi = net.timeline.count_bounds(from_time=heal_at + 60.0)
        bounds = lo >= 1 and hi <= 2
        if zero:
            extinct_during += 1
        ok = ok and confined and recovered and bounds
        rows.append([str(seed), f"{edge}",
                     f"{sum(b - a for a, b in zero):.1f}",
                     str(confined), str(recovered and bounds)])
    return ExperimentResult(
        experiment_id="ext6",
        title="Link outage: degradation confined, recovery guaranteed",
        paper_claim="(beyond paper) — a link outage is a transient fault: it "
        "can create *bad* cache incoherence (Theorem 3's hypothesis breaks, "
        "token extinction becomes possible), but Theorem 4's recovery "
        "guarantee restores the 1..2 band once messages flow again",
        measured=f"extinction occurred in {extinct_during}/{len(list(seeds))} "
        "outages, always confined to the outage+recovery window; every run "
        "re-stabilized with full coverage",
        match=ok,
        header=["seed", "failed edge", "extinct time", "confined",
                "recovered"],
        rows=rows,
        notes=f"{outage:.0f}-unit bidirectional outage of one ring edge, "
        "3-unit refresh timers",
    )


def run_ext7(fast: bool = False) -> ExperimentResult:
    """Heuristic adversary vs. exact game-theoretic worst case."""
    from repro.daemons.adversarial import AdversarialDaemon
    from repro.simulation.convergence import converge
    from repro.verification.model_checker import (
        worst_case_convergence_steps,
        worst_case_witness,
    )
    from repro.verification.transition_system import TransitionSystem

    rows: List[List[str]] = []
    ok = True
    instances = ((3, 4),) if fast else ((3, 4), (3, 5))
    for n, K in instances:
        alg = SSRmin(n, K)
        exact = worst_case_convergence_steps(
            TransitionSystem(alg, "distributed")
        )
        witness = worst_case_witness(TransitionSystem(alg, "distributed"))
        start = witness[0]

        # How close does the greedy lookahead adversary get, from the SAME
        # provably-worst starting configuration?
        best_heuristic = 0
        for seed in range(3 if fast else 10):
            for depth in (1, 2):
                daemon = AdversarialDaemon(alg, depth=depth, seed=seed)
                res = converge(alg, daemon, start)
                if not res.converged:
                    ok = False
                best_heuristic = max(best_heuristic, res.steps)
        # Sanity: nothing beats the exact optimum, and the heuristic should
        # realize a decent fraction of it.
        if best_heuristic > exact:
            ok = False
        ratio = best_heuristic / exact if exact else 1.0
        ok = ok and ratio >= 0.5
        rows.append([f"n={n}, K={K}", str(exact), str(len(witness) - 1),
                     str(best_heuristic), f"{ratio:.0%}"])
    return ExperimentResult(
        experiment_id="ext7",
        title="Heuristic adversary vs exact worst case (model checker)",
        paper_claim="(beyond paper) — Theorem 2 bounds the adversarial "
        "daemon's power; for small instances the exact game value is "
        "computable and upper-bounds every schedule",
        measured="greedy lookahead realizes a large fraction of the exact "
        "worst case and never exceeds it" if ok else "bound violated",
        match=ok,
        header=["instance", "exact worst", "witness length",
                "best heuristic", "fraction"],
        rows=rows,
        notes="heuristic = depth-1/2 greedy lookahead from the provably "
        "worst initial configuration",
    )


def run_ext8(fast: bool = False) -> ExperimentResult:
    """Day/night energy: rotation survives the night, always-on does not."""
    from repro.apps.energy import EnergyModel, diurnal_harvest, integrate_energy
    from repro.messagepassing.timeline import TokenTimeline

    n = 6
    days = 2 if fast else 5
    day_length = 200.0
    duration = days * day_length
    model = EnergyModel(active_power=6.0, idle_power=0.5, harvest_rate=0.0,
                        capacity=400.0, initial_charge=300.0)
    sun = diurnal_harvest(peak=8.0, day_length=day_length)

    # Rotating fleet: SSRmin over message passing.
    alg = SSRmin(n, n + 1)
    net = transformed(alg, seed=55, delay_model=UniformDelay(0.5, 1.5))
    net.run(duration)
    rotating = integrate_energy(model, net.timeline, n, harvest_profile=sun,
                                max_slice=5.0)

    # Always-on baseline: every node records continuously.
    always = TokenTimeline()
    always.record(0.0, list(range(n)))
    always.finish(duration)
    always_on = integrate_energy(model, always, n, harvest_profile=sun,
                                 max_slice=5.0)

    coverage = net.timeline.coverage_fraction()
    ok = (
        rotating.sustainable
        and not always_on.sustainable
        and coverage == 1.0
    )
    rows = [
        ["rotating (SSRmin)", f"{min(rotating.min_charge):.0f}",
         str(rotating.sustainable), f"{coverage:.0%}"],
        ["always-on", f"{min(always_on.min_charge):.0f}",
         str(always_on.sustainable), "100%"],
    ]
    return ExperimentResult(
        experiment_id="ext8",
        title="Day/night energy sustainability (diurnal harvesting)",
        paper_claim="(beyond paper; quantifies the section-1.1 motivation) — "
        "token rotation lets nodes 'charge energy with solar cells'; an "
        "always-on fleet cannot survive the night on the same harvest",
        measured="the rotating fleet kept every battery above empty across "
        f"{days} day/night cycles with 100% coverage; the always-on fleet "
        "browned out" if ok else "expected separation not observed",
        match=ok,
        header=["fleet", "min charge reached", "sustainable", "coverage"],
        rows=rows,
        notes=f"half-sine solar profile, peak 8.0, day length {day_length}; "
        "same per-node hardware in both fleets",
    )


def run_ext9(fast: bool = False) -> ExperimentResult:
    """Wireless medium: service under broadcast collisions (lossy regime)."""
    from repro.messagepassing.cst import coherent_caches, legitimate_initial_states
    from repro.messagepassing.wireless import build_wireless_network

    duration = 200.0 if fast else 600.0
    seeds = range(3) if fast else range(8)
    rows: List[List[str]] = []
    ok = True
    collision_fracs = []
    coverages = []
    for seed in seeds:
        alg = SSRmin(5, 6)
        states = legitimate_initial_states(alg)
        net = build_wireless_network(
            alg, states, seed=300 + seed,
            initial_caches=coherent_caches(list(states), 5),
        )
        net.run(duration)
        net.timeline.finish(net.queue.now)
        stats = net.message_stats()
        receptions = stats["delivered"] + stats["lost"]
        frac = stats["lost"] / receptions if receptions else 0.0
        collision_fracs.append(frac)
        coverage = net.timeline.coverage_fraction()
        coverages.append(coverage)
        _, hi = net.timeline.count_bounds()
        served = {h for pt in net.timeline.points for h in pt.holders}
        run_ok = coverage >= 0.85 and hi <= 2 and served == set(range(5))
        ok = ok and run_ok and stats["lost"] > 0
        rows.append([str(seed), f"{frac:.0%}", f"{coverage:.1%}",
                     str(hi), str(run_ok)])
    mean_frac = sum(collision_fracs) / len(collision_fracs)
    mean_cov = sum(coverages) / len(coverages)
    return ExperimentResult(
        experiment_id="ext9",
        title="Shared wireless medium: service under collisions",
        paper_claim="(beyond paper; its own motivation) — the paper targets "
        "*wireless* sensor networks; collisions are a message-LOSS "
        "mechanism, so Theorem 3's no-loss guarantee is suspended but "
        "Theorem 4's continual-recovery regime applies: near-total coverage "
        "with brief, self-healing extinction windows",
        measured=f"with ~{mean_frac:.0%} of receptions destroyed by "
        f"collisions (half-duplex broadcast radios, no MAC), coverage "
        f"averaged {mean_cov:.1%}, holders never exceeded 2, and the full "
        "ring was served in every run",
        match=ok,
        header=["seed", "collision rate", "coverage", "max holders",
                "contract held"],
        rows=rows,
        notes="change-triggered broadcasts + jittered timers (Algorithm 4's "
        "per-receipt echo would jam the channel); jittered dwell "
        "desynchronizes transmissions",
    )
