"""Run registry experiments in parallel worker processes.

The experiments are independent and CPU-bound, so a process pool gives a
near-linear wall-clock win for the full report.  Workers resolve runners by
*id* through the registry (only strings cross the process boundary, so
nothing fancy needs pickling).

``python -m repro report --parallel N`` uses this path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.experiments.registry import ExperimentResult, list_experiments


def _run_one(args) -> ExperimentResult:
    """Worker entry point (module-level for pickling)."""
    experiment_id, fast = args
    from repro.experiments.registry import run_experiment

    return run_experiment(experiment_id, fast=fast)


def run_experiments_parallel(
    experiment_ids: Optional[Sequence[str]] = None,
    fast: bool = False,
    workers: int = 2,
) -> List[ExperimentResult]:
    """Run experiments across ``workers`` processes; results in input order.

    Parameters
    ----------
    experiment_ids:
        Ids to run (default: the whole registry).
    fast:
        Reduced trial counts.
    workers:
        Process count (>= 1; 1 degenerates to sequential in-process
        execution, useful for debugging).
    """
    ids = list(experiment_ids) if experiment_ids is not None else list_experiments()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return [_run_one((eid, fast)) for eid in ids]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_one, [(eid, fast) for eid in ids]))


def results_by_id(results: Sequence[ExperimentResult]) -> Dict[str, ExperimentResult]:
    """Index results by experiment id."""
    return {r.experiment_id: r for r in results}
