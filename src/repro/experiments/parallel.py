"""Run registry experiments in parallel worker processes.

The experiments are independent and CPU-bound, so a process pool gives a
near-linear wall-clock win for the full report.  Workers resolve runners by
*id* through the registry (only strings cross the process boundary, so
nothing fancy needs pickling).

Observability: workers can run under their own telemetry session — with
``live_progress`` each prints throttled steps/sec + token-census lines to
stderr (see :mod:`repro.telemetry.progress`), and with ``telemetry_dir``
each writes a run manifest (+ optional JSONL trace) next to its result.
The parent additionally invokes ``on_result`` as experiments *complete*
(completion order), which ``repro report`` uses for its progress ticker.

``python -m repro report --parallel N`` uses this path.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.registry import ExperimentResult, list_experiments

#: Parent-side completion callback: (experiment_id, result, done, total).
OnResult = Callable[[str, ExperimentResult, int, int], None]


def _run_one(args) -> ExperimentResult:
    """Worker entry point (module-level for pickling).

    ``args`` is ``(experiment_id, fast)`` or the extended
    ``(experiment_id, fast, live_progress, telemetry_dir, trace,
    use_fastpath)``.
    """
    experiment_id, fast = args[0], args[1]
    live_progress = args[2] if len(args) > 2 else False
    telemetry_dir = args[3] if len(args) > 3 else None
    trace = args[4] if len(args) > 4 else False
    use_fastpath = args[5] if len(args) > 5 else True

    if not use_fastpath:
        # Workers are fresh processes, so flipping the process-wide override
        # here scopes the opt-out to this experiment's entire run.
        from repro.simulation.fastpath import fastpath_override

        with fastpath_override(False):
            return _run_one(
                (experiment_id, fast, live_progress, telemetry_dir, trace))

    subscribers = []
    if live_progress:
        from repro.telemetry.progress import ProgressEmitter

        subscribers.append(ProgressEmitter(label=experiment_id, interval=5.0))

    if telemetry_dir is not None:
        from repro.experiments.registry import run_experiment_instrumented

        result, _ = run_experiment_instrumented(
            experiment_id, fast=fast, outdir=telemetry_dir, trace=trace,
            subscribers=subscribers,
        )
        return result

    from repro.experiments.registry import run_experiment

    if subscribers:
        from repro.telemetry import telemetry_session

        with telemetry_session() as session:
            for fn in subscribers:
                session.subscribe(fn)
            return run_experiment(experiment_id, fast=fast)
    return run_experiment(experiment_id, fast=fast)


def run_experiments_parallel(
    experiment_ids: Optional[Sequence[str]] = None,
    fast: bool = False,
    workers: int = 2,
    live_progress: bool = False,
    telemetry_dir: Optional[str] = None,
    trace: bool = False,
    on_result: Optional[OnResult] = None,
    use_fastpath: bool = True,
) -> List[ExperimentResult]:
    """Run experiments across ``workers`` processes; results in input order.

    Parameters
    ----------
    experiment_ids:
        Ids to run (default: the whole registry).
    fast:
        Reduced trial counts.
    workers:
        Process count (>= 1; 1 degenerates to sequential in-process
        execution, useful for debugging).
    live_progress:
        Emit throttled per-experiment progress lines (stderr) from each
        worker's telemetry session.
    telemetry_dir:
        When set, each experiment writes ``manifest.json`` (and, with
        ``trace``, ``trace.jsonl``) under ``<telemetry_dir>/<id>/``.
    trace:
        Also write JSONL event traces (only meaningful with
        ``telemetry_dir``).
    on_result:
        Parent-side callback fired per completed experiment, in completion
        order.
    use_fastpath:
        ``False`` pins every worker to the naive simulation path (the
        packed-kernel opt-out, e.g. for A/B timing or debugging).
    """
    ids = list(experiment_ids) if experiment_ids is not None else list_experiments()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    payloads = [
        (eid, fast, live_progress, telemetry_dir, trace, use_fastpath)
        for eid in ids
    ]
    if workers == 1:
        results = []
        for k, payload in enumerate(payloads, start=1):
            result = _run_one(payload)
            results.append(result)
            if on_result is not None:
                on_result(payload[0], result, k, len(ids))
        return results
    results_by_index: Dict[int, ExperimentResult] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_run_one, payload): i
            for i, payload in enumerate(payloads)
        }
        pending = set(futures)
        done_count = 0
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                result = future.result()
                results_by_index[index] = result
                done_count += 1
                if on_result is not None:
                    on_result(ids[index], result, done_count, len(ids))
    return [results_by_index[i] for i in range(len(ids))]


def results_by_id(results: Sequence[ExperimentResult]) -> Dict[str, ExperimentResult]:
    """Index results by experiment id."""
    return {r.experiment_id: r for r in results}


#: Parent-side completion callback for generic tasks:
#: (payload_index, result, done, total).
OnTaskResult = Callable[[int, object, int, int], None]


def run_tasks_parallel(
    worker: Callable,
    payloads: Sequence,
    workers: int = 2,
    on_result: Optional[OnTaskResult] = None,
) -> List:
    """Fan arbitrary picklable tasks across a process pool, results in
    input order.

    The generic sibling of :func:`run_experiments_parallel`: ``worker`` must
    be a module-level callable (picklable) taking one payload.  Used by the
    message-passing Monte-Carlo sweep engine and the parallel Theorem 4
    runner, whose units of work are (seed, n, loss) cells rather than
    registry experiment ids.

    ``workers=1`` — or any caller already inside a daemonized pool worker,
    which cannot spawn children — degenerates to sequential in-process
    execution.  ``on_result`` fires in *completion* order with
    ``(payload_index, result, done, total)``.
    """
    import multiprocessing

    payloads = list(payloads)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    total = len(payloads)
    if workers == 1 or multiprocessing.current_process().daemon:
        results = []
        for k, payload in enumerate(payloads):
            result = worker(payload)
            results.append(result)
            if on_result is not None:
                on_result(k, result, k + 1, total)
        return results
    results_by_index: Dict[int, object] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(worker, payload): i
            for i, payload in enumerate(payloads)
        }
        pending = set(futures)
        done_count = 0
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                result = future.result()
                results_by_index[index] = result
                done_count += 1
                if on_result is not None:
                    on_result(index, result, done_count, total)
    return [results_by_index[i] for i in range(total)]
