"""Runners regenerating the paper's figures (1-4, 11-13).

Figures 5-10 are proof illustrations (domination-graph sketches inside
Lemma 8's argument) with no independent experimental content; their
quantitative substance — the domination constants — is exercised by the
``lem5`` runner instead.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.algorithms.composition import IndependentComposition
from repro.algorithms.dijkstra import DijkstraKState
from repro.analysis.tracefmt import annotate_process, format_token_movement
from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration
from repro.daemons.replay import ReplayDaemon
from repro.experiments.registry import ExperimentResult
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import evaluate_gap
from repro.simulation.engine import SharedMemorySimulator


def _canonical_execution(alg: SSRmin, x: int, steps: int):
    """Record the unique legitimate execution from gamma_0(x)."""
    config = alg.initial_configuration(x)
    schedule = []
    probe = config
    for _ in range(steps):
        enabled = alg.enabled_processes(probe)
        assert len(enabled) == 1
        schedule.append(enabled[0])
        probe = alg.step(probe, enabled)
    sim = SharedMemorySimulator(alg, ReplayDaemon(schedule))
    return sim.run(config, max_steps=steps)


def run_fig01(fast: bool = False) -> ExperimentResult:
    """Figure 1: movement of the two tokens on five processes."""
    alg = SSRmin(5, 6)
    steps = 3 * alg.n if fast else 6 * alg.n
    result = _canonical_execution(alg, x=0, steps=steps)
    rows: List[List[str]] = []
    for t, config in enumerate(result.execution.configurations):
        cells = []
        for i in range(alg.n):
            mark = ""
            if alg.holds_primary(config, i):
                mark += "P"
            if alg.holds_secondary(config, i):
                mark += "S"
            cells.append(mark or "-")
        rows.append([str(t + 1)] + cells)
    # The paper's pattern: PS together, then P|S split, repeating clockwise.
    ok = True
    for t, config in enumerate(result.execution.configurations):
        holders = alg.privileged(config)
        if not 1 <= len(holders) <= 2:
            ok = False
        if len(holders) == 2:
            i, j = holders
            if (i + 1) % alg.n != j and (j + 1) % alg.n != i:
                ok = False  # token holders must be ring-adjacent
    return ExperimentResult(
        experiment_id="fig01",
        title="Movement of the two tokens (P/S table, n=5)",
        paper_claim="P and S move like an inchworm: PS together, S one ahead, "
        "P catches up; holders always the same or adjacent processes",
        measured=f"{steps + 1} configurations; holders always 1-2 adjacent processes: {ok}",
        match=ok,
        header=["Step", "P0", "P1", "P2", "P3", "P4"],
        rows=rows,
    )


def run_fig02(fast: bool = False) -> ExperimentResult:
    """Figure 2: the rts/tra handshake between P_i and P_{i+1}."""
    alg = SSRmin(5, 6)
    result = _canonical_execution(alg, x=0, steps=3)
    rows = []
    expected = [("R1", 0), ("R3", 1), ("R2", 0)]
    seen = []
    for t, moves in enumerate(result.execution.moves):
        m = moves[0]
        config = result.execution.configurations[t + 1]
        seen.append((m.rule, m.process))
        rows.append(
            [
                str(t + 1),
                f"P{m.process}",
                m.rule,
                f"{config.rts(0)}.{config.tra(0)}",
                f"{config.rts(1)}.{config.tra(1)}",
            ]
        )
    ok = seen == expected
    return ExperimentResult(
        experiment_id="fig02",
        title="Handshake between P_i and P_{i+1} (rts/tra protocol)",
        paper_claim="one handover = R1 by P_i (rts_i=1), R3 by P_{i+1} "
        "(tra_{i+1}=1), R2 by P_i (counters advance, flags reset)",
        measured=f"observed rule/actor sequence {seen}",
        match=ok,
        header=["Event", "Actor", "Rule", "rts0.tra0", "rts1.tra1"],
        rows=rows,
    )


def run_fig03(fast: bool = False) -> ExperimentResult:
    """Figure 3: possible rules for each <rts_i.tra_i> value.

    Enumerates every combination of neighbour handshake states and both
    values of G_i on a 3-ring, recording which rule (after priority) can
    fire at a process with each own-state.
    """
    alg = SSRmin(3, 4)
    hs_values = [(0, 0), (0, 1), (1, 0), (1, 1)]
    table = {}
    for own in hs_values:
        for g_true in (True, False):
            fired = set()
            for pred_hs, succ_hs in itertools.product(hs_values, repeat=2):
                # Control G_1 = (x_1 != x_0) via the x components on P1.
                x1 = 1 if g_true else 0
                config = Configuration(
                    [
                        (0, *pred_hs),
                        (x1, *own),
                        (0, *succ_hs),
                    ]
                )
                rule = alg.enabled_rule(config, 1)
                if rule is not None:
                    fired.add(rule.number)
            table[(own, g_true)] = fired
    # The paper's Figure 3 content:
    expected = {
        ((0, 0), True): {1},
        ((0, 0), False): {3},
        ((0, 1), True): {1},
        ((0, 1), False): {5},
        ((1, 0), True): {2, 4},
        ((1, 0), False): {3, 5},
        ((1, 1), True): {1},
        ((1, 1), False): {3, 5},
    }
    rows = []
    ok = True
    for own in hs_values:
        for g_true in (True, False):
            got = table[(own, g_true)]
            exp = expected[(own, g_true)]
            if got != exp:
                ok = False
            rows.append(
                [
                    f"{own[0]}.{own[1]}",
                    "true" if g_true else "false",
                    ",".join(map(str, sorted(got))) or "-",
                    ",".join(map(str, sorted(exp))),
                ]
            )
    return ExperimentResult(
        experiment_id="fig03",
        title="Possible rules for each <rts_i.tra_i> value",
        paper_claim="00: R1/R3; 01: R1/R5; 10: R2,R4/R3,R5; 11: R1/R3,R5 "
        "(G true / G false)",
        measured="enumerated over all neighbour states; "
        + ("matches Figure 3 exactly" if ok else "differs from Figure 3"),
        match=ok,
        header=["rts.tra", "G_i", "possible rules", "paper"],
        rows=rows,
    )


#: Figure 4 of the paper, verbatim (n=5, K=6, x starting at 3).
FIG4_EXPECTED = [
    ["3.0.1PS/1", "3.0.0", "3.0.0", "3.0.0", "3.0.0"],
    ["3.1.0PS", "3.0.0/3", "3.0.0", "3.0.0", "3.0.0"],
    ["3.1.0P/2", "3.0.1S", "3.0.0", "3.0.0", "3.0.0"],
    ["4.0.0", "3.0.1PS/1", "3.0.0", "3.0.0", "3.0.0"],
    ["4.0.0", "3.1.0PS", "3.0.0/3", "3.0.0", "3.0.0"],
    ["4.0.0", "3.1.0P/2", "3.0.1S", "3.0.0", "3.0.0"],
    ["4.0.0", "4.0.0", "3.0.1PS/1", "3.0.0", "3.0.0"],
    ["4.0.0", "4.0.0", "3.1.0PS", "3.0.0/3", "3.0.0"],
    ["4.0.0", "4.0.0", "3.1.0P/2", "3.0.1S", "3.0.0"],
    ["4.0.0", "4.0.0", "4.0.0", "3.0.1PS/1", "3.0.0"],
    ["4.0.0", "4.0.0", "4.0.0", "3.1.0PS", "3.0.0/3"],
    ["4.0.0", "4.0.0", "4.0.0", "3.1.0P/2", "3.0.1S"],
    ["4.0.0", "4.0.0", "4.0.0", "4.0.0", "3.0.1PS/1"],
    ["4.0.0/3", "4.0.0", "4.0.0", "4.0.0", "3.1.0PS"],
    ["4.0.1S", "4.0.0", "4.0.0", "4.0.0", "3.1.0P/2"],
    ["4.0.1PS/1", "4.0.0", "4.0.0", "4.0.0", "4.0.0"],
]


def run_fig04(fast: bool = False) -> ExperimentResult:
    """Figure 4: the 16-step execution example with five processes."""
    alg = SSRmin(5, 6)
    result = _canonical_execution(alg, x=3, steps=15)
    rows = []
    ok = True
    for t, config in enumerate(result.execution.configurations):
        cells = [annotate_process(alg, config, i) for i in range(5)]
        if cells != FIG4_EXPECTED[t]:
            ok = False
        rows.append([str(t + 1)] + cells)
    return ExperimentResult(
        experiment_id="fig04",
        title="Execution example of SSRmin with five processes",
        paper_claim="the exact 16-row trace of Figure 4 (x=3, K=6)",
        measured="trace matches Figure 4 cell-for-cell"
        if ok
        else "trace DIFFERS from Figure 4",
        match=ok,
        header=["Step", "P0", "P1", "P2", "P3", "P4"],
        rows=rows,
    )


def run_fig11(fast: bool = False) -> ExperimentResult:
    """Figure 11: token extinction of transformed SSToken."""
    duration = 100.0 if fast else 400.0
    alg = DijkstraKState(5, 6)
    net = transformed(alg, seed=11, delay_model=UniformDelay(0.5, 1.5))
    rep = evaluate_gap(net, duration=duration)
    frac = rep.zero_time / duration
    rows = [
        ["zero-token time", f"{rep.zero_time:.1f}"],
        ["zero-token fraction", f"{frac:.2%}"],
        ["extinction intervals", str(len(rep.zero_intervals))],
        ["min holders", str(rep.min_count)],
        ["max holders", str(rep.max_count)],
    ]
    ok = rep.zero_time > 0 and rep.min_count == 0 and rep.max_count <= 1
    return ExperimentResult(
        experiment_id="fig11",
        title="Token extinction of SSToken in the message-passing model",
        paper_claim="between release by P_i and receipt by P_{i+1} there is "
        "no token in the system (Figure 11)",
        measured=f"token absent {frac:.0%} of the time "
        f"({len(rep.zero_intervals)} extinction intervals)",
        match=ok,
        header=["quantity", "value"],
        rows=rows,
        notes="legitimate + cache-coherent start; uniform delays in [0.5, 1.5]",
    )


def run_fig12(fast: bool = False) -> ExperimentResult:
    """Figure 12: two independent SSToken instances still go tokenless."""
    duration = 150.0 if fast else 600.0
    layers = [DijkstraKState(5, 6), DijkstraKState(5, 6)]
    comp = IndependentComposition(layers)
    # Start the two tokens far apart (positions 0 and 2).
    init = comp.compose_configurations([(0, 0, 0, 0, 0), (1, 1, 0, 0, 0)])
    net = transformed(comp, seed=12, initial_states=list(init),
                      delay_model=UniformDelay(0.5, 1.5))
    rep = evaluate_gap(net, duration=duration)
    frac = rep.zero_time / duration
    rows = [
        ["zero-token time", f"{rep.zero_time:.1f}"],
        ["zero-token fraction", f"{frac:.2%}"],
        ["extinction intervals", str(len(rep.zero_intervals))],
        ["min holders", str(rep.min_count)],
        ["max holders", str(rep.max_count)],
    ]
    ok = rep.zero_time > 0
    return ExperimentResult(
        experiment_id="fig12",
        title="Two independent SSToken instances in the message-passing model",
        paper_claim="if the two token holders move at overlapping times, "
        "there is an instant with no token anywhere (Figure 12)",
        measured=f"despite two tokens, no-token windows cover {frac:.0%} "
        f"of the run ({len(rep.zero_intervals)} intervals)",
        match=ok,
        header=["quantity", "value"],
        rows=rows,
        notes="stands in for the multi-token ring of [3]; see DESIGN.md "
        "substitutions",
    )


def run_fig13(fast: bool = False) -> ExperimentResult:
    """Figure 13: SSRmin's graceful handover in the message-passing model."""
    duration = 150.0 if fast else 600.0
    alg = SSRmin(5, 6)
    net = transformed(alg, seed=13, delay_model=UniformDelay(0.5, 1.5))
    rep = evaluate_gap(net, duration=duration, sample_observations=True,
                       sample_every=duration / 50)
    from repro.messagepassing.modelgap import definition3_holds

    d3 = definition3_holds(rep.observations)
    rows = [
        ["zero-token time", f"{rep.zero_time:.1f}"],
        ["min holders", str(rep.min_count)],
        ["max holders", str(rep.max_count)],
        ["Definition 3 samples consistent", str(d3)],
    ]
    ok = rep.tolerant and rep.min_count >= 1 and rep.max_count <= 2 and d3
    return ExperimentResult(
        experiment_id="fig13",
        title="SSRmin mutual inclusion in the message-passing model",
        paper_claim="at least one and at most two nodes hold a token at any "
        "time (Theorem 3); SSRmin is model gap tolerant",
        measured=f"holders stayed in [{rep.min_count}, {rep.max_count}], "
        f"zero-token time {rep.zero_time:.1f}",
        match=ok,
        header=["quantity", "value"],
        rows=rows,
        notes="legitimate + cache-coherent start; uniform delays in [0.5, 1.5]",
    )
