"""Experiment harness: one runner per paper figure / theorem / ablation.

Every experiment in DESIGN.md's per-experiment index is a function returning
an :class:`~repro.experiments.registry.ExperimentResult` (a titled table plus
the paper-claim-vs-measured verdict).  The registry maps experiment ids
(``fig04``, ``thm2``, ...) to runners; the CLI and the benchmarks call
through it, and :mod:`repro.experiments.report` renders EXPERIMENTS.md.
"""

from repro.experiments.registry import (
    ExperimentResult,
    REGISTRY,
    get_experiment,
    run_experiment,
    list_experiments,
)
from repro.experiments.sweep import Sweep, SweepPoint
from repro.experiments.parallel import run_experiments_parallel

__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "get_experiment",
    "run_experiment",
    "list_experiments",
    "Sweep",
    "SweepPoint",
    "run_experiments_parallel",
]
