"""Experiment registry and result type.

An experiment runner is ``(fast: bool) -> ExperimentResult``; ``fast=True``
shrinks trial counts so the full suite stays interactive (benches use the
full size).  Register with :func:`register`; runners live in the
``repro.experiments.runners_*`` modules, which are imported lazily so
importing the registry stays cheap.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class ExperimentResult:
    """A regenerated paper artifact.

    Attributes
    ----------
    experiment_id:
        Index id (``fig04``, ``thm2``, ...), matching DESIGN.md.
    title:
        Human-readable title.
    paper_claim:
        What the paper states (quantitatively where possible).
    measured:
        What this reproduction measured, as a short sentence.
    match:
        Whether the measured behaviour reproduces the claim's *shape*.
    header, rows:
        The regenerated table (header + stringified rows).
    notes:
        Free-form caveats (substitutions, parameter choices).
    """

    experiment_id: str
    title: str
    paper_claim: str
    measured: str
    match: bool
    header: Sequence[str] = ()
    rows: List[Sequence[str]] = field(default_factory=list)
    notes: str = ""

    def table(self) -> str:
        """Fixed-width text rendering of the rows."""
        if not self.header:
            return ""
        widths = [len(h) for h in self.header]
        for row in self.rows:
            for c, cell in enumerate(row):
                widths[c] = max(widths[c], len(str(cell)))
        lines = [
            "  ".join(str(h).ljust(widths[c]) for c, h in enumerate(self.header)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(str(cell).ljust(widths[c]) for c, cell in enumerate(row))
            )
        return "\n".join(lines)

    def render(self) -> str:
        """Full text report of this experiment."""
        verdict = "REPRODUCED" if self.match else "MISMATCH"
        parts = [
            f"== {self.experiment_id}: {self.title} [{verdict}] ==",
            f"paper:    {self.paper_claim}",
            f"measured: {self.measured}",
        ]
        if self.notes:
            parts.append(f"notes:    {self.notes}")
        t = self.table()
        if t:
            parts.append(t)
        return "\n".join(parts)


#: experiment id -> (module name, function name); modules imported lazily.
_RUNNERS: Dict[str, tuple] = {
    "fig01": ("repro.experiments.runners_figures", "run_fig01"),
    "fig02": ("repro.experiments.runners_figures", "run_fig02"),
    "fig03": ("repro.experiments.runners_figures", "run_fig03"),
    "fig04": ("repro.experiments.runners_figures", "run_fig04"),
    "fig11": ("repro.experiments.runners_figures", "run_fig11"),
    "fig12": ("repro.experiments.runners_figures", "run_fig12"),
    "fig13": ("repro.experiments.runners_figures", "run_fig13"),
    "thm1": ("repro.experiments.runners_theorems", "run_thm1"),
    "thm2": ("repro.experiments.runners_theorems", "run_thm2"),
    "lem1": ("repro.experiments.runners_theorems", "run_lem1"),
    "lem2": ("repro.experiments.runners_theorems", "run_lem2"),
    "lem3": ("repro.experiments.runners_theorems", "run_lem3"),
    "lem4": ("repro.experiments.runners_theorems", "run_lem4"),
    "lem5": ("repro.experiments.runners_theorems", "run_lem5"),
    "thm4": ("repro.experiments.runners_theorems", "run_thm4"),
    "abl1": ("repro.experiments.runners_ablations", "run_abl1"),
    "abl2": ("repro.experiments.runners_ablations", "run_abl2"),
    "abl3": ("repro.experiments.runners_ablations", "run_abl3"),
    "abl4": ("repro.experiments.runners_ablations", "run_abl4"),
    "abl5": ("repro.experiments.runners_ablations", "run_abl5"),
    "app1": ("repro.experiments.runners_ablations", "run_app1"),
    "ext1": ("repro.experiments.runners_extensions", "run_ext1"),
    "ext2": ("repro.experiments.runners_extensions", "run_ext2"),
    "ext3": ("repro.experiments.runners_extensions", "run_ext3"),
    "ext4": ("repro.experiments.runners_extensions", "run_ext4"),
    "ext5": ("repro.experiments.runners_extensions", "run_ext5"),
    "ext6": ("repro.experiments.runners_extensions", "run_ext6"),
    "ext7": ("repro.experiments.runners_extensions", "run_ext7"),
    "ext8": ("repro.experiments.runners_extensions", "run_ext8"),
    "ext9": ("repro.experiments.runners_extensions", "run_ext9"),
}

#: Public view of the registered experiment ids.
REGISTRY = tuple(_RUNNERS)


def list_experiments() -> List[str]:
    """All registered experiment ids, in index order."""
    return list(_RUNNERS)


def get_experiment(experiment_id: str) -> Callable[[bool], ExperimentResult]:
    """Resolve a runner by id; raises :class:`KeyError` for unknown ids."""
    module_name, fn_name = _RUNNERS[experiment_id]
    module = importlib.import_module(module_name)
    return getattr(module, fn_name)


def run_experiment(experiment_id: str, fast: bool = False) -> ExperimentResult:
    """Run one experiment and return its result."""
    return get_experiment(experiment_id)(fast)


def run_experiment_instrumented(
    experiment_id: str,
    fast: bool = False,
    outdir: str = "runs",
    trace: bool = True,
    subscribers: Sequence[Callable] = (),
    extra: Optional[Dict[str, object]] = None,
) -> Tuple[ExperimentResult, str]:
    """Run one experiment under a telemetry session, with artifacts.

    Writes ``<outdir>/<experiment_id>/manifest.json`` (always) and
    ``trace.jsonl`` (when ``trace``) so the result is reproducible from
    its manifest: seeds, daemon descriptors, wall-clock phases, package
    version and a full metrics snapshot are recorded next to the table.

    Parameters
    ----------
    experiment_id:
        Registry id.
    fast:
        Reduced trial counts (recorded in the manifest).
    outdir:
        Base directory for per-experiment run directories.
    trace:
        Whether to also write the JSONL event trace (manifests alone are
        cheap; traces capture every event).
    subscribers:
        Extra event subscribers (e.g. a
        :class:`~repro.telemetry.progress.ProgressEmitter`) attached to
        the session for the duration of the run.
    extra:
        Additional key/value pairs recorded in the manifest's ``extra``
        block alongside the defaults (e.g. the CLI's explicit
        ``mp_engine`` choice).

    Returns
    -------
    (result, run_dir):
        The experiment result and the directory the artifacts landed in.
    """
    from repro.analysis.profiling import Stopwatch
    from repro.telemetry import build_manifest, telemetry_session, write_manifest
    from repro.telemetry.manifest import default_run_dir

    run_dir = default_run_dir(outdir, experiment_id)
    trace_file = "trace.jsonl" if trace else None
    trace_path = os.path.join(run_dir, trace_file) if trace_file else None
    with Stopwatch() as stopwatch:
        with telemetry_session(trace_path=trace_path) as session:
            for fn in subscribers:
                session.subscribe(fn)
            runner = get_experiment(experiment_id)
            stopwatch.split("resolve")
            result = runner(fast)
            stopwatch.split("run")
        manifest = build_manifest(
            session,
            experiment_id=experiment_id,
            command=f"python -m repro run {experiment_id}"
                    + (" --fast" if fast else ""),
            phases=stopwatch.splits,
            trace_file=trace_file,
            extra={"fast": fast, "title": result.title,
                   "match": result.match, **(extra or {})},
        )
    write_manifest(os.path.join(run_dir, "manifest.json"), manifest)
    return result, run_dir
