"""Runners mechanically checking the paper's theorems and lemmas."""

from __future__ import annotations

import random
from typing import List

from repro.analysis.census import census_execution
from repro.analysis.scaling import fit_power_law
from repro.analysis.statistics import summarize
from repro.core.legitimacy import canonical_cycle, legitimate_configurations
from repro.core.ssrmin import SSRmin
from repro.daemons.adversarial import AdversarialDaemon
from repro.daemons.distributed import BernoulliDaemon, RandomSubsetDaemon
from repro.experiments.registry import ExperimentResult
from repro.simulation.convergence import converge, convergence_steps
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.initial import random_legitimate
from repro.simulation.monitors import TokenCountMonitor
from repro.verification.transition_system import TransitionSystem


def run_thm1(fast: bool = False) -> ExperimentResult:
    """Theorem 1: 1 <= privileged <= 2 in legitimate regime; 4K states/process."""
    trials = 20 if fast else 100
    steps = 200 if fast else 1000
    rows: List[List[str]] = []
    ok = True
    for n, K in ((3, 4), (5, 6), (8, 9)):
        alg = SSRmin(n, K)
        lo_all, hi_all = 10 ** 9, 0
        for t in range(trials):
            rng = random.Random(1000 * n + t)
            init = random_legitimate(alg, rng)
            monitor = TokenCountMonitor(alg, low=1, high=2,
                                        only_when_legitimate=False)
            sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=t),
                                        monitors=[monitor])
            sim.run(init, max_steps=steps, record=False)
            lo_all = min(lo_all, monitor.min_count())
            hi_all = max(hi_all, monitor.max_count())
        states = alg.state_count_per_process()
        states_ok = states == 4 * K
        ok = ok and (lo_all >= 1) and (hi_all <= 2) and states_ok
        rows.append([f"n={n}, K={K}", str(lo_all), str(hi_all),
                     f"{states} (=4K: {states_ok})"])
    return ExperimentResult(
        experiment_id="thm1",
        title="Mutual inclusion bounds and state-space size (Theorem 1)",
        paper_claim="privileged processes always in [1, 2] from legitimate "
        "starts; 4K states per process",
        measured="bounds held over all trials" if ok else "bounds violated",
        match=ok,
        header=["instance", "min privileged", "max privileged", "states/process"],
        rows=rows,
        notes=f"{trials} random legitimate starts x {steps} steps per instance, "
        "random-subset (distributed) daemon",
    )


def run_thm2(fast: bool = False) -> ExperimentResult:
    """Theorem 2: O(n^2) convergence under the unfair distributed daemon."""
    ns = (5, 8, 12) if fast else (5, 8, 12, 17, 24, 32)
    trials = 10 if fast else 40
    rows = []
    mean_steps = []
    max_steps_seen = []
    for n in ns:
        samples = convergence_steps(
            algorithm_factory=lambda n=n: SSRmin(n, n + 1),
            daemon_factory=lambda alg, seed: RandomSubsetDaemon(seed=seed),
            trials=trials,
            seed=42 * n,
        )
        s = summarize(samples)
        mean_steps.append(s.mean)
        max_steps_seen.append(s.maximum)
        bound = 3 * n * n + 3 * n * (n - 1) // 2 + 4  # loose composite bound
        rows.append(
            [str(n), f"{s.mean:.1f}", f"{s.maximum:.0f}", f"{s.std:.1f}",
             str(bound), f"{s.maximum / (n * n):.2f}"]
        )
    fit = fit_power_law(ns, mean_steps)
    ok = fit.exponent <= 2.5 and all(
        mx <= 60 * n * n + 600 for mx, n in zip(max_steps_seen, ns)
    )
    return ExperimentResult(
        experiment_id="thm2",
        title="Convergence-time scaling (Theorem 2: O(n^2))",
        paper_claim="worst-case convergence in O(n^2) steps under the unfair "
        "distributed daemon (conference version: O(n^3))",
        measured=f"mean steps fit {fit}; consistent with the O(n^2) bound",
        match=ok,
        header=["n", "mean steps", "max steps", "std", "O(n^2) budget",
                "max/n^2"],
        rows=rows,
        notes=f"{trials} uniformly random initial configurations per n, "
        "random-subset daemon; fit over per-n means",
    )


def run_lem1(fast: bool = False) -> ExperimentResult:
    """Lemma 1 (closure): the canonical 3nK cycle, exactly one enabled."""
    rows = []
    ok = True
    instances = ((3, 4), (5, 6)) if fast else ((3, 4), (5, 6), (7, 9))
    for n, K in instances:
        alg = SSRmin(n, K)
        closed_forms = set(c.states for c in legitimate_configurations(n, K))
        cycle_all = set()
        for x in range(K):
            cyc = canonical_cycle(n, K, x=x)  # asserts 1 enabled per step
            cycle_all.update(c.states for c in cyc[:-1])
        agree = cycle_all == closed_forms
        count_ok = len(closed_forms) == 3 * n * K
        ok = ok and agree and count_ok
        rows.append([f"n={n}, K={K}", str(len(closed_forms)), str(3 * n * K),
                     str(agree)])
    return ExperimentResult(
        experiment_id="lem1",
        title="Closure and the canonical legitimate cycle (Lemma 1)",
        paper_claim="from gamma_0 exactly one process is enabled at each step "
        "and every reachable configuration is legitimate; the cycle visits "
        "all legitimate configurations (3n per x value)",
        measured="cycle enumeration equals Definition 1's closed form"
        if ok else "enumerations disagree",
        match=ok,
        header=["instance", "|Lambda|", "3nK", "cycle == closed form"],
        rows=rows,
    )


def run_lem2(fast: bool = False) -> ExperimentResult:
    """Lemma 2: exactly one primary and one secondary token when legitimate."""
    from repro.core.legitimacy import legitimate_configurations

    instances = ((3, 4), (5, 6)) if fast else ((3, 4), (5, 6), (6, 8))
    rows = []
    ok = True
    for n, K in instances:
        alg = SSRmin(n, K)
        checked = 0
        bad = 0
        for config in legitimate_configurations(n, K):
            checked += 1
            if len(alg.primary_holders(config)) != 1:
                bad += 1
            elif len(alg.secondary_holders(config)) != 1:
                bad += 1
        ok = ok and bad == 0
        rows.append([f"n={n}, K={K}", str(checked), str(bad)])
    return ExperimentResult(
        experiment_id="lem2",
        title="Exactly one primary and one secondary token (Lemma 2)",
        paper_claim="in every legitimate configuration the number of primary "
        "tokens is exactly one and the number of secondary tokens is exactly "
        "one",
        measured="verified over every legitimate configuration" if ok
        else "violations found",
        match=ok,
        header=["instance", "legitimate configs checked", "violations"],
        rows=rows,
    )


def run_lem3(fast: bool = False) -> ExperimentResult:
    """Lemma 3: some process satisfies G_i in EVERY configuration."""
    rows = []
    ok = True
    # Exhaustive on the x-projection: G depends only on x, so checking all
    # x-vectors covers all configurations.
    import itertools

    instances = ((3, 4), (4, 5)) if fast else ((3, 4), (4, 5), (5, 6))
    for n, K in instances:
        alg = SSRmin(n, K)
        checked = 0
        failures = 0
        for xs in itertools.product(range(K), repeat=n):
            checked += 1
            config = [(x, 0, 0) for x in xs]
            if not any(alg.G(config, i) for i in range(n)):
                failures += 1
        ok = ok and failures == 0
        rows.append([f"n={n}, K={K}", str(checked), str(failures)])
    return ExperimentResult(
        experiment_id="lem3",
        title="A primary token always exists (Lemma 3)",
        paper_claim="for any configuration there exists P_i with G_i true "
        "(x_0 = x_{n-1} or some x_i != x_{i-1})",
        measured="verified over every x-vector" if ok else "failures found",
        match=ok,
        header=["instance", "x-vectors checked", "G-less configurations"],
        rows=rows,
        notes="G depends only on the x components, so the x-projection "
        "sweep is exhaustive over all configurations",
    )


def run_lem4(fast: bool = False) -> ExperimentResult:
    """Lemma 4 (no deadlock), exhaustively for small instances."""
    instances = ((3, 4),) if fast else ((3, 4), (3, 5), (4, 5))
    rows = []
    ok = True
    for n, K in instances:
        alg = SSRmin(n, K)
        deadlocks = 0
        total = 0
        for config in alg.configuration_space():
            total += 1
            if not alg.enabled_processes(config):
                deadlocks += 1
        ok = ok and deadlocks == 0
        rows.append([f"n={n}, K={K}", str(total), str(deadlocks)])
    return ExperimentResult(
        experiment_id="lem4",
        title="No deadlock (Lemma 4), exhaustive",
        paper_claim="every configuration has at least one enabled process",
        measured="no deadlocked configuration exists" if ok
        else "deadlocks found",
        match=ok,
        header=["instance", "configurations checked", "deadlocks"],
        rows=rows,
    )


def run_lem5(fast: bool = False) -> ExperimentResult:
    """Lemma 5: at most 3n consecutive steps without Rules 2/4."""
    trials = 10 if fast else 50
    rows = []
    ok = True
    for n in ((4, 6) if fast else (4, 6, 9, 12)):
        alg = SSRmin(n, n + 1)
        worst = 0
        ratios = []
        for t in range(trials):
            rng = random.Random(31 * n + t)
            init = alg.random_configuration(rng)
            daemon = (
                AdversarialDaemon(alg, depth=1, seed=t)
                if t % 2 == 0
                else RandomSubsetDaemon(seed=t)
            )
            sim = SharedMemorySimulator(alg, daemon)
            res = sim.run(init, max_steps=40 * n * n,
                          stop_when=alg.is_legitimate)
            census = census_execution(res.execution, n)
            worst = max(worst, census.longest_w135_run)
            if census.w24:
                ratios.append(census.domination_ratio)
        ok = ok and worst <= 3 * n
        rows.append([str(n), str(worst), str(3 * n),
                     f"{max(ratios):.2f}" if ratios else "-"])
    return ExperimentResult(
        experiment_id="lem5",
        title="Bounded rule-1/3/5 runs (Lemma 5) and domination (Lemma 8)",
        paper_claim="any execution fragment without Rules 2/4 has length "
        "<= 3n; |W135| is a constant factor (L=9) of |W24|",
        measured="longest observed W135 run within 3n everywhere" if ok
        else "3n bound violated",
        match=ok,
        header=["n", "longest W135 run", "3n bound", "max |W135|/|W24|"],
        rows=rows,
        notes="adversarial (depth-1 lookahead) and random daemons, "
        "random initial configurations",
    )


def run_thm4(fast: bool = False) -> ExperimentResult:
    """Theorem 4: chaos + message loss -> stabilization -> 1..2 tokens forever.

    The seed grid fans across worker processes via the Monte-Carlo sweep
    engine (:mod:`repro.messagepassing.fastpath.sweep`); each cell derives
    its RNG stream from its own seed value alone, so the rows are
    bit-identical to the historical serial loop at any worker count.  When
    an ambient telemetry session is active the sweep stays in-process —
    worker processes could not publish their network events into the
    parent's bus, and run manifests must keep their full event streams.
    """
    import os

    from repro.messagepassing.fastpath.sweep import run_loss_sweep
    from repro.telemetry.session import current_session

    seeds = range(3) if fast else range(10)
    post = 100.0 if fast else 300.0
    loss_rates = (0.0, 0.1, 0.3)
    workers = 1 if current_session() is not None else max(
        1, min(len(loss_rates) * len(seeds), os.cpu_count() or 1)
    )
    cells = run_loss_sweep(
        "ssrmin",
        n_values=(5,),
        loss_rates=loss_rates,
        seeds=[s + 100 for s in seeds],
        workers=workers,
        slice_duration=5.0,
        max_time=20_000.0,
        gap_duration=post,
    )
    rows = []
    ok = True
    per_loss = len(list(seeds))
    for li, loss in enumerate(loss_rates):
        group = cells[li * per_loss:(li + 1) * per_loss]
        times = [c.stabilized_at for c in group]
        bounds_ok = all(
            c.min_tokens >= 1 and c.max_tokens <= 2 and c.zero_time == 0.0
            for c in group
        )
        s = summarize(times)
        ok = ok and bounds_ok
        rows.append([f"{loss:.0%}", f"{s.mean:.1f}", f"{s.maximum:.1f}",
                     str(bounds_ok)])
    return ExperimentResult(
        experiment_id="thm4",
        title="Stabilization from arbitrary states and caches under loss "
        "(Theorem 4 / Lemma 9)",
        paper_claim="from arbitrary configuration and caches, with uniform "
        "random message loss, the system reaches legitimate + coherent and "
        "then 1 <= token holders <= 2 forever",
        measured="all runs stabilized; post-stabilization bounds held" if ok
        else "a run violated the post-stabilization bounds",
        match=ok,
        header=["loss rate", "mean stabilize time", "max stabilize time",
                "post bounds [1,2] held"],
        rows=rows,
        notes="random initial states AND random cache contents; randomized "
        "delays/dwell per the transformation literature; seeds fanned "
        "across worker processes (deterministic per-seed RNG derivation)",
    )
