"""repro — reproduction of Kakugawa, Kamei & Katayama's SSRmin.

A self-stabilizing token circulation with **graceful handover** on
bidirectional ring networks (IPDPSW/APDCM 2021; IJNC 12(1), 2022).

Public API highlights
---------------------
* :class:`repro.core.SSRmin` — the mutual-inclusion algorithm (Algorithm 3).
* :class:`repro.algorithms.DijkstraKState` — Dijkstra's K-state token ring
  ``SSToken`` (Algorithm 1), the substrate.
* :mod:`repro.daemons` — central / distributed / adversarial schedulers.
* :class:`repro.simulation.SharedMemorySimulator` — the state-reading,
  composite-atomicity execution model.
* :mod:`repro.messagepassing` — discrete-event message-passing execution via
  the cached sensornet transform (CST, Algorithm 4), with model-gap analysis.
* :mod:`repro.verification` — exhaustive model checking of closure,
  convergence and deadlock-freedom for small instances.
* :mod:`repro.experiments` — runners regenerating every figure and
  theorem-level claim in the paper.

Quickstart
----------
>>> from repro import SSRmin, SharedMemorySimulator
>>> from repro.daemons import RandomSubsetDaemon
>>> alg = SSRmin(n=5)
>>> sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=1))
>>> result = sim.run(alg.initial_configuration(), max_steps=15)
>>> alg.is_legitimate(result.final_config)
True
"""

from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration, SSRminState
from repro.algorithms.dijkstra import DijkstraKState
from repro.simulation.engine import SharedMemorySimulator

__version__ = "1.0.0"

__all__ = [
    "SSRmin",
    "Configuration",
    "SSRminState",
    "DijkstraKState",
    "SharedMemorySimulator",
    "__version__",
]
