"""Ring network topologies (paper section 2.1).

The paper's system model is a set of processes ``P_0 .. P_{n-1}`` arranged on
a ring.  :class:`RingTopology` captures both the *bidirectional* ring used by
SSRmin (each process reads both neighbours) and the *unidirectional* ring used
by Dijkstra's K-state token ring (each process reads only its predecessor).

:class:`GeneralTopology` is the arbitrary-graph variant used by the cached
sensornet transform (CST) in :mod:`repro.messagepassing`, which is defined for
any neighbourhood structure even though this reproduction exercises it on
rings.
"""

from repro.ring.topology import GeneralTopology, RingTopology
from repro.ring.addressing import pred, succ

__all__ = ["RingTopology", "GeneralTopology", "pred", "succ"]
