"""Topology objects describing who can read (or message) whom.

Two concrete classes are provided:

* :class:`RingTopology` — the paper's network model (section 2.1): ``n``
  processes on a ring, either *bidirectional* (SSRmin reads both neighbours)
  or *unidirectional* (Dijkstra's token ring reads only the predecessor).
* :class:`GeneralTopology` — an arbitrary undirected graph, used by the CST
  message-passing transform which is defined for any neighbourhood structure.

Topologies are immutable value objects: equality and hashing follow their
defining parameters so they can key caches and parametrize experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.ring.addressing import pred, succ


@dataclass(frozen=True)
class RingTopology:
    """A ring of ``n`` processes ``P_0 .. P_{n-1}``.

    Parameters
    ----------
    n:
        Number of processes; the paper requires ``n >= 3`` for SSRmin but
        rings of size >= 2 are representable (Dijkstra's ring works for
        ``n >= 2``).
    bidirectional:
        If ``True`` each process can read both ``P_{i-1}`` and ``P_{i+1}``
        (SSRmin's model); if ``False`` only the predecessor ``P_{i-1}`` is
        readable (Dijkstra's model).
    """

    n: int
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"a ring needs at least 2 processes, got n={self.n}")

    # -- neighbour queries -------------------------------------------------
    def successor(self, i: int) -> int:
        """Successor index ``(i+1) mod n``."""
        self._check_index(i)
        return succ(i, self.n)

    def predecessor(self, i: int) -> int:
        """Predecessor index ``(i-1) mod n``."""
        self._check_index(i)
        return pred(i, self.n)

    def readable_neighbors(self, i: int) -> Tuple[int, ...]:
        """Processes whose local state ``P_i`` may read.

        On a bidirectional ring this is ``(pred, succ)``; on a unidirectional
        ring only ``(pred,)`` — matching the guard signatures
        ``G_i(q_i, q_{i-1}, q_{i+1})`` vs ``G_i(q_i, q_{i-1})`` in section 2.1.
        """
        self._check_index(i)
        if self.bidirectional:
            return (pred(i, self.n), succ(i, self.n))
        return (pred(i, self.n),)

    def message_neighbors(self, i: int) -> Tuple[int, ...]:
        """Processes ``P_i`` exchanges messages with under the CST transform.

        CST broadcasts local state to every process that might read it, so on
        a bidirectional ring this is both neighbours; on a unidirectional ring
        state only needs to flow forward (``P_i -> P_{i+1}``), but replies are
        unnecessary — the *recipients* of ``P_i``'s state are returned.
        """
        self._check_index(i)
        if self.bidirectional:
            return (pred(i, self.n), succ(i, self.n))
        return (succ(i, self.n),)

    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Undirected edge list ``((i, i+1 mod n), ...)`` of the ring."""
        return tuple((i, succ(i, self.n)) for i in range(self.n))

    def processes(self) -> range:
        """Iterable of process indices ``0 .. n-1``."""
        return range(self.n)

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise IndexError(f"process index {i} out of range for n={self.n}")


@dataclass(frozen=True)
class GeneralTopology:
    """An arbitrary undirected graph topology for the CST transform.

    Parameters
    ----------
    n:
        Number of nodes, labelled ``0 .. n-1``.
    edge_set:
        Frozen set of undirected edges, each stored as a sorted pair.
        Use :meth:`from_edges` to build one from any iterable of pairs.
    """

    n: int
    edge_set: FrozenSet[Tuple[int, int]]
    _adj: Dict[int, Tuple[int, ...]] = field(
        default=None, compare=False, hash=False, repr=False
    )  # type: ignore[assignment]

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]]) -> "GeneralTopology":
        """Build a topology from an iterable of undirected edges."""
        canon = set()
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop ({a},{b}) not allowed")
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"edge ({a},{b}) out of range for n={n}")
            canon.add((min(a, b), max(a, b)))
        return cls(n=n, edge_set=frozenset(canon))

    @classmethod
    def ring(cls, n: int) -> "GeneralTopology":
        """The ring graph — convenience for feeding CST a ring."""
        return cls.from_edges(n, [(i, (i + 1) % n) for i in range(n)])

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"topology needs at least 1 node, got n={self.n}")
        adj: Dict[int, list] = {i: [] for i in range(self.n)}
        for a, b in sorted(self.edge_set):
            adj[a].append(b)
            adj[b].append(a)
        object.__setattr__(
            self, "_adj", {i: tuple(sorted(v)) for i, v in adj.items()}
        )

    def neighbors(self, i: int) -> Tuple[int, ...]:
        """Sorted tuple of nodes adjacent to ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(f"node index {i} out of range for n={self.n}")
        return self._adj[i]

    def degree(self, i: int) -> int:
        """Number of neighbours of node ``i``."""
        return len(self.neighbors(i))

    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted undirected edge list."""
        return tuple(sorted(self.edge_set))
