"""Modular process-index arithmetic on rings.

The paper abbreviates ``P_{i+1 mod n}`` as ``P_{i+1}``; these helpers make the
wrap-around explicit and keep index arithmetic out of algorithm code.
"""

from __future__ import annotations


def succ(i: int, n: int) -> int:
    """Index of the successor of process ``P_i`` on a ring of ``n`` processes.

    Parameters
    ----------
    i:
        Process index, ``0 <= i < n``.
    n:
        Ring size, ``n >= 1``.

    Returns
    -------
    int
        ``(i + 1) mod n``.
    """
    if n <= 0:
        raise ValueError(f"ring size must be positive, got {n}")
    return (i + 1) % n


def pred(i: int, n: int) -> int:
    """Index of the predecessor of process ``P_i`` on a ring of ``n`` processes.

    Returns ``(i - 1) mod n``; see :func:`succ` for parameter constraints.
    """
    if n <= 0:
        raise ValueError(f"ring size must be positive, got {n}")
    return (i - 1) % n


def ring_distance(i: int, j: int, n: int) -> int:
    """Hop count from ``P_i`` to ``P_j`` following successor links.

    This is the *directed* distance in the token-circulation direction, so
    ``ring_distance(i, j, n) + ring_distance(j, i, n) == n`` whenever
    ``i != j``.
    """
    if n <= 0:
        raise ValueError(f"ring size must be positive, got {n}")
    return (j - i) % n
