"""Core of the reproduction: the SSRmin mutual-inclusion algorithm.

This subpackage implements the paper's primary contribution:

* :mod:`repro.core.state` — local states ``x_i.rts_i.tra_i`` and ring
  configurations (Definition 1's notation).
* :mod:`repro.core.rules` — the guarded-command rule abstraction with the
  strict rule-priority semantics of Algorithm 3.
* :mod:`repro.core.ssrmin` — Algorithm 3 itself (`SSRmin`).
* :mod:`repro.core.tokens` — the primary/secondary token *predicates*
  (the paper stresses tokens are predicates on local variables, not data
  objects).
* :mod:`repro.core.legitimacy` — Definition 1's legitimate configurations,
  both as a closed-form membership test and as the canonical 3nK-step cycle
  from the closure proof (Lemma 1).
* :mod:`repro.core.abstract` — the abstract-action model (alpha_1, beta,
  alpha_2) of section 3.1, used as a cross-validation reference.
"""

from repro.core.state import SSRminState, Configuration
from repro.core.ssrmin import SSRmin
from repro.core.tokens import (
    holds_primary,
    holds_secondary,
    token_holders,
    primary_holders,
    secondary_holders,
)
from repro.core.legitimacy import (
    is_legitimate,
    canonical_cycle,
    legitimate_configurations,
)

__all__ = [
    "SSRminState",
    "Configuration",
    "SSRmin",
    "holds_primary",
    "holds_secondary",
    "token_holders",
    "primary_holders",
    "secondary_holders",
    "is_legitimate",
    "canonical_cycle",
    "legitimate_configurations",
]
