"""Guarded-command rules with strict priority (paper section 2.1 / Algorithm 3).

An algorithm is a finite list of guarded commands ``if <guard> then <command>``
per process.  SSRmin additionally imposes a *priority*: "a rule with a smaller
number has priority over rules with a larger rule number", so each process is
enabled by **at most one** rule — the lowest-numbered rule whose guard holds.

:class:`Rule` packages a guard and a command operating on
``(config, i) -> bool`` and ``(config, i) -> local state``; :class:`RuleSet`
resolves priority.  Guards may read only ``q_i``, ``q_{i-1}`` and ``q_{i+1}``
(enforced by construction: concrete algorithms only access those indices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Optional, Sequence, Tuple, TypeVar

S = TypeVar("S")  # local-state type
C = TypeVar("C")  # configuration type (a sequence of local states)

#: Guard signature: does this rule's guard hold for process ``i`` in ``config``?
GuardFn = Callable[[C, int], bool]
#: Command signature: the new local state of process ``i`` computed from ``config``.
CommandFn = Callable[[C, int], S]


@dataclass(frozen=True)
class Rule(Generic[C, S]):
    """One guarded command.

    Attributes
    ----------
    name:
        Human-readable rule name (e.g. ``"R1"`` or ``"D2"``), used in traces
        and the Figure-4 style renderings.
    number:
        Priority number; smaller wins.  Numbers must be unique in a
        :class:`RuleSet`.
    guard:
        ``guard(config, i) -> bool``.
    command:
        ``command(config, i) -> new local state`` — only evaluated when the
        guard holds.
    description:
        Paper-facing description (e.g. "send the primary token").
    """

    name: str
    number: int
    guard: GuardFn
    command: CommandFn
    description: str = ""

    def enabled(self, config: C, i: int) -> bool:
        """Whether this rule's guard holds at process ``i``."""
        return self.guard(config, i)

    def execute(self, config: C, i: int) -> S:
        """The command result; caller is responsible for checking the guard."""
        return self.command(config, i)


class RuleSet(Generic[C, S]):
    """An ordered collection of rules with strict priority resolution."""

    def __init__(self, rules: Sequence[Rule[C, S]]):
        if not rules:
            raise ValueError("a rule set needs at least one rule")
        numbers = [r.number for r in rules]
        if len(set(numbers)) != len(numbers):
            raise ValueError(f"duplicate rule numbers in {numbers}")
        self._rules: Tuple[Rule[C, S], ...] = tuple(
            sorted(rules, key=lambda r: r.number)
        )

    @property
    def rules(self) -> Tuple[Rule[C, S], ...]:
        """Rules in priority order (lowest number first)."""
        return self._rules

    def enabled_rule(self, config: C, i: int) -> Optional[Rule[C, S]]:
        """The unique highest-priority rule enabled at ``i``, or ``None``.

        This implements the paper's "if the guard of a rule is true, rules
        with lower priority are ignored" semantics.
        """
        for rule in self._rules:
            if rule.guard(config, i):
                return rule
        return None

    def all_enabled_guards(self, config: C, i: int) -> Tuple[Rule[C, S], ...]:
        """Every rule whose *raw guard* holds at ``i``, ignoring priority.

        Used by the Figure-3 reproduction, which tabulates which guards can be
        simultaneously true for each ``<rts, tra>`` value.
        """
        return tuple(r for r in self._rules if r.guard(config, i))

    def by_name(self, name: str) -> Rule[C, S]:
        """Look a rule up by its name; raises :class:`KeyError` if absent."""
        for r in self._rules:
            if r.name == name:
                return r
        raise KeyError(name)
