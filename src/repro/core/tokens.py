"""Token predicates for SSRmin, standalone (paper Algorithm 3, lines 36-41).

The paper stresses that a token is *not* a data object: "a process decides
whether it holds a token or not by evaluating some predicate ... on the values
of local variables of itself and its neighbors."  These module-level functions
evaluate those predicates on any sequence of ``(x, rts, tra)`` triples,
without needing an :class:`repro.core.ssrmin.SSRmin` instance — which is what
the message-passing layer needs, because there each *node* evaluates the
predicate against its own cached view of its neighbours.

``holds_primary`` requires the predecessor's state; ``holds_secondary``
requires the successor's.  The per-node-view variants take explicit neighbour
states instead of a global configuration.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.state import StateTuple


def primary_condition(x_i: int, x_pred: int, is_bottom: bool) -> bool:
    """Primary-token condition ``G_i`` from explicitly supplied values.

    ``x_i == x_pred`` for the bottom process, ``x_i != x_pred`` otherwise.
    """
    if is_bottom:
        return x_i == x_pred
    return x_i != x_pred


def secondary_condition(
    own: Tuple[int, int], successor: Tuple[int, int]
) -> bool:
    """Secondary-token condition from explicit ``(rts, tra)`` pairs.

    ``tra_i = 1`` or ``(rts_i = 1 and rts_{i+1} = 0 and tra_{i+1} = 0)``.

    The second disjunct is what gives SSRmin its *model gap tolerance*: the
    sender keeps the secondary token (from its own point of view) until it
    observes — possibly with delay — that the receiver picked it up (section
    3.1's discussion of why ``tra_i = 1`` alone would not suffice).
    """
    rts_i, tra_i = own
    rts_s, tra_s = successor
    return tra_i == 1 or (rts_i == 1 and rts_s == 0 and tra_s == 0)


def weak_secondary_condition(
    own: Tuple[int, int], successor: Tuple[int, int]
) -> bool:
    """The *rejected* secondary-token condition ``tra_i = 1`` alone.

    Section 3.1 discusses this weaker predicate: it is correct in the
    state-reading model but loses the token during message-passing transient
    periods.  Exposed for the abl1 ablation bench, which demonstrates the
    extinction the paper predicts.
    """
    return own[1] == 1


def holds_primary(config: Sequence[StateTuple], i: int) -> bool:
    """Whether ``P_i`` holds the primary token in ``config`` (global view)."""
    n = len(config)
    return primary_condition(config[i][0], config[(i - 1) % n][0], is_bottom=(i == 0))


def holds_secondary(config: Sequence[StateTuple], i: int) -> bool:
    """Whether ``P_i`` holds the secondary token in ``config`` (global view)."""
    n = len(config)
    _, rts, tra = config[i]
    _, rts_s, tra_s = config[(i + 1) % n]
    return secondary_condition((rts, tra), (rts_s, tra_s))


def token_holders(config: Sequence[StateTuple]) -> Tuple[int, ...]:
    """Processes holding the primary or the secondary token."""
    n = len(config)
    return tuple(
        i for i in range(n) if holds_primary(config, i) or holds_secondary(config, i)
    )


def primary_holders(config: Sequence[StateTuple]) -> Tuple[int, ...]:
    """Processes holding the primary token."""
    return tuple(i for i in range(len(config)) if holds_primary(config, i))


def secondary_holders(config: Sequence[StateTuple]) -> Tuple[int, ...]:
    """Processes holding the secondary token."""
    return tuple(i for i in range(len(config)) if holds_secondary(config, i))


def token_count(config: Sequence[StateTuple]) -> int:
    """Number of *privileged processes* (holding >= 1 token).

    Theorem 1 guarantees this is 1 or 2 in every legitimate configuration.
    """
    return len(token_holders(config))
