"""SSRmin — the paper's self-stabilizing mutual-inclusion algorithm (Algorithm 3).

Two tokens circulate a bidirectional ring "like an inchworm":

* the **primary token** is Dijkstra's K-state token — process ``P_i`` holds it
  iff the Dijkstra guard ``G_i`` is true;
* the **secondary token** is the paper's extension, held iff
  ``tra_i == 1  or  (rts_i == 1 and rts_{i+1} == 0 and tra_{i+1} == 0)``.

Movement is controlled by five prioritized rules (smaller number wins, so
each process is enabled by at most one rule):

====  ===========  =========================================================
Rule  When          Effect
====  ===========  =========================================================
R1    ``G_i`` and own ``<rts.tra>`` in {00, 01, 11}
                    ready to send the secondary token: ``<rts.tra> <- 10``
R2    ``G_i``, own ``10``, successor ``01``
                    send the primary token: ``<rts.tra> <- 00``; ``C_i``
R3    ``not G_i``, predecessor ``10``, own in {00, 10, 11}
                    receive the secondary token: ``<rts.tra> <- 01``
R4    ``G_i`` and ``<pred, own, succ> != <00, 10, 00>``
                    fix inconsistent local state (G true): ``00``; ``C_i``
R5    ``not G_i``, ``<pred, own> != <10, 01>``, own ``!= 00``
                    fix inconsistent local state (G false): ``00``
====  ===========  =========================================================

Rules R1-R3 are the legitimate-regime handshake (abstract actions
alpha_1 / alpha_2 / beta of section 3.1); R4-R5 exist solely for convergence.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.algorithms.dijkstra import dijkstra_command, dijkstra_guard
from repro.core.rules import Rule, RuleSet
from repro.core.state import Configuration, StateTuple
from repro.ring.topology import RingTopology


class SSRmin(RingAlgorithm[Configuration, StateTuple]):
    """The SSRmin mutual-inclusion algorithm on a bidirectional ring.

    Parameters
    ----------
    n:
        Number of processes; the paper requires ``n >= 3``.
    K:
        Dijkstra counter domain size, must satisfy ``K > n`` (defaults to
        ``n + 1``).  ``allow_small_k=True`` relaxes the check for the
        K-sensitivity ablation.

    Notes
    -----
    Configurations are :class:`repro.core.state.Configuration` objects (or any
    sequence of ``(x, rts, tra)`` triples — guards only index into them).
    Local-state updates follow composite atomicity via the base class's
    :meth:`step`.
    """

    def __init__(self, n: int, K: int | None = None, *, allow_small_k: bool = False):
        if n < 3:
            raise ValueError(f"SSRmin requires n >= 3 (paper Algorithm 3), got {n}")
        K = n + 1 if K is None else K
        if K <= n and not allow_small_k:
            raise ValueError(
                f"K must exceed n (got K={K}, n={n}); "
                "pass allow_small_k=True for the ablation study"
            )
        if K < 2:
            raise ValueError(f"K must be at least 2, got {K}")
        self.K = K
        self.ring = RingTopology(n, bidirectional=True)
        self.rule_set = RuleSet(
            [
                Rule("R1", 1, self._guard_r1, self._cmd_r1,
                     "ready to send the secondary token"),
                Rule("R2", 2, self._guard_r2, self._cmd_r2,
                     "send the primary token"),
                Rule("R3", 3, self._guard_r3, self._cmd_r3,
                     "receive the secondary token"),
                Rule("R4", 4, self._guard_r4, self._cmd_r4,
                     "fix inconsistent local state when G_i is true"),
                Rule("R5", 5, self._guard_r5, self._cmd_r5,
                     "fix inconsistent local state when G_i is false"),
            ]
        )

    # -- Dijkstra macros G_i / C_i -------------------------------------------
    def G(self, config: Sequence[StateTuple], i: int) -> bool:
        """The Dijkstra guard macro ``G_i`` (Algorithm 2) on the x components."""
        x_i = config[i][0]
        x_pred = config[(i - 1) % self.n][0]
        return dijkstra_guard(x_i, x_pred, is_bottom=(i == 0))

    def C(self, config: Sequence[StateTuple], i: int) -> int:
        """The Dijkstra command macro ``C_i`` — the new ``x_i`` value."""
        x_pred = config[(i - 1) % self.n][0]
        return dijkstra_command(x_pred, is_bottom=(i == 0), K=self.K)

    # -- rule guards (verbatim from Algorithm 3; priority handled by RuleSet) --
    def _guard_r1(self, config: Sequence[StateTuple], i: int) -> bool:
        _, rts, tra = config[i]
        return self.G(config, i) and (rts, tra) in ((0, 0), (0, 1), (1, 1))

    def _cmd_r1(self, config: Sequence[StateTuple], i: int) -> StateTuple:
        x = config[i][0]
        return (x, 1, 0)

    def _guard_r2(self, config: Sequence[StateTuple], i: int) -> bool:
        _, rts, tra = config[i]
        _, rts_s, tra_s = config[(i + 1) % self.n]
        return (
            self.G(config, i)
            and (rts, tra) == (1, 0)
            and (rts_s, tra_s) == (0, 1)
        )

    def _cmd_r2(self, config: Sequence[StateTuple], i: int) -> StateTuple:
        return (self.C(config, i), 0, 0)

    def _guard_r3(self, config: Sequence[StateTuple], i: int) -> bool:
        _, rts, tra = config[i]
        _, rts_p, tra_p = config[(i - 1) % self.n]
        return (
            not self.G(config, i)
            and (rts_p, tra_p) == (1, 0)
            and (rts, tra) in ((0, 0), (1, 0), (1, 1))
        )

    def _cmd_r3(self, config: Sequence[StateTuple], i: int) -> StateTuple:
        x = config[i][0]
        return (x, 0, 1)

    def _guard_r4(self, config: Sequence[StateTuple], i: int) -> bool:
        _, rts, tra = config[i]
        _, rts_p, tra_p = config[(i - 1) % self.n]
        _, rts_s, tra_s = config[(i + 1) % self.n]
        triple = ((rts_p, tra_p), (rts, tra), (rts_s, tra_s))
        return self.G(config, i) and triple != ((0, 0), (1, 0), (0, 0))

    def _cmd_r4(self, config: Sequence[StateTuple], i: int) -> StateTuple:
        return (self.C(config, i), 0, 0)

    def _guard_r5(self, config: Sequence[StateTuple], i: int) -> bool:
        _, rts, tra = config[i]
        _, rts_p, tra_p = config[(i - 1) % self.n]
        return (
            not self.G(config, i)
            and not ((rts_p, tra_p) == (1, 0) and (rts, tra) == (0, 1))
            and (rts, tra) != (0, 0)
        )

    def _cmd_r5(self, config: Sequence[StateTuple], i: int) -> StateTuple:
        x = config[i][0]
        return (x, 0, 0)

    # -- token predicates (Algorithm 3, lines 36-41) --------------------------
    def holds_primary(self, config: Sequence[StateTuple], i: int) -> bool:
        """Primary-token condition: ``G_i``."""
        return self.G(config, i)

    def holds_secondary(self, config: Sequence[StateTuple], i: int) -> bool:
        """Secondary-token condition:
        ``tra_i = 1  or  (rts_i = 1 and rts_{i+1} = 0 and tra_{i+1} = 0)``.
        """
        _, rts, tra = config[i]
        _, rts_s, tra_s = config[(i + 1) % self.n]
        return tra == 1 or (rts == 1 and rts_s == 0 and tra_s == 0)

    def privileged(self, config: Configuration) -> Tuple[int, ...]:
        """Processes holding at least one token (mutual-inclusion privilege)."""
        return tuple(
            i
            for i in range(self.n)
            if self.holds_primary(config, i) or self.holds_secondary(config, i)
        )

    def node_holds_token(self, view: Sequence[StateTuple], i: int) -> bool:
        """Own-view token predicate (Definition 3's ``h_i``): P or S held."""
        return self.holds_primary(view, i) or self.holds_secondary(view, i)

    def primary_holders(self, config: Configuration) -> Tuple[int, ...]:
        """All processes whose primary-token condition holds."""
        return tuple(i for i in range(self.n) if self.holds_primary(config, i))

    def secondary_holders(self, config: Configuration) -> Tuple[int, ...]:
        """All processes whose secondary-token condition holds."""
        return tuple(i for i in range(self.n) if self.holds_secondary(config, i))

    # -- legitimacy ------------------------------------------------------------
    def is_legitimate(self, config: Configuration) -> bool:
        """Definition 1 membership (delegates to :mod:`repro.core.legitimacy`)."""
        from repro.core.legitimacy import is_legitimate

        return is_legitimate(config, self.K)

    # -- state space / configuration plumbing --------------------------------
    def local_state_space(self) -> Sequence[StateTuple]:
        """All ``4K`` local states (Theorem 1 part 2)."""
        return [
            (x, rts, tra)
            for x in range(self.K)
            for rts in (0, 1)
            for tra in (0, 1)
        ]

    def random_configuration(self, rng: random.Random) -> Configuration:
        """Uniformly random configuration — an arbitrary post-fault state."""
        return Configuration(
            (rng.randrange(self.K), rng.randrange(2), rng.randrange(2))
            for _ in range(self.n)
        )

    def normalize_configuration(self, raw: Any) -> Configuration:
        return raw if isinstance(raw, Configuration) else Configuration(raw)

    def apply_updates(
        self, config: Configuration, updates: dict[int, StateTuple]
    ) -> Configuration:
        if isinstance(config, Configuration):
            return config.replace_many(updates)
        return Configuration(config).replace_many(updates)

    # -- canonical starting points -------------------------------------------
    def initial_configuration(self, x: int = 0) -> Configuration:
        """The legitimate anchor ``gamma_0 = (x.0.1, x.0.0, ..., x.0.0)``.

        This is the configuration the closure proof (Lemma 1) starts from:
        ``P_0`` holds both tokens.
        """
        if not 0 <= x < self.K:
            raise ValueError(f"x={x} outside domain [0, {self.K})")
        states = [(x, 0, 0)] * self.n
        states[0] = (x, 0, 1)
        return Configuration(states)

    def fast_kernel(self):
        """A fresh :class:`~repro.simulation.fastpath.ssrmin_kernel.SSRminKernel`.

        The packed fast path the engine, convergence driver and model
        checker probe for; differential-tested step-for-step against the
        rule set above.
        """
        from repro.simulation.fastpath.ssrmin_kernel import SSRminKernel

        return SSRminKernel(self)

    def mp_codec(self):
        """A :class:`~repro.messagepassing.fastpath.codecs.SSRminMPCodec`.

        The packed local-view encoding the message-passing fastpath probes
        for; exhaustively differential-tested against the rule set over
        every cached neighbourhood.
        """
        from repro.messagepassing.fastpath.codecs import SSRminMPCodec

        return SSRminMPCodec(self)

    def dijkstra_projection(self) -> "SSRminDijkstraProjection":
        """View of this instance's embedded Dijkstra K-state ring.

        Lemmas 7-8 analyse SSRmin through exactly this projection.
        """
        return SSRminDijkstraProjection(self)


class SSRminDijkstraProjection:
    """Read-only adapter exposing SSRmin's ``x`` components as a Dijkstra ring.

    Provides the legitimacy test and token position of the *embedded*
    K-state ring, used by the convergence analysis (the x-part converges
    first, then the handshake part — Lemma 6's proof structure).
    """

    def __init__(self, algorithm: SSRmin):
        self._alg = algorithm

    @property
    def n(self) -> int:
        return self._alg.n

    @property
    def K(self) -> int:
        return self._alg.K

    def x_vector(self, config: Sequence[StateTuple]) -> Tuple[int, ...]:
        """Project a full SSRmin configuration onto its x components."""
        return tuple(s[0] for s in config)

    def is_legitimate(self, config: Sequence[StateTuple]) -> bool:
        """Whether the embedded Dijkstra ring has converged in ``config``."""
        from repro.algorithms.dijkstra import is_dijkstra_legitimate

        return is_dijkstra_legitimate(self.x_vector(config), self._alg.K)

    def token_holders(self, config: Sequence[StateTuple]) -> Tuple[int, ...]:
        """Processes where the Dijkstra guard ``G_i`` holds."""
        return tuple(i for i in range(self.n) if self._alg.G(config, i))
