"""Local states and configurations for SSRmin (paper Definition 1).

A process's local state is the triple ``x_i.rts_i.tra_i`` where

* ``x`` in ``{0 .. K-1}`` is the Dijkstra K-state token-ring variable,
* ``rts`` ("ready to send") and ``tra`` ("token receipt acknowledged") are the
  booleans controlling the secondary-token handshake.

For speed in simulation hot loops, local states are plain tuples
``(x, rts, tra)`` of ints; :class:`SSRminState` is an ergonomic named wrapper
that converts to/from that tuple form and renders the paper's ``x.rts.tra``
notation.  A :class:`Configuration` is an immutable n-tuple of local states
with convenience accessors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

#: Plain-tuple local state used in hot loops: ``(x, rts, tra)``.
StateTuple = Tuple[int, int, int]


@dataclass(frozen=True, order=True)
class SSRminState:
    """Named local state ``x.rts.tra`` of one SSRmin process.

    Attributes
    ----------
    x:
        The Dijkstra K-state counter, ``0 <= x < K``.
    rts:
        "Ready to send" flag for the secondary token (0 or 1).
    tra:
        "Token receipt acknowledged" flag for the secondary token (0 or 1).
    """

    x: int
    rts: int
    tra: int

    def __post_init__(self) -> None:
        if self.x < 0:
            raise ValueError(f"x must be non-negative, got {self.x}")
        if self.rts not in (0, 1):
            raise ValueError(f"rts must be 0 or 1, got {self.rts}")
        if self.tra not in (0, 1):
            raise ValueError(f"tra must be 0 or 1, got {self.tra}")

    def as_tuple(self) -> StateTuple:
        """Plain ``(x, rts, tra)`` tuple for hot-loop use."""
        return (self.x, self.rts, self.tra)

    @classmethod
    def from_tuple(cls, t: StateTuple) -> "SSRminState":
        """Inverse of :meth:`as_tuple`."""
        return cls(*t)

    @classmethod
    def parse(cls, text: str) -> "SSRminState":
        """Parse the paper's dotted notation, e.g. ``"3.1.0"``.

        Raises :class:`ValueError` on malformed input.
        """
        parts = text.strip().split(".")
        if len(parts) != 3:
            raise ValueError(f"expected 'x.rts.tra', got {text!r}")
        return cls(int(parts[0]), int(parts[1]), int(parts[2]))

    def __str__(self) -> str:
        return f"{self.x}.{self.rts}.{self.tra}"


class Configuration(Sequence[StateTuple]):
    """An immutable configuration ``(q_0, q_1, ..., q_{n-1})``.

    Stores local states as plain tuples and hashes like the underlying tuple,
    so it can be a dict key (model checking) while still offering readable
    helpers (``cfg.x(i)``, ``str(cfg)`` in the paper's notation).
    """

    __slots__ = ("_states",)

    def __init__(self, states: Iterable[StateTuple | SSRminState]):
        norm = []
        for s in states:
            if isinstance(s, SSRminState):
                norm.append(s.as_tuple())
            else:
                x, rts, tra = s
                if rts not in (0, 1) or tra not in (0, 1):
                    raise ValueError(f"invalid local state {s!r}")
                norm.append((int(x), int(rts), int(tra)))
        if not norm:
            raise ValueError("a configuration needs at least one process")
        self._states: Tuple[StateTuple, ...] = tuple(norm)

    @classmethod
    def from_states(
        cls, states: Tuple[StateTuple, ...]
    ) -> "Configuration":
        """Trusted fast constructor: wrap an already-normalized states tuple.

        Skips per-state validation, for hot paths (the fastpath kernels and
        successor generation) whose inputs are already ``(x, rts, tra)``
        int-tuples.  Callers with unchecked input use ``Configuration(...)``.
        """
        config = object.__new__(cls)
        config._states = states
        return config

    # -- parsing / rendering ----------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Configuration":
        """Parse a whitespace- or comma-separated list of ``x.rts.tra`` states.

        Example: ``Configuration.parse("3.0.1 3.0.0 3.0.0")``.
        """
        toks = text.replace(",", " ").split()
        if not toks:
            raise ValueError("empty configuration text")
        return cls([SSRminState.parse(t) for t in toks])

    def __str__(self) -> str:
        return "(" + ", ".join(f"{x}.{r}.{t}" for x, r, t in self._states) + ")"

    def __repr__(self) -> str:
        return f"Configuration{self._states!r}"

    # -- sequence protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._states)

    def __getitem__(self, i):  # type: ignore[override]
        return self._states[i]

    def __iter__(self) -> Iterator[StateTuple]:
        return iter(self._states)

    def __hash__(self) -> int:
        return hash(self._states)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._states == other._states
        if isinstance(other, tuple):
            return self._states == other
        return NotImplemented

    # -- accessors ----------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processes."""
        return len(self._states)

    @property
    def states(self) -> Tuple[StateTuple, ...]:
        """The raw tuple-of-tuples, suitable for hashing and fast access."""
        return self._states

    def x(self, i: int) -> int:
        """Dijkstra counter ``x_i``."""
        return self._states[i][0]

    def rts(self, i: int) -> int:
        """``rts_i`` flag."""
        return self._states[i][1]

    def tra(self, i: int) -> int:
        """``tra_i`` flag."""
        return self._states[i][2]

    def x_vector(self) -> Tuple[int, ...]:
        """The projection ``(x_0, ..., x_{n-1})`` onto Dijkstra's token ring.

        Lemmas 7-8 reason about this projection: SSRmin embeds an exact copy
        of Dijkstra's K-state ring in the ``x`` components.
        """
        return tuple(s[0] for s in self._states)

    def handshake_vector(self) -> Tuple[Tuple[int, int], ...]:
        """The projection ``((rts_0, tra_0), ..., (rts_{n-1}, tra_{n-1}))``."""
        return tuple((s[1], s[2]) for s in self._states)

    def replace(self, i: int, new_state: StateTuple | SSRminState) -> "Configuration":
        """Configuration with process ``i``'s local state replaced."""
        if isinstance(new_state, SSRminState):
            new_state = new_state.as_tuple()
        states = list(self._states)
        states[i] = new_state
        return Configuration(states)

    def replace_many(
        self, updates: dict[int, StateTuple]
    ) -> "Configuration":
        """Configuration with several local states replaced atomically.

        This is the composite-atomicity write step: every selected process
        computed its command from the *old* configuration, and all writes land
        simultaneously.
        """
        states = list(self._states)
        for i, st in updates.items():
            states[i] = st
        return Configuration(states)
