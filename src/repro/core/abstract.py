"""The abstract inchworm model of section 3.1 — a cross-validation reference.

Section 3.1 explains SSRmin through three *abstract actions* on explicit
token positions:

* ``alpha_1`` (ready to send the secondary token): the holder ``P_i`` of both
  tokens raises ``rts_i``;
* ``beta`` (receive the secondary token): ``P_{i+1}`` observes ``rts_i = 1``
  and raises ``tra_{i+1}`` — the secondary token is now at ``P_{i+1}``;
* ``alpha_2`` (send the primary token): ``P_i`` observes ``tra_{i+1} = 1``,
  executes Dijkstra's rule, and drops ``rts_i`` — the primary token joins the
  secondary at ``P_{i+1}``.

:class:`AbstractInchworm` tracks *explicit* primary/secondary positions plus
a phase, cycling ``alpha_1 -> beta -> alpha_2``.  The test suite co-simulates
it with the real SSRmin on legitimate executions and asserts the token
positions derived from SSRmin's predicates match this reference at every step
— evidence the concrete Rules 1–3 faithfully implement the abstract actions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Phase(enum.Enum):
    """Where the handshake between the token pair currently stands."""

    #: Both tokens co-located; next action is ``alpha_1`` by the holder.
    TOGETHER = "together"
    #: ``rts`` raised; tokens still co-located; next action is ``beta``.
    READY = "ready"
    #: Secondary moved ahead; next action is ``alpha_2`` by the primary holder.
    SPLIT = "split"


@dataclass(frozen=True)
class AbstractInchworm:
    """Reference state machine for the two-token inchworm.

    Attributes
    ----------
    n:
        Ring size.
    primary:
        Index of the primary token holder.
    secondary:
        Index of the secondary token holder (equals ``primary`` or
        ``primary + 1 mod n``).
    phase:
        Current handshake :class:`Phase`.
    """

    n: int
    primary: int = 0
    secondary: int = 0
    phase: Phase = Phase.TOGETHER

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError(f"need n >= 3, got {self.n}")
        if not 0 <= self.primary < self.n:
            raise ValueError(f"primary index {self.primary} out of range")
        expected = (
            self.primary
            if self.phase in (Phase.TOGETHER, Phase.READY)
            else (self.primary + 1) % self.n
        )
        if self.secondary != expected:
            raise ValueError(
                f"inconsistent inchworm: phase={self.phase}, "
                f"primary={self.primary}, secondary={self.secondary}"
            )

    # -- the single legal action at each phase ------------------------------
    def advance(self) -> "AbstractInchworm":
        """Apply the unique enabled abstract action and return the new state."""
        if self.phase is Phase.TOGETHER:
            # alpha_1: holder raises rts.
            return AbstractInchworm(self.n, self.primary, self.primary, Phase.READY)
        if self.phase is Phase.READY:
            # beta: successor raises tra; the secondary token moves.
            nxt = (self.primary + 1) % self.n
            return AbstractInchworm(self.n, self.primary, nxt, Phase.SPLIT)
        # alpha_2: primary joins the secondary.
        nxt = (self.primary + 1) % self.n
        return AbstractInchworm(self.n, nxt, nxt, Phase.TOGETHER)

    def acting_process(self) -> int:
        """Which process performs the next abstract action."""
        if self.phase is Phase.READY:
            return (self.primary + 1) % self.n  # beta is P_{i+1}'s action
        return self.primary  # alpha_1 and alpha_2 are P_i's actions

    def holders(self) -> Tuple[int, ...]:
        """Sorted distinct processes holding at least one token."""
        return tuple(sorted({self.primary, self.secondary}))

    def steps_per_lap(self) -> int:
        """Abstract actions needed for one full circulation: ``3n``."""
        return 3 * self.n
