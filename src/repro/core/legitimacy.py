"""Legitimate configurations of SSRmin (paper Definition 1 and Lemma 1).

Definition 1 lists six configuration shapes; for some ``x`` (mod K) and token
position ``i`` they collapse to: the x-vector is Dijkstra-legitimate with its
unique primary-token holder at ``P_i``, and the handshake vector is one of

* ``P_i = <0.1>``, everyone else ``<0.0>``  (``P_i`` holds both tokens,
  secondary via ``tra``),
* ``P_i = <1.0>``, everyone else ``<0.0>``  (``P_i`` holds both tokens,
  secondary via ``rts`` with a quiet successor),
* ``P_i = <1.0>``, ``P_{i+1 mod n} = <0.1>``, everyone else ``<0.0>``
  (``P_i`` primary, ``P_{i+1}`` secondary).

Lemma 1's closure proof walks a canonical cycle of exactly ``3n`` legitimate
configurations per ``x`` value (``3nK`` in total), with exactly one process
enabled in each.  :func:`canonical_cycle` regenerates that cycle by executing
the algorithm, and :func:`legitimate_configurations` enumerates the closed
forms directly; the test suite checks the two enumerations coincide.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.algorithms.dijkstra import is_dijkstra_legitimate
from repro.core.state import Configuration, StateTuple


def _primary_position(xs: Sequence[int], K: int) -> int | None:
    """Token position of a Dijkstra-legitimate x-vector, else ``None``.

    Position 0 when all entries are equal; otherwise the index of the last
    process still carrying the old value... precisely: the first index ``i``
    with ``x_i != x_{i-1}`` (the unique guard-true process).
    """
    if not is_dijkstra_legitimate(xs, K):
        return None
    n = len(xs)
    if all(v == xs[0] for v in xs):
        return 0
    for i in range(1, n):
        if xs[i] != xs[i - 1]:
            return i
    raise AssertionError("unreachable: legitimate but no boundary found")


def is_legitimate(config: Sequence[StateTuple], K: int) -> bool:
    """Definition 1 membership test (closed form).

    Parameters
    ----------
    config:
        Sequence of ``(x, rts, tra)`` triples.
    K:
        The Dijkstra counter modulus of the algorithm instance.
    """
    n = len(config)
    xs = [s[0] for s in config]
    i = _primary_position(xs, K)
    if i is None:
        return False
    hs = [(s[1], s[2]) for s in config]
    succ = (i + 1) % n
    quiet = all(hs[j] == (0, 0) for j in range(n) if j not in (i, succ))
    if not quiet:
        return False
    own, nxt = hs[i], hs[succ]
    # Shape 1/2: P_i holds both tokens; successor must be quiet too.
    if nxt == (0, 0) and own in ((0, 1), (1, 0)):
        return True
    # Shape 3: P_i primary (rts=1), successor holds the secondary via tra.
    if own == (1, 0) and nxt == (0, 1):
        return True
    return False


def legitimate_configurations(n: int, K: int) -> Iterator[Configuration]:
    """Enumerate all ``3nK`` legitimate configurations in closed form.

    Order: for each ``x`` and each token position ``i``, the three shapes in
    the order they appear along the canonical cycle.
    """
    if n < 3:
        raise ValueError(f"SSRmin legitimacy is defined for n >= 3, got {n}")
    for x in range(K):
        for i in range(n):
            xs = [(x + 1) % K] * i + [x] * (n - i)
            for own, nxt in (((0, 1), (0, 0)), ((1, 0), (0, 0)), ((1, 0), (0, 1))):
                hs: List[Tuple[int, int]] = [(0, 0)] * n
                hs[i] = own
                if nxt != (0, 0):
                    hs[(i + 1) % n] = nxt
                yield Configuration(
                    (xs[j], hs[j][0], hs[j][1]) for j in range(n)
                )


def canonical_cycle(
    n: int, K: int, x: int = 0, cycles: int = 1
) -> List[Configuration]:
    """Regenerate Lemma 1's canonical execution from ``gamma_0``.

    Starting at ``gamma_0 = (x.0.1, x.0.0, ..., x.0.0)``, repeatedly asserts
    exactly one process is enabled and executes it, for ``cycles`` laps of
    ``3n`` steps each.  The returned list has ``3n * cycles + 1``
    configurations (including both endpoints).

    Raises :class:`AssertionError` if at any point the number of enabled
    processes differs from one — i.e. if closure as proven in Lemma 1 were
    violated.
    """
    from repro.core.ssrmin import SSRmin

    alg = SSRmin(n, K)
    config = alg.initial_configuration(x)
    out = [config]
    for _ in range(3 * n * cycles):
        enabled = alg.enabled_processes(config)
        if len(enabled) != 1:
            raise AssertionError(
                f"Lemma 1 violated: {len(enabled)} processes enabled in {config}"
            )
        config = alg.step(config, enabled)
        out.append(config)
    return out
