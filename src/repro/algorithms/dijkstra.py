"""Dijkstra's self-stabilizing K-state token ring ``SSToken`` (Algorithm 1).

The substrate SSRmin extends.  A unidirectional ring of ``n`` processes, each
holding ``x_i in {0 .. K-1}`` with ``K > n``:

* bottom process ``P_0`` — **Rule D1**: ``if x_0 == x_{n-1} then
  x_0 <- x_{n-1} + 1 mod K``; token condition ``x_0 == x_{n-1}``;
* other process ``P_i`` — **Rule D2**: ``if x_i != x_{i-1} then
  x_i <- x_{i-1}``; token condition ``x_i != x_{i-1}``.

A configuration is legitimate iff it has the form ``(x, x, ..., x)`` or
``(x+1, ..., x+1, x, ..., x)`` (a single "step" descending at some position),
equivalently: exactly one process is privileged.

The module also exposes :func:`dijkstra_guard` / :func:`dijkstra_command`
(the ``G_i`` / ``C_i`` macros of Algorithm 2) in a form reusable by SSRmin,
parameterized on how to read the ``x`` component out of a local state.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.core.rules import Rule, RuleSet
from repro.ring.topology import RingTopology

#: A Dijkstra configuration is just the tuple (x_0, ..., x_{n-1}).
DijkstraConfig = Tuple[int, ...]


def dijkstra_guard(x_i: int, x_pred: int, is_bottom: bool) -> bool:
    """The macro ``G_i`` of Algorithm 2.

    ``G_0 == (x_0 == x_{n-1})`` for the bottom process and
    ``G_i == (x_i != x_{i-1})`` for every other process.
    """
    if is_bottom:
        return x_i == x_pred
    return x_i != x_pred


def dijkstra_command(x_pred: int, is_bottom: bool, K: int) -> int:
    """The macro ``C_i`` of Algorithm 2 — the new value of ``x_i``.

    ``C_0: x_0 <- x_{n-1} + 1 mod K``; ``C_i: x_i <- x_{i-1}`` otherwise.
    """
    if is_bottom:
        return (x_pred + 1) % K
    return x_pred


def is_dijkstra_legitimate(xs: Sequence[int], K: int) -> bool:
    """Closed-form legitimacy of the K-state ring (section 2.3).

    Legitimate iff of the form ``(x, ..., x)`` or
    ``(x+1, ..., x+1, x, ..., x)`` with ``1 <= l <= n-1`` leading ``x+1``
    entries (arithmetic mod K) — equivalently, exactly one process holds the
    token.
    """
    n = len(xs)
    x_last = xs[-1]
    # Count how many leading entries equal x_last + 1 before they drop to x_last.
    step = (x_last + 1) % K
    i = 0
    while i < n and xs[i] == step:
        i += 1
    if i == 0:
        return all(v == x_last for v in xs)
    # xs[0..i-1] == x_last+1; the rest must all equal x_last.
    return all(xs[j] == x_last for j in range(i, n))


class DijkstraKState(RingAlgorithm[DijkstraConfig, int]):
    """Dijkstra's K-state token ring on a unidirectional ring.

    Parameters
    ----------
    n:
        Number of processes, ``n >= 2``.
    K:
        Size of the counter domain.  The paper requires ``K > n`` for
        correctness under the distributed daemon; by default the constructor
        enforces this, but ``allow_small_k=True`` permits ``2 <= K <= n`` so
        the K-sensitivity ablation (bench ``abl3``) can demonstrate *why* the
        requirement exists.
    """

    def __init__(self, n: int, K: int | None = None, *, allow_small_k: bool = False):
        if n < 2:
            raise ValueError(f"Dijkstra's ring needs n >= 2, got {n}")
        K = n + 1 if K is None else K
        if K <= n and not allow_small_k:
            raise ValueError(
                f"K must exceed n for self-stabilization (got K={K}, n={n}); "
                "pass allow_small_k=True to experiment below the threshold"
            )
        if K < 2:
            raise ValueError(f"K must be at least 2, got {K}")
        self.K = K
        self.ring = RingTopology(n, bidirectional=False)
        self.rule_set = RuleSet(
            [
                Rule(
                    name="D1",
                    number=1,
                    guard=self._guard_bottom,
                    command=self._command_bottom,
                    description="bottom: advance counter when it catches up",
                ),
                Rule(
                    name="D2",
                    number=2,
                    guard=self._guard_other,
                    command=self._command_other,
                    description="other: copy predecessor's counter",
                ),
            ]
        )

    # -- rules ---------------------------------------------------------------
    def _guard_bottom(self, config: DijkstraConfig, i: int) -> bool:
        if i != 0:
            return False
        return dijkstra_guard(config[0], config[-1], is_bottom=True)

    def _command_bottom(self, config: DijkstraConfig, i: int) -> int:
        return dijkstra_command(config[-1], is_bottom=True, K=self.K)

    def _guard_other(self, config: DijkstraConfig, i: int) -> bool:
        if i == 0:
            return False
        return dijkstra_guard(config[i], config[i - 1], is_bottom=False)

    def _command_other(self, config: DijkstraConfig, i: int) -> int:
        return dijkstra_command(config[i - 1], is_bottom=False, K=self.K)

    # -- semantics -------------------------------------------------------------
    def is_legitimate(self, config: DijkstraConfig) -> bool:
        """See :func:`is_dijkstra_legitimate`."""
        return is_dijkstra_legitimate(config, self.K)

    def privileged(self, config: DijkstraConfig) -> Tuple[int, ...]:
        """Token holders — identical to the enabled set for this algorithm."""
        return self.enabled_processes(config)

    def local_state_space(self) -> Sequence[int]:
        return range(self.K)

    def random_configuration(self, rng: random.Random) -> DijkstraConfig:
        return tuple(rng.randrange(self.K) for _ in range(self.n))

    def fast_kernel(self):
        """A fresh :class:`~repro.simulation.fastpath.dijkstra_kernel.DijkstraKernel`."""
        from repro.simulation.fastpath.dijkstra_kernel import DijkstraKernel

        return DijkstraKernel(self)

    def mp_codec(self):
        """A :class:`~repro.messagepassing.fastpath.codecs.DijkstraMPCodec`."""
        from repro.messagepassing.fastpath.codecs import DijkstraMPCodec

        return DijkstraMPCodec(self)

    # -- helpers -----------------------------------------------------------
    def initial_configuration(self, x: int = 0) -> DijkstraConfig:
        """The all-equal legitimate configuration ``(x, ..., x)``."""
        if not 0 <= x < self.K:
            raise ValueError(f"x={x} outside domain [0, {self.K})")
        return tuple([x] * self.n)

    def token_position(self, config: DijkstraConfig) -> int:
        """Position of the unique token in a *legitimate* configuration.

        Raises :class:`ValueError` if the configuration is illegitimate
        (where token count may exceed one).
        """
        holders = self.privileged(config)
        if len(holders) != 1:
            raise ValueError(
                f"configuration {config!r} holds {len(holders)} tokens; "
                "token_position is defined only for legitimate configurations"
            )
        return holders[0]
