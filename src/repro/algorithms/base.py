"""The common interface of every ring algorithm in this reproduction.

The paper's computational model (section 2.1):

* communication — *state reading*: a process reads neighbours' local
  variables instantly;
* execution — *composite atomicity*: Read, Compute and Write happen in one
  atomic step;
* scheduling — a *daemon* selects a non-empty subset of enabled processes at
  each step (:mod:`repro.daemons`).

:class:`RingAlgorithm` captures exactly that: an algorithm knows its ring, its
prioritized rule set, how to take a composite-atomic step for a selected set
of processes, which processes are *privileged* (hold a token — a predicate,
not a data object), and which configurations are *legitimate*.

Configurations are generic: each concrete algorithm chooses its local-state
representation (an ``int`` for Dijkstra's K-state ring, an ``(x, rts, tra)``
tuple for SSRmin, ...) and configurations are plain tuples of local states
unless the algorithm provides a richer wrapper.
"""

from __future__ import annotations

import abc
from typing import (
    Any,
    Dict,
    Generic,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.rules import Rule, RuleSet
from repro.ring.topology import RingTopology

S = TypeVar("S")  # local-state type
C = TypeVar("C")  # configuration type


class RingAlgorithm(abc.ABC, Generic[C, S]):
    """Abstract base for self-stabilizing ring algorithms.

    Subclasses must provide :attr:`ring`, :attr:`rule_set` and the abstract
    methods; the composite-atomicity :meth:`step` and daemon-facing
    :meth:`enabled_processes` are implemented here once.
    """

    #: The ring the algorithm runs on (set by subclass ``__init__``).
    ring: RingTopology
    #: Prioritized guarded commands (set by subclass ``__init__``).
    rule_set: RuleSet

    # -- size ---------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processes."""
        return self.ring.n

    # -- enabledness / rules --------------------------------------------------
    def enabled_rule(self, config: C, i: int) -> Optional[Rule]:
        """The unique enabled rule at process ``i`` (priority resolved)."""
        return self.rule_set.enabled_rule(config, i)

    def is_enabled(self, config: C, i: int) -> bool:
        """Whether process ``i`` has any enabled rule in ``config``."""
        return self.enabled_rule(config, i) is not None

    def enabled_processes(self, config: C) -> Tuple[int, ...]:
        """All enabled processes in ``config`` (daemon's choice set)."""
        return tuple(i for i in range(self.n) if self.is_enabled(config, i))

    # -- stepping -------------------------------------------------------------
    def execute(self, config: C, i: int) -> S:
        """New local state of ``i`` after executing its enabled rule.

        Raises :class:`ValueError` if ``i`` is not enabled — a daemon must
        never select a disabled process.
        """
        rule = self.enabled_rule(config, i)
        if rule is None:
            raise ValueError(f"process {i} is not enabled in {config!r}")
        return rule.execute(config, i)

    def step(self, config: C, selected: Iterable[int]) -> C:
        """One composite-atomicity step: every selected process moves at once.

        All selected processes read the *old* configuration, compute their
        command, and all writes land simultaneously — the transition relation
        ``gamma_t -> gamma_{t+1}`` of section 2.1.
        """
        updates: Dict[int, S] = {}
        for i in set(selected):
            updates[i] = self.execute(config, i)
        if not updates:
            raise ValueError("daemon must select a non-empty set of processes")
        return self.apply_updates(config, updates)

    def apply_updates(self, config: C, updates: Dict[int, S]) -> C:
        """Build the next configuration from simultaneous local-state writes.

        Default implementation assumes ``config`` is a tuple of local states;
        algorithms with richer configuration types override this.
        """
        states = list(config)  # type: ignore[arg-type]
        for i, st in updates.items():
            states[i] = st
        return tuple(states)  # type: ignore[return-value]

    # -- semantics subclasses must define --------------------------------------
    @abc.abstractmethod
    def is_legitimate(self, config: C) -> bool:
        """Membership in the algorithm's legitimate set Lambda."""

    @abc.abstractmethod
    def privileged(self, config: C) -> Tuple[int, ...]:
        """Processes holding a token (privilege) — evaluated as a predicate."""

    def node_holds_token(self, view: Any, i: int) -> bool:
        """Token predicate evaluated on a *local view* (own state + caches).

        This is ``h_i(q_i, Z_i[.])`` of Definition 3 — what a CST node
        evaluates against its own cache.  The default equates privilege with
        enabledness, correct for Dijkstra-style rings; algorithms whose
        privilege predicate differs from enabledness (SSRmin, compositions)
        override it.
        """
        return self.is_enabled(view, i)

    @abc.abstractmethod
    def local_state_space(self) -> Sequence[S]:
        """The finite local-state domain Q (for exhaustive model checking)."""

    @abc.abstractmethod
    def random_configuration(self, rng: Any) -> C:
        """A uniformly random configuration (arbitrary transient-fault state).

        ``rng`` is a :class:`random.Random`-compatible generator.
        """

    # -- optional fast-path capability ---------------------------------------
    def fast_kernel(self) -> Optional[Any]:
        """A fresh packed simulation kernel, or ``None`` (the default).

        Algorithms with a :class:`repro.simulation.fastpath.FastKernel`
        implementation override this; the engine, convergence driver and
        transition system probe it and transparently fall back to the naive
        guard-evaluation path when it returns ``None``.  Each call returns a
        new kernel (kernels are mutable single-configuration objects).
        """
        return None

    def mp_codec(self) -> Optional[Any]:
        """A packed message-passing codec, or ``None`` (the default).

        Algorithms with an :class:`repro.messagepassing.fastpath.codecs.
        MPCodec` encoding override this; ``build_cst_network`` and the
        synchronous CST projection probe it and transparently keep the
        reference object-graph path when it returns ``None``.  Codecs are
        stateless translators, so returning a shared instance is fine.
        """
        return None

    # -- optional conveniences ---------------------------------------------
    def configuration_space(self) -> Iterator[C]:
        """Iterate every configuration (|Q|^n of them) — small n only.

        Default yields tuples over :meth:`local_state_space`; used by the
        exhaustive model checker.
        """
        import itertools

        space = list(self.local_state_space())
        for combo in itertools.product(space, repeat=self.n):
            yield self.normalize_configuration(combo)

    def normalize_configuration(self, raw: Any) -> C:
        """Coerce a raw tuple of local states into this algorithm's config type."""
        return tuple(raw)  # type: ignore[return-value]

    def state_count_per_process(self) -> int:
        """|Q| — Theorem 1 reports 4K for SSRmin."""
        return len(self.local_state_space())
