"""Ring algorithms: the paper's substrates and baselines.

* :mod:`repro.algorithms.base` — the :class:`RingAlgorithm` interface shared
  by every algorithm (guards/commands, composite-atomicity step, token
  predicates, legitimacy).
* :mod:`repro.algorithms.dijkstra` — Dijkstra's K-state token ring
  ``SSToken`` (paper Algorithm 1), the substrate SSRmin extends.
* :mod:`repro.algorithms.dijkstra_four_state` — Dijkstra's four-state 1974
  self-stabilizing ring, reconstructed and exhaustively model-checked;
  included as an extension substrate.  (A three-state reconstruction was
  attempted and *rejected*: no candidate in the natural rule family passed
  the model checker, and shipping an unverified algorithm is worse than
  shipping none.)
* :mod:`repro.algorithms.composition` — the parallel composition of k
  independent token rings, the multi-token baseline the paper's Figure 12
  shows is *not* mutual-inclusion-safe under message passing.
* :mod:`repro.algorithms.multi_inclusion` — layered SSRmin: the
  (m, 2m)-critical-section generalization whose per-layer gap tolerance
  *does* survive message passing.
"""

from repro.algorithms.base import RingAlgorithm
from repro.algorithms.dijkstra import DijkstraKState
from repro.algorithms.dijkstra_four_state import DijkstraFourState
from repro.algorithms.composition import IndependentComposition
from repro.algorithms.multi_inclusion import LayeredSSRmin

__all__ = [
    "RingAlgorithm",
    "DijkstraKState",
    "DijkstraFourState",
    "IndependentComposition",
    "LayeredSSRmin",
]
