"""Dijkstra's self-stabilizing four-state token ring (reconstruction).

The third ring of Dijkstra's 1974 note (paper reference [2]): machines on a
bidirectional array hold ``(x, up)`` with ``x in {0, 1}`` and a direction bit
``up``.  The bottom machine has ``up == True`` frozen, the top machine
``up == False`` frozen:

* bottom ``0``:  ``if x_0 == x_1 and not up_1 then x_0 := 1 - x_0``
* top ``n-1``:   ``if x_{n-1} != x_{n-2} then x_{n-1} := x_{n-2}``
* normal ``i``:
  ``R_down: if x_i != x_{i-1} then x_i := x_{i-1}; up_i := True`` and
  ``R_up:   if x_i == x_{i+1} and up_i and not up_{i+1} then up_i := False``

Each true guard is a privilege; legitimacy is exactly one privilege.  Like
the three-state ring this is a literature reconstruction and is validated by
exhaustive model checking in the test suite before experiments rely on it.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.core.rules import Rule, RuleSet
from repro.ring.topology import RingTopology

#: Local state ``(x, up)`` with x in {0,1} and up in {False, True}.
FourState = Tuple[int, bool]
FourStateConfig = Tuple[FourState, ...]


class DijkstraFourState(RingAlgorithm[FourStateConfig, FourState]):
    """Dijkstra's four-state self-stabilizing mutual exclusion."""

    def __init__(self, n: int):
        if n < 3:
            raise ValueError(f"four-state ring needs n >= 3, got {n}")
        self.ring = RingTopology(n, bidirectional=True)
        self.rule_set = RuleSet(
            [
                Rule("B", 1, self._guard_bottom, self._cmd_bottom,
                     "bottom: flip x when wave returns"),
                Rule("T", 2, self._guard_top, self._cmd_top,
                     "top: copy x, reflect wave"),
                Rule("ND", 3, self._guard_down, self._cmd_down,
                     "normal: propagate x downward, turn up"),
                Rule("NU", 4, self._guard_up, self._cmd_up,
                     "normal: absorb reflected wave, turn down"),
            ]
        )

    # -- rules ---------------------------------------------------------------
    def _guard_bottom(self, config: FourStateConfig, i: int) -> bool:
        if i != 0:
            return False
        (x0, _), (x1, up1) = config[0], config[1]
        return x0 == x1 and not up1

    def _cmd_bottom(self, config: FourStateConfig, i: int) -> FourState:
        return (1 - config[0][0], True)

    def _guard_top(self, config: FourStateConfig, i: int) -> bool:
        n = self.n
        return i == n - 1 and config[n - 1][0] != config[n - 2][0]

    def _cmd_top(self, config: FourStateConfig, i: int) -> FourState:
        return (config[self.n - 2][0], False)

    def _guard_down(self, config: FourStateConfig, i: int) -> bool:
        if i == 0 or i == self.n - 1:
            return False
        return config[i][0] != config[i - 1][0]

    def _cmd_down(self, config: FourStateConfig, i: int) -> FourState:
        return (config[i - 1][0], True)

    def _guard_up(self, config: FourStateConfig, i: int) -> bool:
        if i == 0 or i == self.n - 1:
            return False
        (x_i, up_i), (x_s, up_s) = config[i], config[i + 1]
        # R_down has priority at the same machine (handled by RuleSet order),
        # but the raw guard is as in Dijkstra's text:
        return x_i == x_s and up_i and not up_s

    def _cmd_up(self, config: FourStateConfig, i: int) -> FourState:
        return (config[i][0], False)

    # -- semantics --------------------------------------------------------------
    def privilege_count(self, config: FourStateConfig) -> int:
        """Total number of true guards across all machines."""
        count = 0
        for i in range(self.n):
            for rule in self.rule_set.rules:
                if rule.guard(config, i):
                    count += 1
        return count

    def is_legitimate(self, config: FourStateConfig) -> bool:
        """Exactly one privilege in the whole system."""
        return self.privilege_count(config) == 1

    def privileged(self, config: FourStateConfig) -> Tuple[int, ...]:
        return self.enabled_processes(config)

    def local_state_space(self) -> Sequence[FourState]:
        """All four ``(x, up)`` pairs.

        Note the bottom/top machines only ever *occupy* half of these (their
        ``up`` bit is frozen), but arbitrary transient faults may place any
        value there; the rules never read the frozen bits.
        """
        return [(x, up) for x in (0, 1) for up in (False, True)]

    def random_configuration(self, rng: random.Random) -> FourStateConfig:
        """Random configuration with the frozen direction bits respected.

        Dijkstra's model fixes ``up_0 = True`` and ``up_{n-1} = False`` as
        *constants* of the machines (not corruptible state), so random
        configurations honour them.
        """
        states = [
            (rng.randrange(2), bool(rng.randrange(2))) for _ in range(self.n)
        ]
        states[0] = (states[0][0], True)
        states[-1] = (states[-1][0], False)
        return tuple(states)

    def configuration_space(self):
        """All configurations with the frozen bottom/top direction bits."""
        import itertools

        middle = list(self.local_state_space())
        bottoms = [(0, True), (1, True)]
        tops = [(0, False), (1, False)]
        for bottom in bottoms:
            for mid in itertools.product(middle, repeat=self.n - 2):
                for top in tops:
                    yield (bottom, *mid, top)

    def initial_configuration(self) -> FourStateConfig:
        """All machines agree on x=0 with the wave heading up (legitimate)."""
        states = [(0, True)] * self.n
        states[-1] = (0, False)
        return tuple(states)
