"""Generalized (l, k)-critical-section via layered SSRmin rings.

The paper situates mutual inclusion inside the *(l, k)-critical section*
family (reference [9]): at least ``l`` and at most ``k`` processes in the
critical section.  SSRmin solves (1, 2).  Layering ``m`` independent SSRmin
instances (the paper's own composition idea from Figure 12, but with a
gap-tolerant component instead of SSToken) gives a straightforward
construction for the band:

* every layer keeps 1..2 privileged processes once legitimate, so the union
  over layers has **at least max-over-layers >= 1** privileged processes and
  at most ``2m`` — and because each layer alone is already >= 1, the union
  count sits in ``[1, 2m]``; distinct-layer tokens may coincide on a
  process, so the *lower* bound stays 1, not m.
* counting **layer-tokens** instead of processes yields the full band
  ``[m, 2m]`` — each layer always contributes 1..2 tokens.

Crucially, unlike the Figure-12 composition of SSTokens, every layer here is
model-gap tolerant, so the per-layer lower bound survives the CST
message-passing transform — measured by the layered experiment in the test
suite.

:class:`LayeredSSRmin` wraps :class:`~repro.algorithms.composition.IndependentComposition`
with layer-token counting and the (m, 2m)-band predicate.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.algorithms.composition import IndependentComposition, LayeredConfig


class LayeredSSRmin(IndependentComposition):
    """``m`` independent SSRmin layers on one ring.

    Parameters
    ----------
    n:
        Ring size (shared by all layers).
    m:
        Number of layers (>= 1).
    K:
        Counter modulus per layer (default ``n + 1``).
    """

    def __init__(self, n: int, m: int, K: int | None = None):
        # Imported here: repro.core.ssrmin itself imports repro.algorithms,
        # so a module-level import would be circular.
        from repro.core.ssrmin import SSRmin

        if m < 1:
            raise ValueError(f"need at least one layer, got m={m}")
        super().__init__([SSRmin(n, K) for _ in range(m)])

    # -- layer-token accounting ------------------------------------------------
    def layer_token_count(self, config: LayeredConfig) -> int:
        """Total privileged (process, layer) pairs — the (m, 2m) band."""
        total = 0
        for l, alg in enumerate(self.layers):
            total += len(alg.privileged(self.layer_config(config, l)))
        return total

    def band(self) -> Tuple[int, int]:
        """The guaranteed layer-token band ``(m, 2m)`` after convergence."""
        return (self.k, 2 * self.k)

    def in_band(self, config: LayeredConfig) -> bool:
        """Whether the layer-token count currently sits in the band."""
        lo, hi = self.band()
        return lo <= self.layer_token_count(config) <= hi

    # -- construction helpers ---------------------------------------------
    def staggered_initial(self, spacing: int | None = None) -> LayeredConfig:
        """Legitimate start with the layer tokens spread around the ring.

        Layer ``l``'s token pair starts at position ``l * spacing`` (default
        spacing ``n // m``), which maximizes initial coverage diversity.
        """
        n = self.n
        spacing = max(1, n // self.k) if spacing is None else spacing
        layer_configs: List[Sequence] = []
        for l, alg in enumerate(self.layers):
            pos = (l * spacing) % n
            # Build the shape-A legitimate configuration with the token at
            # `pos`: x+1 before the token position, x from it onward.
            x = 0
            states = []
            for i in range(n):
                xi = (x + 1) % alg.K if i < pos else x
                states.append((xi, 0, 1 if i == pos else 0))
            layer_configs.append(states)
        return self.compose_configurations(layer_configs)
