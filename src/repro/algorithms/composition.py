"""Parallel composition of independent ring algorithms (Figure-12 baseline).

The paper (section 5, Figure 12) shows that running **two independent
instances** of Dijkstra's SSToken concurrently — the naive way to get
"always at least one token" — fails in the message-passing model: if both
token holders execute at the same moment, there is a time instant with no
token anywhere.  It also notes the multi-token ring of Flatebo, Datta &
Schoone [3] is "not sufficient for our purpose" for the same reason.

:class:`IndependentComposition` layers ``k`` independent instances of any
:class:`~repro.algorithms.base.RingAlgorithm` over the same processes.  The
local state of a process is the tuple of its per-layer states; a selected
process executes *every* layer in which it is enabled (layers never interact,
so each layer's projection of an execution is a legal execution of that layer
— possibly with stutter steps, which self-stabilization tolerates).

A process is *privileged* if it is privileged in any layer, and a
configuration is legitimate iff every layer's projection is legitimate.  In
the state-reading model this trivially gives mutual inclusion (each layer
always has >= 1 token); the Figure-12 bench demonstrates it does **not**
survive the CST message-passing transform — unlike SSRmin.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.core.rules import Rule, RuleSet
from repro.ring.topology import RingTopology

#: Local state of the composition: one entry per layer.
LayeredState = Tuple[Any, ...]
LayeredConfig = Tuple[LayeredState, ...]


class IndependentComposition(RingAlgorithm[LayeredConfig, LayeredState]):
    """``k`` independent ring algorithms running side by side.

    Parameters
    ----------
    layers:
        The component algorithms.  All must have the same ``n``.
    """

    def __init__(self, layers: Sequence[RingAlgorithm]):
        if not layers:
            raise ValueError("composition needs at least one layer")
        n = layers[0].n
        for alg in layers:
            if alg.n != n:
                raise ValueError(
                    f"all layers must share n; got {[a.n for a in layers]}"
                )
        self.layers: Tuple[RingAlgorithm, ...] = tuple(layers)
        self.ring = RingTopology(n, bidirectional=True)
        # A synthetic one-rule set so generic tooling can introspect names;
        # actual enabledness/execution is overridden below.
        self.rule_set = RuleSet(
            [
                Rule(
                    "ANY",
                    1,
                    guard=lambda config, i: self._any_layer_enabled(config, i),
                    command=lambda config, i: self._execute_all_layers(config, i),
                    description="execute every enabled layer",
                )
            ]
        )

    # -- layer plumbing ------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of layers."""
        return len(self.layers)

    def layer_config(self, config: LayeredConfig, layer: int) -> Tuple[Any, ...]:
        """Project a composed configuration onto one layer.

        ``None`` placeholders (CST local views fill unreadable positions with
        ``None``) project to ``None`` — layer guards never read them.
        """
        return tuple(None if s is None else s[layer] for s in config)

    def _any_layer_enabled(self, config: LayeredConfig, i: int) -> bool:
        return any(
            alg.is_enabled(self.layer_config(config, l), i)
            for l, alg in enumerate(self.layers)
        )

    def _execute_all_layers(self, config: LayeredConfig, i: int) -> LayeredState:
        new_state: List[Any] = []
        for l, alg in enumerate(self.layers):
            proj = self.layer_config(config, l)
            if alg.is_enabled(proj, i):
                new_state.append(alg.execute(proj, i))
            else:
                new_state.append(config[i][l])
        return tuple(new_state)

    # -- semantics --------------------------------------------------------------
    def is_legitimate(self, config: LayeredConfig) -> bool:
        """Legitimate iff every layer's projection is legitimate."""
        return all(
            alg.is_legitimate(self.layer_config(config, l))
            for l, alg in enumerate(self.layers)
        )

    def privileged(self, config: LayeredConfig) -> Tuple[int, ...]:
        """Processes privileged in at least one layer."""
        holders = set()
        for l, alg in enumerate(self.layers):
            holders.update(alg.privileged(self.layer_config(config, l)))
        return tuple(sorted(holders))

    def node_holds_token(self, view, i: int) -> bool:
        """Own-view predicate: a token in any layer's cached projection."""
        return any(
            alg.node_holds_token(self.layer_config(view, l), i)
            for l, alg in enumerate(self.layers)
        )

    def privileged_by_layer(self, config: LayeredConfig) -> List[Tuple[int, ...]]:
        """Per-layer privilege sets (used by the Figure-12 timeline rendering)."""
        return [
            alg.privileged(self.layer_config(config, l))
            for l, alg in enumerate(self.layers)
        ]

    def local_state_space(self) -> Sequence[LayeredState]:
        import itertools

        spaces = [list(alg.local_state_space()) for alg in self.layers]
        return [tuple(combo) for combo in itertools.product(*spaces)]

    def random_configuration(self, rng: random.Random) -> LayeredConfig:
        layer_cfgs = [alg.random_configuration(rng) for alg in self.layers]
        return tuple(
            tuple(layer_cfgs[l][i] for l in range(self.k)) for i in range(self.n)
        )

    def compose_configurations(
        self, layer_configs: Sequence[Sequence[Any]]
    ) -> LayeredConfig:
        """Zip per-layer configurations into one composed configuration."""
        if len(layer_configs) != self.k:
            raise ValueError(f"expected {self.k} layer configs, got {len(layer_configs)}")
        for cfg in layer_configs:
            if len(cfg) != self.n:
                raise ValueError("layer configuration has wrong length")
        return tuple(
            tuple(layer_configs[l][i] for l in range(self.k))
            for i in range(self.n)
        )
