"""Packed kernel for Dijkstra's K-state ring — the second kernel instance.

Proof that the kernel contract generalizes beyond SSRmin: one flat ``x``
vector, rule resolution in a single comparison per process (``D1`` at the
bottom, ``D2`` elsewhere), and the same closed-neighborhood incremental
enabled-set maintenance.  A write at ``i`` can only flip the guards of
``i`` and ``i+1`` (each guard reads ``x_i`` and its predecessor), a strict
subset of the closed neighborhood the contract allows.

The cyclic boundary counter ``diff_edges`` gates legitimacy exactly as in
the SSRmin kernel: legitimate vectors have 0 (all equal — immediately
legitimate) or 2 boundaries (the ``(x+1, ..., x+1, x, ..., x)`` staircase,
verified in closed form only then).
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.kernels.rule_table import DIJKSTRA_RULE_NAMES
from repro.kernels.successor import next_x
from repro.simulation.fastpath.kernel import FastKernel

__all__ = ["DIJKSTRA_RULE_NAMES", "DijkstraKernel"]


class DijkstraKernel(FastKernel):
    """Fast kernel for :class:`repro.algorithms.dijkstra.DijkstraKState`."""

    rule_names = DIJKSTRA_RULE_NAMES

    def __init__(self, algorithm):
        self.algorithm = algorithm
        self.n = algorithm.n
        self.K = algorithm.K
        self._x = [0] * self.n
        self._rule = [0] * self.n
        self._enabled_set: set = set()
        self._enabled_cache: Tuple[int, ...] | None = None
        self._diff_edges = 0
        self.key_base = self.K
        self.key_weights = [
            self.K ** (self.n - 1 - i) for i in range(self.n)
        ]

    # -- loading / exporting -------------------------------------------------
    def load(self, config: Any) -> None:
        n, x = self.n, self._x
        for i in range(n):
            x[i] = config[i]
        self._reindex()

    def load_key(self, key: int) -> None:
        x, K = self._x, self.K
        for i in range(self.n - 1, -1, -1):
            key, x[i] = divmod(key, K)
        self._reindex()

    def unpack_key(self, key: int) -> Tuple[int, ...]:
        n, K = self.n, self.K
        xs = [0] * n
        for i in range(n - 1, -1, -1):
            key, xs[i] = divmod(key, K)
        return tuple(xs)

    def _reindex(self) -> None:
        n, x = self.n, self._x
        self._diff_edges = sum(1 for i in range(n) if x[i] != x[i - 1])
        rule, enabled = self._rule, self._enabled_set
        enabled.clear()
        x_last = x[n - 1]
        for i in range(n):
            if i == 0:
                r = 1 if x[0] == x_last else 0
            else:
                r = 2 if x[i] != x[i - 1] else 0
            rule[i] = r
            if r:
                enabled.add(i)
        self._enabled_cache = None

    def export(self) -> Tuple[int, ...]:
        return tuple(self._x)

    def native_state(self, i: int) -> int:
        return self._x[i]

    def native_states(self, config: Any) -> Tuple[int, ...]:
        return tuple(config)

    def wrap_states(self, states: Tuple[int, ...]) -> Tuple[int, ...]:
        return states

    # -- enabledness ---------------------------------------------------------
    def enabled(self) -> Tuple[int, ...]:
        cache = self._enabled_cache
        if cache is None:
            cache = self._enabled_cache = tuple(sorted(self._enabled_set))
        return cache

    def rule_id(self, i: int) -> int:
        return self._rule[i]

    # -- stepping ------------------------------------------------------------
    def update(self, i: int) -> int:
        if self._rule[i] == 0:
            raise ValueError(f"process {i} is not enabled")
        # Shared C_i arithmetic (cyclic predecessor: x[-1] for the bottom).
        return next_x(self._x[i - 1], i, self.K)

    def apply(self, selection: Sequence[int]) -> None:
        n, K = self.n, self.K
        x, rule = self._x, self._rule
        selected = set(selection)
        if not selected:
            raise ValueError("daemon must select a non-empty set of processes")
        writes = []
        for i in selected:
            if rule[i] == 0:
                raise ValueError(f"process {i} is not enabled")
            writes.append((i, next_x(x[i - 1], i, K)))
        edges = set()
        for i, _ in writes:
            edges.add(i)
            edges.add((i + 1) % n)
        old_edges = sum(1 for e in edges if x[e] != x[e - 1])
        for i, nx in writes:
            x[i] = nx
        self._diff_edges += sum(1 for e in edges if x[e] != x[e - 1]) - old_edges

        # A write at i touches the guards of i and i+1 only.
        dirty = set()
        for i in selected:
            dirty.add(i)
            dirty.add((i + 1) % n)
        enabled = self._enabled_set
        x_last = x[n - 1]
        for j in dirty:
            if j == 0:
                r = 1 if x[0] == x_last else 0
            else:
                r = 2 if x[j] != x[j - 1] else 0
            if r != rule[j]:
                rule[j] = r
            if r:
                enabled.add(j)
            else:
                enabled.discard(j)
        self._enabled_cache = None

    # -- predicates ----------------------------------------------------------
    def is_legitimate(self) -> bool:
        de = self._diff_edges
        if de == 0:
            return True
        if de != 2:
            return False
        x, n, K = self._x, self.n, self.K
        if x[0] == x[n - 1]:
            return False
        for b in range(1, n):
            if x[b] != x[b - 1]:
                return x[0] == (x[b] + 1) % K
        raise AssertionError("diff_edges == 2 but no interior boundary")

    def privileged(self) -> Tuple[int, ...]:
        """Token holders == enabled processes for Dijkstra's ring."""
        return self.enabled()

    # -- state keys ----------------------------------------------------------
    def key(self) -> int:
        k = 0
        for v in self._x:
            k = k * self.K + v
        return k

    def pack_key(self, config: Any) -> int:
        k = 0
        for v in config:
            k = k * self.K + v
        return k

    def digit(self, state: int) -> int:
        return state
