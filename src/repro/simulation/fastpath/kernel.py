"""The :class:`FastKernel` contract shared by all packed simulation kernels.

A kernel owns one *loaded* configuration in packed form and keeps three
things consistent under :meth:`apply`:

* the packed state vectors themselves,
* the per-process resolved rule (``0`` = disabled, else the unique
  highest-priority enabled rule id),
* the enabled set, maintained **incrementally**: firing selection ``S``
  only refreshes the closed neighborhood ``{i-1, i, i+1 : i in S}``.

The incremental refresh is sound because the model is *state reading with
locality*: every guard reads only ``q_{i-1}, q_i, q_{i+1}`` (enforced by
construction in the concrete algorithms), so a write at ``i`` can flip
enabledness only at ``i-1``, ``i`` and ``i+1`` — see
``docs/PERFORMANCE.md`` for the full argument.

Kernels also provide packed-int state keys (collision-free encodings used
by the explicit-state model checker instead of hashing tuples-of-tuples)
and fast legitimacy predicates with O(1) counter-based rejection.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence as _SequenceABC
from typing import Any, Dict, Iterator, Sequence, Tuple


class FastKernel(abc.ABC):
    """Packed single-configuration simulation kernel for one algorithm.

    Mutable: :meth:`load` installs a configuration, :meth:`apply` advances
    it in place.  One kernel services one run (or one
    :class:`~repro.verification.transition_system.TransitionSystem`); they
    are cheap to construct via ``algorithm.fast_kernel()``.
    """

    #: The algorithm instance this kernel executes (set by subclasses).
    algorithm: Any
    #: Rule names indexed by rule id (index 0 unused — id 0 means disabled).
    rule_names: Tuple[str, ...]

    # -- loading / exporting -------------------------------------------------
    @abc.abstractmethod
    def load(self, config: Any) -> None:
        """Pack ``config`` into the kernel's flat vectors and rebuild the
        enabled set with a single full pass (``G_i`` computed once each)."""

    @abc.abstractmethod
    def export(self) -> Any:
        """The loaded configuration in the algorithm's native type."""

    def view(self) -> "PackedView":
        """A live, zero-copy sequence view of the loaded configuration.

        Indexing returns native local states, so daemons and predicates
        that only read ``config[i]`` work unchanged.  The view mutates as
        the kernel steps; callers needing a snapshot use :meth:`export`.
        """
        return PackedView(self)

    @abc.abstractmethod
    def native_state(self, i: int) -> Any:
        """Process ``i``'s local state in the algorithm's native form."""

    @abc.abstractmethod
    def native_states(self, config: Any) -> Tuple[Any, ...]:
        """``config`` as a flat tuple of native local states (no load)."""

    @abc.abstractmethod
    def wrap_states(self, states: Tuple[Any, ...]) -> Any:
        """Build an algorithm-native configuration from trusted states."""

    # -- enabledness ---------------------------------------------------------
    @abc.abstractmethod
    def enabled(self) -> Tuple[int, ...]:
        """The enabled set of the loaded configuration, ascending."""

    @abc.abstractmethod
    def rule_id(self, i: int) -> int:
        """Resolved rule id at ``i`` (0 = disabled)."""

    def rule_name(self, i: int) -> str:
        """Name of the unique enabled rule at ``i`` (raises if disabled)."""
        rid = self.rule_id(i)
        if rid == 0:
            raise ValueError(f"process {i} is not enabled")
        return self.rule_names[rid]

    # -- stepping ------------------------------------------------------------
    @abc.abstractmethod
    def apply(self, selection: Sequence[int]) -> None:
        """Fire ``selection`` (composite atomicity) and refresh enabledness
        incrementally over the selection's closed neighborhood.

        Raises :class:`ValueError` on an empty selection or a disabled
        process, mirroring the naive :meth:`RingAlgorithm.step`.
        """

    @abc.abstractmethod
    def update(self, i: int) -> Any:
        """The native local state process ``i`` would write if fired now.

        Computed from the *current* packed state without mutating it —
        the successor generator evaluates all enabled commands once per
        configuration and reuses them across daemon selections.
        """

    def updates(self, selection: Sequence[int]) -> Dict[int, Any]:
        """:meth:`update` for every process in ``selection``."""
        return {i: self.update(i) for i in selection}

    # -- predicates ----------------------------------------------------------
    @abc.abstractmethod
    def is_legitimate(self) -> bool:
        """Legitimacy of the loaded configuration (== algorithm semantics)."""

    @abc.abstractmethod
    def privileged(self) -> Tuple[int, ...]:
        """Token holders of the loaded configuration, ascending."""

    # -- state keys ----------------------------------------------------------
    #: Radix of the packed key: the per-process digit domain size |Q|
    #: (set by subclasses).
    key_base: int
    #: Positional weights ``key_base ** (n-1-i)`` — a key is
    #: ``sum(digit(q_i) * key_weights[i])``, so replacing one local state
    #: shifts the key by ``(digit(new) - digit(old)) * key_weights[i]``.
    #: The successor generator exploits exactly that to derive all subset
    #: keys from one loaded key with O(|selection|) integer adds.
    key_weights: Sequence[int]

    @abc.abstractmethod
    def key(self) -> int:
        """Collision-free packed-int key of the loaded configuration."""

    @abc.abstractmethod
    def pack_key(self, config: Any) -> int:
        """:meth:`key` for an arbitrary configuration, without loading it."""

    @abc.abstractmethod
    def digit(self, state: Any) -> int:
        """The packed-key digit of one native local state, ``< key_base``."""

    @abc.abstractmethod
    def load_key(self, key: int) -> None:
        """:meth:`load` directly from a packed key — no configuration
        object in between (the model checker's expansion path)."""

    @abc.abstractmethod
    def unpack_key(self, key: int) -> Any:
        """Decode a packed key back into an algorithm-native configuration
        (inverse of :meth:`pack_key`), without loading it."""


class PackedView(_SequenceABC):
    """Read-only live sequence view over a kernel's packed state.

    Quacks like a configuration for code that indexes or iterates local
    states (daemons, ``stop_when`` predicates, disorder heuristics).
    """

    __slots__ = ("_kernel",)

    def __init__(self, kernel: FastKernel):
        self._kernel = kernel

    def __len__(self) -> int:
        return self._kernel.algorithm.n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return tuple(
                self._kernel.native_state(j)
                for j in range(*i.indices(len(self)))
            )
        n = len(self)
        if not -n <= i < n:
            raise IndexError(i)
        return self._kernel.native_state(i % n)

    def __iter__(self) -> Iterator[Any]:
        kernel = self._kernel
        return (kernel.native_state(i) for i in range(len(self)))

    def __repr__(self) -> str:
        return f"PackedView({tuple(self)!r})"
