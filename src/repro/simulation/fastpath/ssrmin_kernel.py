"""Packed SSRmin kernel: flat ``x``/``h`` vectors + the shared rule table.

Local states pack into two parallel lists: the Dijkstra counter ``x_i`` and
the 2-bit handshake code ``h_i = 2*rts_i + tra_i``.  The five prioritized
SSRmin guards (Algorithm 3) collapse into the 128-entry
:data:`repro.kernels.rule_table.RULE_TABLE` indexed by
``(G_i, h_{i-1}, h_i, h_{i+1})`` — owned by the shared kernel layer
(:mod:`repro.kernels`) and consumed identically by this kernel, the
message-passing codec and the batched numpy backend.  Each table lookup
computes ``G_i`` exactly once, versus up to three recomputations per
process on the naive path; rule *execution* and the ``C_i`` successor
arithmetic delegate to :mod:`repro.kernels.successor`, the one copy both
fastpaths share.

Two cheap counters make the legitimacy test near-O(1) on the hot path:

* ``diff_edges`` — cyclic x-boundary count ``|{i : x_i != x_{i-1 mod n}}|``;
  a legitimate x-vector has 0 (all equal) or 2 (one staircase step plus the
  wraparound), so anything else rejects immediately;
* ``nonzero_h`` — processes with a non-quiet handshake; Definition 1 allows
  exactly 1 or 2.

Both are maintained incrementally under :meth:`apply`, so the full O(n)
shape verification only runs on configurations that already look converged.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.core.state import Configuration, StateTuple
from repro.kernels.packing import ssrmin_word_bound
from repro.kernels.rule_table import (
    SSRMIN_RULE_NAMES,
    build_rule_table as _build_rule_table,
)
from repro.kernels.rule_table import RULE_TABLE
from repro.kernels.successor import execute_ssrmin_word, next_x
from repro.simulation.fastpath.kernel import FastKernel

# Re-exported module globals: the kernel methods below resolve RULE_TABLE
# through *this* module's namespace at call time, so tests that
# monkeypatch ``ssrmin_kernel.RULE_TABLE`` (mutation smoke, differential
# fuzzer witnesses) keep injecting divergences exactly as before the
# table moved to :mod:`repro.kernels.rule_table`.
__all__ = ["RULE_TABLE", "SSRMIN_RULE_NAMES", "SSRminKernel"]


class SSRminKernel(FastKernel):
    """Fast kernel for :class:`repro.core.ssrmin.SSRmin`."""

    rule_names = SSRMIN_RULE_NAMES

    def __init__(self, algorithm):
        self.algorithm = algorithm
        self.n = algorithm.n
        self.K = algorithm.K
        n = self.n
        self._x = [0] * n
        self._h = [0] * n
        self._rule = [0] * n
        self._enabled_set: set = set()
        self._enabled_cache: Tuple[int, ...] | None = None
        self._diff_edges = 0
        self._nonzero_h = 0
        self.key_base = ssrmin_word_bound(self.K)
        self.key_weights = [
            self.key_base ** (n - 1 - i) for i in range(n)
        ]

    # -- loading / exporting -------------------------------------------------
    def load(self, config: Any) -> None:
        n, x, h = self.n, self._x, self._h
        states = config.states if isinstance(config, Configuration) else config
        for i in range(n):
            xi, rts, tra = states[i]
            x[i] = xi
            h[i] = (rts << 1) | tra
        self._reindex()

    def load_key(self, key: int) -> None:
        x, h, base = self._x, self._h, self.key_base
        for i in range(self.n - 1, -1, -1):
            key, d = divmod(key, base)
            x[i] = d >> 2
            h[i] = d & 3
        self._reindex()

    def unpack_key(self, key: int) -> Configuration:
        n, base = self.n, self.key_base
        states = [None] * n
        for i in range(n - 1, -1, -1):
            key, d = divmod(key, base)
            states[i] = (d >> 2, (d >> 1) & 1, d & 1)
        return Configuration.from_states(tuple(states))

    def _reindex(self) -> None:
        """Rebuild counters and the enabled set from the packed vectors —
        one full pass computing ``G_i`` exactly once per process."""
        n, x, h = self.n, self._x, self._h
        self._diff_edges = sum(1 for i in range(n) if x[i] != x[i - 1])
        self._nonzero_h = sum(1 for v in h if v)
        rule, table = self._rule, RULE_TABLE
        enabled = self._enabled_set
        enabled.clear()
        x_last = x[n - 1]
        for i in range(n):
            g = (x[i] == x_last) if i == 0 else (x[i] != x[i - 1])
            r = table[(g << 6) | (h[i - 1] << 4) | (h[i] << 2) | h[(i + 1) % n]]
            rule[i] = r
            if r:
                enabled.add(i)
        self._enabled_cache = None

    def export(self) -> Configuration:
        x, h = self._x, self._h
        return Configuration.from_states(
            tuple((x[i], h[i] >> 1, h[i] & 1) for i in range(self.n))
        )

    def native_state(self, i: int) -> StateTuple:
        hi = self._h[i]
        return (self._x[i], hi >> 1, hi & 1)

    def native_states(self, config: Any) -> Tuple[StateTuple, ...]:
        return config.states if isinstance(config, Configuration) else tuple(config)

    def wrap_states(self, states: Tuple[StateTuple, ...]) -> Configuration:
        return Configuration.from_states(states)

    # -- enabledness ---------------------------------------------------------
    def enabled(self) -> Tuple[int, ...]:
        cache = self._enabled_cache
        if cache is None:
            cache = self._enabled_cache = tuple(sorted(self._enabled_set))
        return cache

    def rule_id(self, i: int) -> int:
        return self._rule[i]

    # -- stepping ------------------------------------------------------------
    def update(self, i: int) -> StateTuple:
        r = self._rule[i]
        if r == 0:
            raise ValueError(f"process {i} is not enabled")
        # Delegate to the shared packed-word executor (the cyclic
        # predecessor word: ``x[i-1]`` is ``x[n-1]`` for the bottom).
        x, h = self._x, self._h
        word = execute_ssrmin_word(
            r, (x[i] << 2) | h[i], (x[i - 1] << 2) | h[i - 1], i, self.K
        )
        return (word >> 2, (word >> 1) & 1, word & 1)

    def apply(self, selection: Sequence[int]) -> None:
        n, K = self.n, self.K
        x, h, rule = self._x, self._h, self._rule
        selected = set(selection)
        if not selected:
            raise ValueError("daemon must select a non-empty set of processes")
        # Commands are computed from the OLD state (composite atomicity).
        writes = []
        for i in selected:
            r = rule[i]
            if r == 0:
                raise ValueError(f"process {i} is not enabled")
            if r == 1:
                writes.append((i, -1, 2))
            elif r == 3:
                writes.append((i, -1, 1))
            elif r == 5:
                writes.append((i, -1, 0))
            else:  # R2 / R4: x <- C_i (shared successor arithmetic)
                writes.append((i, next_x(x[i - 1], i, K), 0))

        # Incremental counter maintenance: compare the touched x-edges and
        # handshake entries before/after the simultaneous writes.
        edges = set()
        for i, nx, _ in writes:
            if nx >= 0:
                edges.add(i)
                edges.add((i + 1) % n)
        old_edges = sum(1 for e in edges if x[e] != x[e - 1])
        old_nz = sum(1 for i, _, _ in writes if h[i])
        for i, nx, nh in writes:
            if nx >= 0:
                x[i] = nx
            h[i] = nh
        self._diff_edges += sum(1 for e in edges if x[e] != x[e - 1]) - old_edges
        self._nonzero_h += sum(1 for i, _, _ in writes if h[i]) - old_nz

        # Neighborhood invalidation: only {i-1, i, i+1 : i in S} can change.
        dirty = set()
        for i in selected:
            dirty.add((i - 1) % n)
            dirty.add(i)
            dirty.add((i + 1) % n)
        table, enabled = RULE_TABLE, self._enabled_set
        x_last = x[n - 1]
        for j in dirty:
            g = (x[j] == x_last) if j == 0 else (x[j] != x[j - 1])
            r = table[(g << 6) | (h[j - 1] << 4) | (h[j] << 2) | h[(j + 1) % n]]
            if r != rule[j]:
                rule[j] = r
            if r:
                enabled.add(j)
            else:
                enabled.discard(j)
        self._enabled_cache = None

    # -- predicates ----------------------------------------------------------
    def _primary_position(self) -> int:
        """Token position of the (pre-validated) legitimate x-vector."""
        if self._diff_edges == 0:
            return 0
        x, n = self._x, self.n
        for b in range(1, n):
            if x[b] != x[b - 1]:
                return b
        raise AssertionError("diff_edges == 2 but no interior boundary")

    def _x_part_legitimate(self) -> bool:
        """Dijkstra-legitimacy of the x-vector, counter-gated."""
        de = self._diff_edges
        if de == 0:
            return True
        if de != 2:
            return False
        x, n, K = self._x, self.n, self.K
        if x[0] == x[n - 1]:
            # The wraparound edge must be one of the two boundaries.
            return False
        b = self._primary_position()
        return x[0] == (x[b] + 1) % K

    def dijkstra_legitimate(self) -> bool:
        """Legitimacy of the embedded Dijkstra ring (the Lemma 6/8 phase-1
        milestone tracked by :func:`repro.simulation.convergence.converge`)."""
        return self._x_part_legitimate()

    def is_legitimate(self) -> bool:
        nz = self._nonzero_h
        if nz not in (1, 2) or not self._x_part_legitimate():
            return False
        h, pos = self._h, self._primary_position()
        if nz == 1:
            # Shape <0.1> or <1.0> at the token position, quiet elsewhere.
            return h[pos] in (1, 2)
        # Shape <1.0> at pos, <0.1> at its successor, quiet elsewhere.
        return h[pos] == 2 and h[(pos + 1) % self.n] == 1

    def privileged(self) -> Tuple[int, ...]:
        x, h, n = self._x, self._h, self.n
        x_last = x[n - 1]
        out = []
        for i in range(n):
            g = (x[i] == x_last) if i == 0 else (x[i] != x[i - 1])
            if g:
                out.append(i)
                continue
            hi = h[i]
            # tra_i = 1, or rts_i = 1 with a quiet successor.
            if (hi & 1) or ((hi & 2) and h[(i + 1) % n] == 0):
                out.append(i)
        return tuple(out)

    # -- state keys ----------------------------------------------------------
    def key(self) -> int:
        x, h, base = self._x, self._h, self.K << 2
        k = 0
        for i in range(self.n):
            k = k * base + ((x[i] << 2) | h[i])
        return k

    def pack_key(self, config: Any) -> int:
        states = config.states if isinstance(config, Configuration) else config
        base = self.key_base
        k = 0
        for xi, rts, tra in states:
            k = k * base + ((xi << 2) | (rts << 1) | tra)
        return k

    def digit(self, state: StateTuple) -> int:
        x, rts, tra = state
        return (x << 2) | (rts << 1) | tra
