"""Fast simulation kernels: packed state + incremental enabled-set maintenance.

The naive execution path re-evaluates every rule guard of every process at
every step (``RingAlgorithm.enabled_processes`` -> ``RuleSet.enabled_rule``),
recomputing the Dijkstra guard ``G_i`` up to three times per process — an
O(5n) Python-call cascade per transition.  A :class:`FastKernel` replaces
that with

* **packed state** — configurations live in flat parallel lists (``x`` plus a
  2-bit handshake code ``h = 2*rts + tra``) instead of tuples-of-tuples;
* **single-pass enabledness** — each process's unique enabled rule is
  resolved in one table lookup computing ``G_i`` exactly once;
* **incremental maintenance** — guards only read ``q_{i-1}, q_i, q_{i+1}``,
  so after a step firing selection ``S`` only the closed neighborhood
  ``{i-1, i, i+1 : i in S}`` can change enabledness, making the per-step
  cost O(|S|) instead of O(5n).

Kernels are wired behind the existing interfaces: the engine
(:class:`~repro.simulation.engine.SharedMemorySimulator`), the convergence
driver (:func:`~repro.simulation.convergence.converge`), the vectorized
batch engine (shared rule table) and the explicit-state
:class:`~repro.verification.transition_system.TransitionSystem` all probe
``algorithm.fast_kernel()`` and fall back to the naive path when it returns
``None``.  Every entry point takes ``use_fastpath=False`` as an escape
hatch, and the ``REPRO_FASTPATH=0`` environment variable (or the
:func:`fastpath_override` context manager) disables kernels globally.

Equivalence with the naive path — same enabled sets, same rule names, same
successor configurations — is enforced by the differential suite in
``tests/simulation/test_fastpath.py`` (randomized runs under every daemon
plus the exhaustive n=3 state space).  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.simulation.fastpath.kernel import FastKernel, PackedView

#: Process-wide default, read once at import: ``REPRO_FASTPATH=0`` (or
#: ``false``/``no``/``off``) disables every kernel without touching call
#: sites — the coarse escape hatch for sweeps and worker processes.
_ENV_DEFAULT = os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in (
    "0", "false", "no", "off",
)

#: Scoped override installed by :func:`fastpath_override` (None = defer to
#: the environment default).
_OVERRIDE: Optional[bool] = None


def fastpath_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve whether the fast path should be used.

    Precedence: an ``explicit`` per-call-site value (``use_fastpath=...``)
    beats the scoped :func:`fastpath_override`, which beats the
    ``REPRO_FASTPATH`` environment default (on).
    """
    if explicit is not None:
        return explicit
    if _OVERRIDE is not None:
        return _OVERRIDE
    return _ENV_DEFAULT


@contextmanager
def fastpath_override(enabled: bool) -> Iterator[None]:
    """Force the fast path on or off for a dynamic scope.

    Used by differential tests and by sweep drivers that want one naive
    reference run next to fast runs without re-plumbing every call.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = enabled
    try:
        yield
    finally:
        _OVERRIDE = previous


def resolve_kernel(algorithm, explicit: Optional[bool] = None):
    """The algorithm's kernel if fastpath is enabled and supported, else None.

    The capability probe is ``algorithm.fast_kernel()``: algorithms without
    a kernel (the base-class default) return ``None`` and every caller
    silently keeps the naive path.
    """
    if not fastpath_enabled(explicit):
        return None
    probe = getattr(algorithm, "fast_kernel", None)
    return probe() if callable(probe) else None


__all__ = [
    "FastKernel",
    "PackedView",
    "fastpath_enabled",
    "fastpath_override",
    "resolve_kernel",
]
