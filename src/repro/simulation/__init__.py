"""State-reading / composite-atomicity simulation (paper section 2.1).

* :mod:`repro.simulation.engine` — the step loop: daemon selects, processes
  move atomically, monitors observe.
* :mod:`repro.simulation.execution` — recorded executions (configurations +
  moves), replayable and renderable as Figure-4 style traces.
* :mod:`repro.simulation.monitors` — pluggable observers: token counts,
  legitimacy, per-rule censuses (Lemma 5's W135/W24 partition), mutual
  inclusion / (l,k)-critical-section checking.
* :mod:`repro.simulation.convergence` — run-until-legitimate drivers and
  convergence-time measurement.
* :mod:`repro.simulation.initial` — initial-configuration generators
  (random, perturbed-legitimate, crafted worst-case-flavoured patterns).
* :mod:`repro.simulation.batch` — a numpy-vectorized batch engine advancing
  thousands of independent SSRmin instances in lockstep (the scaling-study
  hot loop, equivalence-tested against the scalar engine).
"""

from repro.simulation.engine import SharedMemorySimulator, SimulationResult
from repro.simulation.execution import Execution, Move
from repro.simulation.monitors import (
    Monitor,
    TokenCountMonitor,
    LegitimacyMonitor,
    RuleCensusMonitor,
    CriticalSectionMonitor,
    InvariantViolation,
)
from repro.simulation.convergence import (
    converge,
    convergence_steps,
    ConvergenceResult,
)
from repro.simulation.batch import BatchSSRmin, BatchResult, batch_convergence_steps
from repro.simulation.serialize import save_execution, load_execution

__all__ = [
    "SharedMemorySimulator",
    "SimulationResult",
    "Execution",
    "Move",
    "Monitor",
    "TokenCountMonitor",
    "LegitimacyMonitor",
    "RuleCensusMonitor",
    "CriticalSectionMonitor",
    "InvariantViolation",
    "converge",
    "convergence_steps",
    "ConvergenceResult",
    "BatchSSRmin",
    "BatchResult",
    "batch_convergence_steps",
    "save_execution",
    "load_execution",
]
