"""Recorded executions of state-reading simulations.

An execution ``X = gamma_0, gamma_1, ...`` (paper section 2.1) is stored as
the list of configurations plus, for each transition, the :class:`Move` set
that produced it (which processes fired which rules).  Executions replay via
:class:`repro.daemons.replay.ReplayDaemon` and render via
:mod:`repro.analysis.tracefmt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Move:
    """One process's rule execution within a step.

    Attributes
    ----------
    process:
        Index of the process that moved.
    rule:
        Name of the rule it executed (e.g. ``"R1"``, ``"D2"``).
    """

    process: int
    rule: str


@dataclass
class Execution:
    """A recorded execution: ``len(moves) == len(configurations) - 1``.

    ``configurations[t]`` is ``gamma_t``; ``moves[t]`` is the set of
    simultaneous :class:`Move`\\ s taking ``gamma_t`` to ``gamma_{t+1}``.
    """

    configurations: List[Any] = field(default_factory=list)
    moves: List[Tuple[Move, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.configurations and len(self.moves) != len(self.configurations) - 1:
            raise ValueError(
                f"{len(self.configurations)} configurations need "
                f"{len(self.configurations) - 1} move sets, got {len(self.moves)}"
            )

    # -- construction ----------------------------------------------------------
    def start(self, initial: Any) -> None:
        """Record the initial configuration (must be the first call)."""
        if self.configurations:
            raise ValueError("execution already started")
        self.configurations.append(initial)

    def record(self, moves: Sequence[Move], next_config: Any) -> None:
        """Record one transition."""
        if not self.configurations:
            raise ValueError("call start() before record()")
        self.moves.append(tuple(moves))
        self.configurations.append(next_config)

    # -- queries --------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Number of transitions."""
        return len(self.moves)

    @property
    def initial(self) -> Any:
        """``gamma_0``."""
        return self.configurations[0]

    @property
    def final(self) -> Any:
        """The last recorded configuration."""
        return self.configurations[-1]

    def selections(self) -> List[Tuple[int, ...]]:
        """Per-step process selections — feed to a ReplayDaemon."""
        return [tuple(sorted(m.process for m in step)) for step in self.moves]

    def rule_counts(self) -> dict:
        """Total executions per rule name over the whole execution."""
        counts: dict = {}
        for step in self.moves:
            for m in step:
                counts[m.rule] = counts.get(m.rule, 0) + 1
        return counts

    def moves_by_process(self, i: int) -> List[Tuple[int, str]]:
        """``(step, rule)`` pairs for every move by process ``i``."""
        out = []
        for t, step in enumerate(self.moves):
            for m in step:
                if m.process == i:
                    out.append((t, m.rule))
        return out

    def __iter__(self) -> Iterator[Any]:
        return iter(self.configurations)

    def __len__(self) -> int:
        return len(self.configurations)

    def slice(self, start: int, stop: Optional[int] = None) -> "Execution":
        """Sub-execution covering configurations ``start .. stop``."""
        stop = len(self.configurations) if stop is None else stop
        return Execution(
            configurations=self.configurations[start:stop],
            moves=self.moves[start : max(stop - 1, start)],
        )
