"""Save and reload recorded executions as JSON.

A recorded :class:`~repro.simulation.execution.Execution` is a valuable
artifact: a regression trace, a counterexample from a property test, or a
figure input.  This module round-trips executions through a stable JSON
schema so they can be committed, shared and replayed bit-exactly (via
:class:`~repro.daemons.replay.ReplayDaemon`).

Local states serialize as plain lists; SSRmin's ``Configuration`` wrapper is
restored when the header says so.  The schema carries the algorithm's
parameters so a loader can rebuild the matching instance.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

from repro.core.state import Configuration
from repro.simulation.execution import Execution, Move

#: Schema version written into every file.
SCHEMA_VERSION = 1


def _state_to_jsonable(state: Any) -> Any:
    if isinstance(state, tuple):
        return [_state_to_jsonable(s) for s in state]
    return state


def _config_to_jsonable(config: Any) -> List[Any]:
    return [_state_to_jsonable(s) for s in config]


def _tuplify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def execution_to_dict(
    execution: Execution,
    algorithm_name: str = "",
    parameters: Optional[Dict[str, Any]] = None,
    configuration_class: str = "tuple",
) -> Dict[str, Any]:
    """Serialize an execution to a JSON-compatible dict.

    Parameters
    ----------
    execution:
        The recorded execution.
    algorithm_name:
        Free-form identifier (e.g. ``"SSRmin"``).
    parameters:
        Algorithm parameters needed to rebuild the instance (e.g.
        ``{"n": 5, "K": 6}``).
    configuration_class:
        ``"tuple"`` or ``"Configuration"`` — how to restore configurations.
    """
    if configuration_class not in ("tuple", "Configuration"):
        raise ValueError(f"unknown configuration_class {configuration_class!r}")
    return {
        "schema": SCHEMA_VERSION,
        "algorithm": algorithm_name,
        "parameters": dict(parameters or {}),
        "configuration_class": configuration_class,
        "configurations": [
            _config_to_jsonable(c) for c in execution.configurations
        ],
        "moves": [
            [[m.process, m.rule] for m in step] for step in execution.moves
        ],
    }


def execution_from_dict(data: Dict[str, Any]) -> Tuple[Execution, Dict[str, Any]]:
    """Inverse of :func:`execution_to_dict`.

    Returns ``(execution, metadata)`` where metadata carries the algorithm
    name and parameters.
    """
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    cls = data.get("configuration_class", "tuple")
    configs: List[Any] = []
    for raw in data["configurations"]:
        states = _tuplify(raw)
        configs.append(Configuration(states) if cls == "Configuration" else states)
    moves = [
        tuple(Move(process, rule) for process, rule in step)
        for step in data["moves"]
    ]
    execution = Execution(configurations=configs, moves=moves)
    meta = {
        "algorithm": data.get("algorithm", ""),
        "parameters": data.get("parameters", {}),
    }
    return execution, meta


def save_execution(
    execution: Execution,
    path_or_file: Union[str, TextIO],
    **meta: Any,
) -> None:
    """Write an execution to a JSON file (path or open text file)."""
    payload = execution_to_dict(execution, **meta)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            json.dump(payload, fh)
    else:
        json.dump(payload, path_or_file)


def load_execution(
    path_or_file: Union[str, TextIO],
) -> Tuple[Execution, Dict[str, Any]]:
    """Read an execution written by :func:`save_execution`."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as fh:
            data = json.load(fh)
    else:
        data = json.load(path_or_file)
    return execution_from_dict(data)
