"""Convergence-time measurement (Theorem 2: O(n^2) steps).

:func:`converge` runs a simulation until the configuration is legitimate and
reports how many steps that took; :func:`convergence_steps` is the batch
version used by the scaling study (thm2 bench), which feeds its samples to
:mod:`repro.analysis.scaling` for the log-log exponent fit.

Both drivers use the packed :mod:`~repro.simulation.fastpath` kernel when
the algorithm provides one — the run-until-legitimate workload is exactly
where the kernel's O(|S|) incremental enabledness and counter-gated
legitimacy test pay off (``use_fastpath=False`` restores the naive path;
the two are differential-tested to take identical schedules).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.algorithms.base import RingAlgorithm
from repro.daemons.base import Daemon
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.fastpath import resolve_kernel
from repro.telemetry.session import current_session

#: Flush interval for locally-aggregated step counters (matches the engine).
_FLUSH_EVERY = 256


@dataclass
class ConvergenceResult:
    """Outcome of a run-until-legitimate simulation.

    Attributes
    ----------
    converged:
        Whether a legitimate configuration was reached within the budget.
    steps:
        Steps taken to reach it (meaningless when ``converged`` is False).
    dijkstra_steps:
        Steps until the *embedded Dijkstra ring* converged (only populated
        for SSRmin, where Lemma 8's two-phase analysis applies); ``None``
        otherwise.
    final_config:
        The configuration at stop time.
    """

    converged: bool
    steps: int
    dijkstra_steps: Optional[int]
    final_config: Any


def _observed(result: "ConvergenceResult") -> "ConvergenceResult":
    """Feed a finished convergence run into the telemetry histogram."""
    tel = current_session()
    if tel is not None and result.converged:
        tel.registry.histogram(
            "convergence_steps", "steps until first legitimacy"
        ).observe(float(result.steps), engine="scalar")
    return result


def converge(
    algorithm: RingAlgorithm,
    daemon: Daemon,
    initial: Any,
    max_steps: Optional[int] = None,
    use_fastpath: Optional[bool] = None,
) -> ConvergenceResult:
    """Run from ``initial`` until the configuration is legitimate.

    ``max_steps`` defaults to a generous multiple of the proven O(n^2) bound
    so non-convergence within the budget is strong evidence of a bug, not an
    unlucky schedule.  ``use_fastpath`` forces the packed kernel on/off
    (default: probe the algorithm).
    """
    n = algorithm.n
    if max_steps is None:
        max_steps = 60 * n * n + 600

    # Track the embedded-Dijkstra convergence point when available (SSRmin).
    projection = getattr(algorithm, "dijkstra_projection", None)
    proj = projection() if callable(projection) else None

    config = algorithm.normalize_configuration(initial)
    kernel = resolve_kernel(algorithm, use_fastpath)

    if kernel is not None:
        return _observed(_converge_fast(
            algorithm, daemon, config, max_steps, kernel,
            track_dijkstra=proj is not None,
        ))

    if proj is not None:
        # Run step by step so we can observe the first Dijkstra-legitimate
        # configuration; using stop_when would skip that observation.  This
        # loop bypasses the engine, so it keeps the steps_total counter
        # honest itself (counters only — per-step events would swamp sweep
        # traces).
        tel = current_session()
        steps_total = (
            tel.registry.counter("steps_total", "engine transitions taken")
            if tel is not None else None
        )
        dijkstra_steps: Optional[int] = None
        steps = 0
        if proj.is_legitimate(config):
            dijkstra_steps = 0
        while steps < max_steps and not algorithm.is_legitimate(config):
            enabled = algorithm.enabled_processes(config)
            if not enabled:
                return ConvergenceResult(False, steps, dijkstra_steps, config)
            selection = daemon.select(enabled, config, steps)
            config = algorithm.step(config, selection)
            steps += 1
            if steps_total is not None:
                steps_total.inc(1, daemon=daemon.name)
            if dijkstra_steps is None and proj.is_legitimate(config):
                dijkstra_steps = steps
        converged = algorithm.is_legitimate(config)
        return _observed(
            ConvergenceResult(converged, steps, dijkstra_steps, config)
        )

    sim = SharedMemorySimulator(algorithm, daemon, use_fastpath=False)
    result = sim.run(
        config, max_steps=max_steps, stop_when=algorithm.is_legitimate, record=False
    )
    return _observed(ConvergenceResult(
        result.stopped_by_predicate or algorithm.is_legitimate(result.final_config),
        result.steps,
        None,
        result.final_config,
    ))


def _converge_fast(
    algorithm: RingAlgorithm,
    daemon: Daemon,
    config: Any,
    max_steps: int,
    kernel: Any,
    track_dijkstra: bool,
) -> ConvergenceResult:
    """Kernel-driven run-until-legitimate loop.

    Matches its naive counterpart move for move: same daemon calls (the
    naive projection loop never calls ``daemon.reset``; the engine-backed
    path does), same selection order, counters-only telemetry batched
    every :data:`_FLUSH_EVERY` steps.
    """
    if not track_dijkstra:
        daemon.reset()
    tel = current_session()
    steps_total = (
        tel.registry.counter("steps_total", "engine transitions taken")
        if tel is not None else None
    )
    kernel.load(config)
    view = kernel.view()
    dijkstra_legit = (
        kernel.dijkstra_legitimate
        if track_dijkstra and hasattr(kernel, "dijkstra_legitimate")
        else None
    )
    dijkstra_steps: Optional[int] = None
    if dijkstra_legit is not None and dijkstra_legit():
        dijkstra_steps = 0

    select = daemon.select
    is_legit = kernel.is_legitimate
    apply = kernel.apply
    steps = 0
    pending = 0
    try:
        while steps < max_steps and not is_legit():
            enabled = kernel.enabled()
            if not enabled:
                return ConvergenceResult(
                    False, steps, dijkstra_steps, kernel.export())
            apply(select(enabled, view, steps))
            steps += 1
            if steps_total is not None:
                pending += 1
                if pending >= _FLUSH_EVERY:
                    steps_total.inc(pending, daemon=daemon.name)
                    pending = 0
            if dijkstra_legit is not None and dijkstra_steps is None:
                if dijkstra_legit():
                    dijkstra_steps = steps
    finally:
        if steps_total is not None and pending:
            steps_total.inc(pending, daemon=daemon.name)
    return ConvergenceResult(is_legit(), steps, dijkstra_steps, kernel.export())


def convergence_steps(
    algorithm_factory: Callable[[], RingAlgorithm],
    daemon_factory: Callable[[RingAlgorithm, int], Daemon],
    trials: int,
    seed: int = 0,
    max_steps: Optional[int] = None,
    use_fastpath: Optional[bool] = None,
) -> List[int]:
    """Measure convergence steps over ``trials`` random initial configurations.

    Parameters
    ----------
    algorithm_factory:
        Builds a fresh algorithm instance (factories keep trials independent).
    daemon_factory:
        ``(algorithm, trial_seed) -> Daemon``.
    trials:
        Number of random starts.
    seed:
        Master seed; trial ``t`` uses ``seed + t`` for both the initial
        configuration and the daemon.
    use_fastpath:
        Forwarded to :func:`converge` for every trial.

    Returns
    -------
    list of int
        Convergence step counts; raises :class:`RuntimeError` if any trial
        fails to converge within the budget (which would falsify Lemma 6).
    """
    samples: List[int] = []
    for t in range(trials):
        alg = algorithm_factory()
        rng = random.Random(seed + t)
        initial = alg.random_configuration(rng)
        daemon = daemon_factory(alg, seed + t)
        res = converge(alg, daemon, initial, max_steps=max_steps,
                       use_fastpath=use_fastpath)
        if not res.converged:
            raise RuntimeError(
                f"trial {t} did not converge within budget from {initial!r}"
            )
        samples.append(res.steps)
    return samples
