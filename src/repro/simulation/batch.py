"""Vectorized batch simulation of SSRmin (numpy).

The convergence-scaling study (Theorem 2) runs thousands of independent
trials; stepping each through the pure-Python engine is the bottleneck.
Following the scientific-Python optimization workflow (make it work → test
it → vectorize the measured hotspot), this module re-implements SSRmin's
step function as array operations over a whole *batch* of configurations at
once: states live in ``(trials, n)`` integer arrays and every trial advances
per step with one fused set of numpy expressions.

Semantics: each step applies a **Bernoulli distributed daemon** with
parameter ``p`` — every enabled process moves independently with probability
``p``, and trials whose coin flips all miss fall back to one uniformly
chosen enabled process (matching
:class:`repro.daemons.distributed.BernoulliDaemon`).  ``p = 1`` is the
synchronous daemon, reproducing the scalar engine exactly — the equivalence
the test suite asserts.

The vectorized legitimacy test mirrors :func:`repro.core.legitimacy.is_legitimate`
and is property-tested against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.kernels.batched import (
    RULE_LUT as _RULE_LUT,
    batched_commands,
    batched_guards,
    batched_legitimate,
    batched_privileged_counts,
)
from repro.telemetry.session import current_session


@dataclass
class BatchResult:
    """Outcome of a batch convergence run.

    Attributes
    ----------
    steps:
        ``(trials,)`` int array — steps until each trial first became
        legitimate (``-1`` if it exhausted the budget, which would falsify
        Lemma 6).
    converged:
        Boolean mask of trials that converged within the budget.
    """

    steps: np.ndarray
    converged: np.ndarray

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())


class BatchSSRmin:
    """A batch of independent SSRmin instances advanced in lockstep.

    Parameters
    ----------
    n, K:
        Instance parameters (``K > n`` as usual).
    trials:
        Number of independent configurations in the batch.
    p:
        Bernoulli daemon parameter in ``(0, 1]``.
    seed:
        Seed for the daemon's RNG (numpy Generator).
    """

    def __init__(self, n: int, K: Optional[int] = None, trials: int = 1,
                 p: float = 1.0, seed: int = 0):
        if n < 3:
            raise ValueError(f"SSRmin requires n >= 3, got {n}")
        K = n + 1 if K is None else K
        if K <= n:
            raise ValueError(f"K must exceed n (got K={K}, n={n})")
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.n = n
        self.K = K
        self.trials = trials
        self.p = p
        self.rng = np.random.default_rng(seed)
        #: Counter components, shape (trials, n).
        self.X = np.zeros((trials, n), dtype=np.int64)
        #: Handshake code per process: 2*rts + tra in {0, 1, 2, 3}.
        self.H = np.zeros((trials, n), dtype=np.int64)

    # -- state import/export -------------------------------------------------
    def set_configurations(self, configs) -> None:
        """Load explicit configurations (iterable of (x, rts, tra) rows)."""
        X = np.empty((self.trials, self.n), dtype=np.int64)
        H = np.empty((self.trials, self.n), dtype=np.int64)
        for t, config in enumerate(configs):
            for i, (x, rts, tra) in enumerate(config):
                X[t, i] = x
                H[t, i] = 2 * rts + tra
        self.X, self.H = X, H

    def randomize(self, seed: Optional[int] = None) -> None:
        """Uniformly random configurations for every trial."""
        rng = np.random.default_rng(self.rng.integers(2 ** 63) if seed is None else seed)
        self.X = rng.integers(0, self.K, size=(self.trials, self.n))
        self.H = rng.integers(0, 4, size=(self.trials, self.n))

    def configuration(self, t: int):
        """Trial ``t`` as a :class:`repro.core.state.Configuration`."""
        from repro.core.state import Configuration

        return Configuration(
            (int(self.X[t, i]), int(self.H[t, i]) // 2, int(self.H[t, i]) % 2)
            for i in range(self.n)
        )

    # -- vectorized guards ------------------------------------------------------
    def _guards(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(G, rule)`` arrays; rule in {0 (none), 1..5} after priority.

        One gather through the shared
        :data:`~repro.kernels.rule_table.RULE_TABLE` (indexed
        ``(G << 6) | (h_pred << 4) | (h_own << 2) | h_succ``) replaces
        the five separate guard masks + ``np.select`` cascade — evaluated
        by :func:`repro.kernels.batched.batched_guards`, the same
        expressions the sweep engine's batched-cell mode runs.
        """
        return batched_guards(self.X, self.H)

    def enabled_counts(self) -> np.ndarray:
        """Number of enabled processes per trial."""
        _, rule = self._guards()
        return (rule > 0).sum(axis=1)

    def privileged_counts(self) -> np.ndarray:
        """Privileged processes per trial (vectorized token predicates).

        Mirrors :meth:`repro.core.ssrmin.SSRmin.privileged`: a process is
        privileged iff it holds the primary token (``G_i``) or the secondary
        token (``tra_i = 1`` or ``rts_i = 1`` with a quiet successor).
        Theorem 1 puts this in ``[1, 2]`` for legitimate configurations.
        """
        return batched_privileged_counts(self.X, self.H)

    # -- vectorized legitimacy ---------------------------------------------
    def legitimate_mask(self) -> np.ndarray:
        """Boolean mask of trials currently in a legitimate configuration.

        Mirrors Definition 1: the x-vector is a Dijkstra staircase with
        token position ``pos`` and the handshake vector is one of the three
        shapes anchored at ``pos`` — evaluated by
        :func:`repro.kernels.batched.batched_legitimate`.
        """
        return batched_legitimate(self.X, self.H, self.K)

    # -- stepping -------------------------------------------------------------
    def step(self, active: Optional[np.ndarray] = None) -> None:
        """One daemon step for every (active) trial, in place.

        ``active`` masks out trials that should not move (e.g. already
        converged ones during a convergence run).
        """
        X, H, n, K = self.X, self.H, self.n, self.K
        G, rule = self._guards()
        enabled = rule > 0
        if active is not None:
            enabled &= active[:, None]

        # Bernoulli selection with a non-empty fallback per trial.
        coins = self.rng.random(size=enabled.shape) < self.p
        selected = enabled & coins
        empty = enabled.any(axis=1) & ~selected.any(axis=1)
        if empty.any():
            # Pick one uniformly random enabled process for each empty trial.
            weights = enabled[empty].astype(float)
            weights /= weights.sum(axis=1, keepdims=True)
            cum = weights.cumsum(axis=1)
            draws = self.rng.random(size=(int(empty.sum()), 1))
            chosen = (draws < cum).argmax(axis=1)
            sel_rows = np.zeros_like(weights, dtype=bool)
            sel_rows[np.arange(sel_rows.shape[0]), chosen] = True
            selected[empty] = sel_rows

        fire = np.where(selected, rule, 0)

        # Commands.  C_i: bottom gets X[n-1]+1, others copy the predecessor —
        # computed from the OLD X (composite atomicity).
        C = batched_commands(X, K)

        new_H = H.copy()
        new_X = X.copy()
        new_H[fire == 1] = 2            # <1.0>
        mask24 = (fire == 2) | (fire == 4)
        new_H[mask24] = 0               # <0.0>
        new_X[mask24] = C[mask24]
        new_H[fire == 3] = 1            # <0.1>
        new_H[fire == 5] = 0            # <0.0>

        self.X, self.H = new_X, new_H

    def run_until_legitimate(self, max_steps: int) -> BatchResult:
        """Advance all trials until legitimate (or the budget runs out)."""
        tel = current_session()
        if tel is not None:
            batch_steps = tel.registry.counter(
                "batch_steps_total", "vectorized lockstep iterations")
            tel.bus.publish(
                "batch", "run_start", 0.0,
                algorithm="BatchSSRmin", n=self.n, K=self.K,
                daemon={"name": "BernoulliDaemon", "p": self.p,
                        "distributed": True},
                trials=self.trials, max_steps=max_steps,
            )
        steps = np.full(self.trials, -1, dtype=np.int64)
        legit = self.legitimate_mask()
        steps[legit] = 0
        active = ~legit
        k = 0
        for k in range(1, max_steps + 1):
            if not active.any():
                k -= 1
                break
            self.step(active=active)
            if tel is not None:
                batch_steps.inc()
                tel.bus.publish("batch", "batch_step", float(k),
                                step=k, active=int(active.sum()))
            legit = self.legitimate_mask()
            newly = active & legit
            steps[newly] = k
            active &= ~legit
        if tel is not None:
            hist = tel.registry.histogram(
                "convergence_steps", "steps until first legitimacy")
            for s in steps[steps >= 0]:
                hist.observe(float(s), engine="batch")
            tel.bus.publish(
                "batch", "run_end", float(k),
                trials=self.trials,
                converged=int((steps >= 0).sum()),
            )
        return BatchResult(steps=steps, converged=steps >= 0)


def batch_convergence_steps(
    n: int,
    trials: int,
    K: Optional[int] = None,
    p: float = 0.5,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> np.ndarray:
    """Convenience: convergence steps for ``trials`` random starts.

    Raises :class:`RuntimeError` if any trial fails to converge within the
    budget (default ``60 n^2 + 600``, the Theorem-2 regime with slack).
    """
    batch = BatchSSRmin(n, K, trials=trials, p=p, seed=seed)
    batch.randomize(seed=seed + 1)
    budget = max_steps if max_steps is not None else 60 * n * n + 600
    result = batch.run_until_legitimate(budget)
    if not result.all_converged:
        raise RuntimeError(
            f"{int((~result.converged).sum())} of {trials} trials did not "
            f"converge within {budget} steps"
        )
    return result.steps
