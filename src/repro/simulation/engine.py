"""The state-reading / composite-atomicity simulation engine.

One step of the loop (paper section 2.1):

1. compute the enabled set; if empty, the system is deadlocked (Lemma 4
   proves this never happens for SSRmin — the engine still detects it);
2. ask the daemon for a non-empty subset;
3. every selected process reads the *current* configuration, computes its
   single enabled rule's command, and all writes land simultaneously;
4. monitors observe the transition.

The engine is deterministic given the algorithm, daemon (seeded) and initial
configuration, and records a full :class:`~repro.simulation.execution.Execution`
unless asked not to (large sweeps keep memory flat with ``record=False``).

Two execution strategies share that contract:

* the **naive path** walks the algorithm's rule set per process per step —
  the reference implementation, kept deliberately simple;
* the **fast path** drives a packed :mod:`~repro.simulation.fastpath`
  kernel with incremental enabled-set maintenance, used automatically when
  ``algorithm.fast_kernel()`` provides one (``use_fastpath=False`` opts
  out).  The differential test suite pins the two step-for-step equal:
  same enabled sets, same rule names in :class:`Move`\\ s, same successor
  configurations.

Telemetry in the hot loop is *batched*: counter increments accumulate
locally and flush every :data:`CENSUS_EVERY` steps and at ``run_end``, and
per-step bus events are only published when the session actually has a
consumer for them (a trace writer or subscriber — see
:attr:`~repro.telemetry.session.TelemetrySession.step_detail`), keeping
metrics-only telemetry within a few percent of telemetry-off throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.daemons.base import Daemon
from repro.simulation.execution import Execution, Move
from repro.simulation.fastpath import resolve_kernel
from repro.simulation.monitors import Monitor
from repro.telemetry.session import TelemetrySession, current_session

#: Steps between engine-layer token-census events when telemetry is on
#: (computing the privileged set every step would double the step cost);
#: also the local-aggregation flush interval for step/rule counters.
CENSUS_EVERY = 256


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    Attributes
    ----------
    final_config:
        The configuration when the run stopped.
    steps:
        Number of transitions taken.
    deadlocked:
        True if the run stopped because no process was enabled.
    stopped_by_predicate:
        True if the ``stop_when`` predicate ended the run.
    execution:
        Full recorded execution, or ``None`` when ``record=False``.
    """

    final_config: Any
    steps: int
    deadlocked: bool
    stopped_by_predicate: bool
    execution: Optional[Execution]


class _RunTelemetry:
    """Per-run telemetry aggregator for the engine hot loop.

    Batches ``steps_total`` / ``rule_fired_total`` increments locally and
    flushes them every :data:`CENSUS_EVERY` steps and at run end, so
    metrics-only sessions cost a dict update per step instead of labelled
    counter traversals and bus fan-out.  Per-step events still flow when
    the session has step-level consumers (:attr:`detail`).
    """

    __slots__ = ("tel", "daemon_label", "detail", "_steps_total",
                 "_rule_fired", "_pending_steps", "_pending_rules")

    def __init__(self, tel: TelemetrySession, daemon_label: str):
        self.tel = tel
        self.daemon_label = daemon_label
        self.detail = tel.step_detail
        self._steps_total = tel.registry.counter(
            "steps_total", "engine transitions taken")
        self._rule_fired = tel.registry.counter(
            "rule_fired_total", "guarded-command executions by rule")
        self._pending_steps = 0
        self._pending_rules: Dict[str, int] = {}

    def on_step(self, rule_names: Sequence[str]) -> None:
        self._pending_steps += 1
        pending = self._pending_rules
        for name in rule_names:
            pending[name] = pending.get(name, 0) + 1
        if self._pending_steps >= CENSUS_EVERY:
            self.flush()

    def publish_step(self, steps: int, moves: Tuple[Move, ...]) -> None:
        self.tel.bus.publish(
            "engine", "step", float(steps),
            step=steps,
            moves=[[m.process, m.rule] for m in moves],
        )

    def census(self, steps: int, holders: Sequence[int]) -> None:
        self.tel.bus.publish(
            "engine", "census", float(steps),
            holders=[int(i) for i in holders],
        )

    def flush(self) -> None:
        if self._pending_steps:
            self._steps_total.inc(self._pending_steps, daemon=self.daemon_label)
            self._pending_steps = 0
        pending = self._pending_rules
        if pending:
            inc = self._rule_fired.inc
            for rule, count in pending.items():
                inc(count, rule=rule)
            pending.clear()


class SharedMemorySimulator:
    """Drives a :class:`RingAlgorithm` under a :class:`Daemon`.

    Parameters
    ----------
    algorithm:
        The algorithm to execute.
    daemon:
        The scheduler; ``daemon.reset()`` is called at the start of each run.
    monitors:
        Observers notified of every configuration and transition.
    telemetry:
        Explicit :class:`~repro.telemetry.session.TelemetrySession` to
        publish into.  Default ``None`` uses the ambient session installed
        by :func:`~repro.telemetry.session.telemetry_session` (and is a
        near-free no-op when none is active).
    use_fastpath:
        ``True``/``False`` force the packed kernel path on/off; the default
        ``None`` uses it whenever ``algorithm.fast_kernel()`` provides one
        (subject to the global ``REPRO_FASTPATH`` switch).
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        daemon: Daemon,
        monitors: Sequence[Monitor] = (),
        telemetry: Optional[TelemetrySession] = None,
        use_fastpath: Optional[bool] = None,
    ):
        self.algorithm = algorithm
        self.daemon = daemon
        self.monitors: Tuple[Monitor, ...] = tuple(monitors)
        self.telemetry = telemetry
        self.use_fastpath = use_fastpath

    def run(
        self,
        initial: Any,
        max_steps: int,
        stop_when: Optional[Callable[[Any], bool]] = None,
        record: bool = True,
    ) -> SimulationResult:
        """Run for up to ``max_steps`` transitions.

        Parameters
        ----------
        initial:
            Starting configuration ``gamma_0``.
        max_steps:
            Hard step budget (the run also stops on deadlock or predicate).
        stop_when:
            Optional predicate on configurations; checked on ``gamma_0`` and
            after every transition, stopping the run when it first holds.
        record:
            Whether to keep the full execution in memory.
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        alg = self.algorithm
        config = alg.normalize_configuration(initial)
        self.daemon.reset()

        # Telemetry wiring is resolved once per run; with no active session
        # the per-step overhead is a single ``is not None`` check.
        tel = self.telemetry if self.telemetry is not None else current_session()
        tr: Optional[_RunTelemetry] = None
        if tel is not None:
            tel.bus.publish(
                "engine", "run_start", 0.0,
                algorithm=type(alg).__name__,
                n=alg.n,
                K=getattr(alg, "K", None),
                daemon=self.daemon.describe(),
                max_steps=max_steps,
            )
            tr = _RunTelemetry(tel, self.daemon.name)

        execution = Execution() if record else None
        if execution is not None:
            execution.start(config)
        for mon in self.monitors:
            mon.on_start(config)

        if stop_when is not None and stop_when(config):
            return self._finish(config, 0, False, True, execution, tr, tel)

        kernel = resolve_kernel(alg, self.use_fastpath)
        if kernel is not None:
            return self._run_fast(
                kernel, config, max_steps, stop_when, execution, tr, tel)
        return self._run_naive(config, max_steps, stop_when, execution, tr, tel)

    # -- naive reference loop -------------------------------------------------
    def _run_naive(
        self,
        config: Any,
        max_steps: int,
        stop_when: Optional[Callable[[Any], bool]],
        execution: Optional[Execution],
        tr: Optional[_RunTelemetry],
        tel: Optional[TelemetrySession],
    ) -> SimulationResult:
        alg = self.algorithm
        steps = 0
        while steps < max_steps:
            enabled = alg.enabled_processes(config)
            if not enabled:
                return self._finish(config, steps, True, False, execution, tr, tel)

            selection = Daemon.validate_selection(
                self.daemon.select(enabled, config, steps), enabled
            )
            moves = tuple(
                Move(i, alg.enabled_rule(config, i).name) for i in selection
            )
            next_config = alg.step(config, selection)

            for mon in self.monitors:
                mon.on_step(steps, config, moves, next_config)
            if execution is not None:
                execution.record(moves, next_config)

            config = next_config
            steps += 1

            if tr is not None:
                if tr.detail:
                    tr.publish_step(steps, moves)
                tr.on_step([m.rule for m in moves])
                if steps % CENSUS_EVERY == 0:
                    tr.census(steps, alg.privileged(config))

            if stop_when is not None and stop_when(config):
                return self._finish(config, steps, False, True, execution, tr, tel)

        return self._finish(config, steps, False, False, execution, tr, tel)

    # -- packed kernel loop ---------------------------------------------------
    def _run_fast(
        self,
        kernel: Any,
        config: Any,
        max_steps: int,
        stop_when: Optional[Callable[[Any], bool]],
        execution: Optional[Execution],
        tr: Optional[_RunTelemetry],
        tel: Optional[TelemetrySession],
    ) -> SimulationResult:
        alg = self.algorithm
        kernel.load(config)
        view = kernel.view()
        need_configs = bool(self.monitors) or execution is not None
        detail = tr is not None and tr.detail
        need_names = tr is not None or need_configs

        # When the stop predicate is the algorithm's own legitimacy test,
        # substitute the kernel's counter-gated version (same verdict, near
        # O(1) rejection) — the common run-until-legitimate workload.
        fast_stop = None
        if stop_when is not None:
            if (
                getattr(stop_when, "__self__", None) is alg
                and getattr(stop_when, "__func__", None)
                is getattr(type(alg), "is_legitimate", None)
            ):
                fast_stop = kernel.is_legitimate

        validate = Daemon.validate_selection
        select = self.daemon.select
        steps = 0
        prev = config
        names: Optional[List[str]] = None
        while steps < max_steps:
            enabled = kernel.enabled()
            if not enabled:
                return self._finish(
                    kernel.export(), steps, True, False, execution, tr, tel)

            selection = validate(select(enabled, view, steps), enabled)
            if need_names:
                # Rule ids are refreshed by apply(); read names first.
                rule_names = kernel.rule_names
                rule_id = kernel.rule_id
                names = [rule_names[rule_id(i)] for i in selection]
            kernel.apply(selection)
            steps += 1

            if need_configs:
                cur = kernel.export()
                moves = tuple(
                    Move(i, r) for i, r in zip(selection, names))
                for mon in self.monitors:
                    mon.on_step(steps - 1, prev, moves, cur)
                if execution is not None:
                    execution.record(moves, cur)
                prev = cur

            if tr is not None:
                if detail:
                    moves = tuple(
                        Move(i, r) for i, r in zip(selection, names))
                    tr.publish_step(steps, moves)
                tr.on_step(names)
                if steps % CENSUS_EVERY == 0:
                    tr.census(steps, kernel.privileged())

            if fast_stop is not None:
                if fast_stop():
                    return self._finish(
                        kernel.export(), steps, False, True, execution, tr, tel)
            elif stop_when is not None and stop_when(view):
                return self._finish(
                    kernel.export(), steps, False, True, execution, tr, tel)

        return self._finish(
            kernel.export(), steps, False, False, execution, tr, tel)

    def _finish(
        self,
        config: Any,
        steps: int,
        deadlocked: bool,
        stopped: bool,
        execution: Optional[Execution],
        tr: Optional[_RunTelemetry],
        tel: Optional[TelemetrySession],
    ) -> SimulationResult:
        """Common run epilogue: notify monitors, flush counters, run_end."""
        for mon in self.monitors:
            mon.on_finish(config)
        if tr is not None:
            tr.flush()
        if tel is not None:
            tel.bus.publish(
                "engine", "run_end", float(steps),
                steps=steps,
                deadlocked=deadlocked,
                stopped_by_predicate=stopped,
            )
        return SimulationResult(config, steps, deadlocked, stopped, execution)

    def run_legitimate_lap(
        self, initial: Any, laps: int = 1, record: bool = True
    ) -> SimulationResult:
        """Run for ``laps`` full token circulations (``3n`` steps each).

        Only meaningful from a legitimate configuration of SSRmin, where each
        circulation takes exactly ``3n`` steps (Lemma 1's canonical cycle).
        """
        return self.run(initial, max_steps=3 * self.algorithm.n * laps, record=record)
