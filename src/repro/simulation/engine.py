"""The state-reading / composite-atomicity simulation engine.

One step of the loop (paper section 2.1):

1. compute the enabled set; if empty, the system is deadlocked (Lemma 4
   proves this never happens for SSRmin — the engine still detects it);
2. ask the daemon for a non-empty subset;
3. every selected process reads the *current* configuration, computes its
   single enabled rule's command, and all writes land simultaneously;
4. monitors observe the transition.

The engine is deterministic given the algorithm, daemon (seeded) and initial
configuration, and records a full :class:`~repro.simulation.execution.Execution`
unless asked not to (large sweeps keep memory flat with ``record=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.daemons.base import Daemon
from repro.simulation.execution import Execution, Move
from repro.simulation.monitors import Monitor


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    Attributes
    ----------
    final_config:
        The configuration when the run stopped.
    steps:
        Number of transitions taken.
    deadlocked:
        True if the run stopped because no process was enabled.
    stopped_by_predicate:
        True if the ``stop_when`` predicate ended the run.
    execution:
        Full recorded execution, or ``None`` when ``record=False``.
    """

    final_config: Any
    steps: int
    deadlocked: bool
    stopped_by_predicate: bool
    execution: Optional[Execution]


class SharedMemorySimulator:
    """Drives a :class:`RingAlgorithm` under a :class:`Daemon`.

    Parameters
    ----------
    algorithm:
        The algorithm to execute.
    daemon:
        The scheduler; ``daemon.reset()`` is called at the start of each run.
    monitors:
        Observers notified of every configuration and transition.
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        daemon: Daemon,
        monitors: Sequence[Monitor] = (),
    ):
        self.algorithm = algorithm
        self.daemon = daemon
        self.monitors: Tuple[Monitor, ...] = tuple(monitors)

    def run(
        self,
        initial: Any,
        max_steps: int,
        stop_when: Optional[Callable[[Any], bool]] = None,
        record: bool = True,
    ) -> SimulationResult:
        """Run for up to ``max_steps`` transitions.

        Parameters
        ----------
        initial:
            Starting configuration ``gamma_0``.
        max_steps:
            Hard step budget (the run also stops on deadlock or predicate).
        stop_when:
            Optional predicate on configurations; checked on ``gamma_0`` and
            after every transition, stopping the run when it first holds.
        record:
            Whether to keep the full execution in memory.
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        alg = self.algorithm
        config = alg.normalize_configuration(initial)
        self.daemon.reset()

        execution = Execution() if record else None
        if execution is not None:
            execution.start(config)
        for mon in self.monitors:
            mon.on_start(config)

        if stop_when is not None and stop_when(config):
            for mon in self.monitors:
                mon.on_finish(config)
            return SimulationResult(config, 0, False, True, execution)

        steps = 0
        while steps < max_steps:
            enabled = alg.enabled_processes(config)
            if not enabled:
                for mon in self.monitors:
                    mon.on_finish(config)
                return SimulationResult(config, steps, True, False, execution)

            selection = Daemon.validate_selection(
                self.daemon.select(enabled, config, steps), enabled
            )
            moves = tuple(
                Move(i, alg.enabled_rule(config, i).name) for i in selection
            )
            next_config = alg.step(config, selection)

            for mon in self.monitors:
                mon.on_step(steps, config, moves, next_config)
            if execution is not None:
                execution.record(moves, next_config)

            config = next_config
            steps += 1

            if stop_when is not None and stop_when(config):
                for mon in self.monitors:
                    mon.on_finish(config)
                return SimulationResult(config, steps, False, True, execution)

        for mon in self.monitors:
            mon.on_finish(config)
        return SimulationResult(config, steps, False, False, execution)

    def run_legitimate_lap(
        self, initial: Any, laps: int = 1, record: bool = True
    ) -> SimulationResult:
        """Run for ``laps`` full token circulations (``3n`` steps each).

        Only meaningful from a legitimate configuration of SSRmin, where each
        circulation takes exactly ``3n`` steps (Lemma 1's canonical cycle).
        """
        return self.run(initial, max_steps=3 * self.algorithm.n * laps, record=record)
