"""The state-reading / composite-atomicity simulation engine.

One step of the loop (paper section 2.1):

1. compute the enabled set; if empty, the system is deadlocked (Lemma 4
   proves this never happens for SSRmin — the engine still detects it);
2. ask the daemon for a non-empty subset;
3. every selected process reads the *current* configuration, computes its
   single enabled rule's command, and all writes land simultaneously;
4. monitors observe the transition.

The engine is deterministic given the algorithm, daemon (seeded) and initial
configuration, and records a full :class:`~repro.simulation.execution.Execution`
unless asked not to (large sweeps keep memory flat with ``record=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.daemons.base import Daemon
from repro.simulation.execution import Execution, Move
from repro.simulation.monitors import Monitor
from repro.telemetry.session import TelemetrySession, current_session

#: Steps between engine-layer token-census events when telemetry is on
#: (computing the privileged set every step would double the step cost).
CENSUS_EVERY = 256


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    Attributes
    ----------
    final_config:
        The configuration when the run stopped.
    steps:
        Number of transitions taken.
    deadlocked:
        True if the run stopped because no process was enabled.
    stopped_by_predicate:
        True if the ``stop_when`` predicate ended the run.
    execution:
        Full recorded execution, or ``None`` when ``record=False``.
    """

    final_config: Any
    steps: int
    deadlocked: bool
    stopped_by_predicate: bool
    execution: Optional[Execution]


class SharedMemorySimulator:
    """Drives a :class:`RingAlgorithm` under a :class:`Daemon`.

    Parameters
    ----------
    algorithm:
        The algorithm to execute.
    daemon:
        The scheduler; ``daemon.reset()`` is called at the start of each run.
    monitors:
        Observers notified of every configuration and transition.
    telemetry:
        Explicit :class:`~repro.telemetry.session.TelemetrySession` to
        publish into.  Default ``None`` uses the ambient session installed
        by :func:`~repro.telemetry.session.telemetry_session` (and is a
        near-free no-op when none is active).
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        daemon: Daemon,
        monitors: Sequence[Monitor] = (),
        telemetry: Optional[TelemetrySession] = None,
    ):
        self.algorithm = algorithm
        self.daemon = daemon
        self.monitors: Tuple[Monitor, ...] = tuple(monitors)
        self.telemetry = telemetry

    def run(
        self,
        initial: Any,
        max_steps: int,
        stop_when: Optional[Callable[[Any], bool]] = None,
        record: bool = True,
    ) -> SimulationResult:
        """Run for up to ``max_steps`` transitions.

        Parameters
        ----------
        initial:
            Starting configuration ``gamma_0``.
        max_steps:
            Hard step budget (the run also stops on deadlock or predicate).
        stop_when:
            Optional predicate on configurations; checked on ``gamma_0`` and
            after every transition, stopping the run when it first holds.
        record:
            Whether to keep the full execution in memory.
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        alg = self.algorithm
        config = alg.normalize_configuration(initial)
        self.daemon.reset()

        # Telemetry wiring is resolved once per run; with no active session
        # the per-step overhead is a single ``is not None`` check.
        tel = self.telemetry if self.telemetry is not None else current_session()
        if tel is not None:
            daemon_label = self.daemon.name
            steps_total = tel.registry.counter(
                "steps_total", "engine transitions taken")
            rule_fired = tel.registry.counter(
                "rule_fired_total", "guarded-command executions by rule")
            tel.bus.publish(
                "engine", "run_start", 0.0,
                algorithm=type(alg).__name__,
                n=alg.n,
                K=getattr(alg, "K", None),
                daemon=self.daemon.describe(),
                max_steps=max_steps,
            )

        execution = Execution() if record else None
        if execution is not None:
            execution.start(config)
        for mon in self.monitors:
            mon.on_start(config)

        if stop_when is not None and stop_when(config):
            return self._finish(config, 0, False, True, execution, tel)

        steps = 0
        while steps < max_steps:
            enabled = alg.enabled_processes(config)
            if not enabled:
                return self._finish(config, steps, True, False, execution, tel)

            selection = Daemon.validate_selection(
                self.daemon.select(enabled, config, steps), enabled
            )
            moves = tuple(
                Move(i, alg.enabled_rule(config, i).name) for i in selection
            )
            next_config = alg.step(config, selection)

            for mon in self.monitors:
                mon.on_step(steps, config, moves, next_config)
            if execution is not None:
                execution.record(moves, next_config)

            config = next_config
            steps += 1

            if tel is not None:
                steps_total.inc(1, daemon=daemon_label)
                for m in moves:
                    rule_fired.inc(1, rule=m.rule)
                tel.bus.publish(
                    "engine", "step", float(steps),
                    step=steps,
                    moves=[[m.process, m.rule] for m in moves],
                )
                if steps % CENSUS_EVERY == 0:
                    tel.bus.publish(
                        "engine", "census", float(steps),
                        holders=[int(i) for i in alg.privileged(config)],
                    )

            if stop_when is not None and stop_when(config):
                return self._finish(config, steps, False, True, execution, tel)

        return self._finish(config, steps, False, False, execution, tel)

    def _finish(
        self,
        config: Any,
        steps: int,
        deadlocked: bool,
        stopped: bool,
        execution: Optional[Execution],
        tel: Optional[TelemetrySession],
    ) -> SimulationResult:
        """Common run epilogue: notify monitors, publish run_end."""
        for mon in self.monitors:
            mon.on_finish(config)
        if tel is not None:
            tel.bus.publish(
                "engine", "run_end", float(steps),
                steps=steps,
                deadlocked=deadlocked,
                stopped_by_predicate=stopped,
            )
        return SimulationResult(config, steps, deadlocked, stopped, execution)

    def run_legitimate_lap(
        self, initial: Any, laps: int = 1, record: bool = True
    ) -> SimulationResult:
        """Run for ``laps`` full token circulations (``3n`` steps each).

        Only meaningful from a legitimate configuration of SSRmin, where each
        circulation takes exactly ``3n`` steps (Lemma 1's canonical cycle).
        """
        return self.run(initial, max_steps=3 * self.algorithm.n * laps, record=record)
