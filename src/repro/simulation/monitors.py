"""Pluggable observers of state-reading simulations.

Monitors receive every configuration (including the initial one) and every
transition, and may raise :class:`InvariantViolation` to abort a run — the
property-based tests use this to assert Theorem 1's bounds over millions of
steps without post-processing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.simulation.execution import Move

#: Rule-name partition used by Lemma 5 / Lemma 8: W24 events are executions of
#: Dijkstra's embedded step (Rules 2 and 4); everything else is W135.
W24_RULES = frozenset({"R2", "R4"})
W135_RULES = frozenset({"R1", "R3", "R5"})


class InvariantViolation(AssertionError):
    """Raised by a monitor when a claimed invariant fails mid-run."""


class Monitor:
    """Base monitor; all hooks are optional overrides."""

    def on_start(self, config: Any) -> None:
        """Called once with the initial configuration."""

    def on_step(
        self, step: int, config: Any, moves: Tuple[Move, ...], next_config: Any
    ) -> None:
        """Called after every transition ``gamma_step -> gamma_{step+1}``."""

    def on_finish(self, config: Any) -> None:
        """Called once with the final configuration."""


class TokenCountMonitor(Monitor):
    """Track the number of privileged processes at every configuration.

    Parameters
    ----------
    algorithm:
        Provides ``privileged(config)``.
    low, high:
        Optional inclusive bounds asserted *once the configuration is
        legitimate* (or always, if ``only_when_legitimate=False``).  For
        SSRmin, Theorem 1 gives ``low=1, high=2``.
    """

    def __init__(
        self,
        algorithm,
        low: Optional[int] = None,
        high: Optional[int] = None,
        only_when_legitimate: bool = True,
    ):
        self.algorithm = algorithm
        self.low = low
        self.high = high
        self.only_when_legitimate = only_when_legitimate
        #: Token count per configuration, aligned with the execution.
        self.counts: List[int] = []

    def _observe(self, config: Any) -> None:
        count = len(self.algorithm.privileged(config))
        self.counts.append(count)
        applicable = (
            not self.only_when_legitimate or self.algorithm.is_legitimate(config)
        )
        if applicable:
            if self.low is not None and count < self.low:
                raise InvariantViolation(
                    f"token count {count} < {self.low} in {config!r}"
                )
            if self.high is not None and count > self.high:
                raise InvariantViolation(
                    f"token count {count} > {self.high} in {config!r}"
                )

    def on_start(self, config: Any) -> None:
        self.counts.clear()
        self._observe(config)

    def on_step(self, step, config, moves, next_config) -> None:
        self._observe(next_config)

    def min_count(self) -> int:
        """Smallest observed count."""
        return min(self.counts)

    def max_count(self) -> int:
        """Largest observed count."""
        return max(self.counts)


class LegitimacyMonitor(Monitor):
    """Track legitimacy over time and detect closure violations.

    Records the first step at which the configuration became legitimate and
    raises :class:`InvariantViolation` if a legitimate configuration is ever
    followed by an illegitimate one (closure, Lemma 1).
    """

    def __init__(self, algorithm, check_closure: bool = True):
        self.algorithm = algorithm
        self.check_closure = check_closure
        #: Step index (configuration index) of first legitimacy, or None.
        self.first_legitimate: Optional[int] = None
        self._index = 0
        self._was_legitimate = False

    def _observe(self, config: Any) -> None:
        legit = self.algorithm.is_legitimate(config)
        if legit and self.first_legitimate is None:
            self.first_legitimate = self._index
        if self.check_closure and self._was_legitimate and not legit:
            raise InvariantViolation(
                f"closure violated: legitimate configuration followed by "
                f"illegitimate {config!r} at index {self._index}"
            )
        self._was_legitimate = legit
        self._index += 1

    def on_start(self, config: Any) -> None:
        self.first_legitimate = None
        self._index = 0
        self._was_legitimate = False
        self._observe(config)

    def on_step(self, step, config, moves, next_config) -> None:
        self._observe(next_config)


class RuleCensusMonitor(Monitor):
    """Count rule executions, overall and per process.

    Also tracks the longest run of consecutive steps containing **no** W24
    event (no Rule 2/4 execution) — Lemma 5 bounds this by ``3n``.
    """

    def __init__(self) -> None:
        self.total: Dict[str, int] = {}
        self.per_process: Dict[int, Dict[str, int]] = {}
        self.longest_w135_run = 0
        self._current_run = 0

    def on_start(self, config: Any) -> None:
        self.total.clear()
        self.per_process.clear()
        self.longest_w135_run = 0
        self._current_run = 0

    def on_step(self, step, config, moves, next_config) -> None:
        saw_w24 = False
        for m in moves:
            self.total[m.rule] = self.total.get(m.rule, 0) + 1
            proc = self.per_process.setdefault(m.process, {})
            proc[m.rule] = proc.get(m.rule, 0) + 1
            if m.rule in W24_RULES:
                saw_w24 = True
        if saw_w24:
            self._current_run = 0
        else:
            self._current_run += 1
            self.longest_w135_run = max(self.longest_w135_run, self._current_run)

    def w24_count(self) -> int:
        """Total executions of Rules 2 and 4 (Dijkstra steps)."""
        return sum(v for k, v in self.total.items() if k in W24_RULES)

    def w135_count(self) -> int:
        """Total executions of Rules 1, 3 and 5."""
        return sum(v for k, v in self.total.items() if k in W135_RULES)


class CriticalSectionMonitor(Monitor):
    """General (l, k)-critical-section monitor (paper reference [9]).

    Asserts at every observed configuration that the number of privileged
    processes lies in ``[l, k]``; for SSRmin this is the (1, 2)-CS property,
    for Dijkstra's rings the (0, 1)... strictly (1,1) in legitimate
    configurations.  Unlike :class:`TokenCountMonitor` this always checks,
    and additionally records per-process *service*: how often each process was
    privileged (progress/fairness evidence — each process eventually enters
    the critical section).
    """

    def __init__(self, algorithm, l: int, k: int, enforce: bool = True):
        if not 0 <= l <= k:
            raise ValueError(f"need 0 <= l <= k, got l={l}, k={k}")
        self.algorithm = algorithm
        self.l = l
        self.k = k
        self.enforce = enforce
        self.service: Dict[int, int] = {}
        self.violations = 0

    def _observe(self, config: Any) -> None:
        holders = self.algorithm.privileged(config)
        for h in holders:
            self.service[h] = self.service.get(h, 0) + 1
        if not self.l <= len(holders) <= self.k:
            self.violations += 1
            if self.enforce:
                raise InvariantViolation(
                    f"({self.l},{self.k})-CS violated: {len(holders)} "
                    f"privileged in {config!r}"
                )

    def on_start(self, config: Any) -> None:
        self.service.clear()
        self.violations = 0
        self._observe(config)

    def on_step(self, step, config, moves, next_config) -> None:
        self._observe(next_config)

    def all_served(self, n: int) -> bool:
        """Whether every process was privileged at least once."""
        return all(self.service.get(i, 0) > 0 for i in range(n))
