"""Initial-configuration generators.

Self-stabilization quantifies over *every* initial configuration; these
generators cover the interesting corners:

* :func:`random_configuration` — uniform over the whole configuration space
  (the canonical "after an arbitrary burst of transient faults" state);
* :func:`perturbed_legitimate` — a legitimate configuration with ``f``
  process states corrupted (the single-transient-fault regime that
  superstabilization cares about; paper section 1.2);
* :func:`adversarial_patterns` — hand-crafted stress patterns: all-max
  counters, alternating counters, every handshake flag raised, descending
  staircases — shapes that maximize Dijkstra-ring disorder.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.core.legitimacy import legitimate_configurations
from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration


def random_configuration(algorithm: SSRmin, rng: random.Random) -> Configuration:
    """Uniformly random SSRmin configuration (delegates to the algorithm)."""
    return algorithm.random_configuration(rng)


def random_legitimate(algorithm: SSRmin, rng: random.Random) -> Configuration:
    """A uniformly random *legitimate* configuration (3nK choices)."""
    x = rng.randrange(algorithm.K)
    i = rng.randrange(algorithm.n)
    shape = rng.randrange(3)
    n, K = algorithm.n, algorithm.K
    xs = [(x + 1) % K] * i + [x] * (n - i)
    hs = [(0, 0)] * n
    if shape == 0:
        hs[i] = (0, 1)
    elif shape == 1:
        hs[i] = (1, 0)
    else:
        hs[i] = (1, 0)
        hs[(i + 1) % n] = (0, 1)
    return Configuration((xs[j], hs[j][0], hs[j][1]) for j in range(n))


def perturbed_legitimate(
    algorithm: SSRmin, rng: random.Random, faults: int = 1
) -> Configuration:
    """A legitimate configuration with ``faults`` random local states corrupted.

    Each fault picks a process uniformly and replaces its whole local state
    with a uniform value — the paper's transient-fault model (memory
    corruption by soft error).
    """
    if faults < 0:
        raise ValueError(f"faults must be >= 0, got {faults}")
    config = random_legitimate(algorithm, rng)
    for _ in range(faults):
        i = rng.randrange(algorithm.n)
        corrupted = (
            rng.randrange(algorithm.K),
            rng.randrange(2),
            rng.randrange(2),
        )
        config = config.replace(i, corrupted)
    return config


def adversarial_patterns(algorithm: SSRmin) -> Iterator[Configuration]:
    """Deterministic stress configurations for convergence testing.

    Yields a handful of crafted shapes; all are valid configurations (domain-
    respecting) but typically far from legitimate.
    """
    n, K = algorithm.n, algorithm.K
    # 1. Every counter distinct (maximum Dijkstra disorder), all flags up.
    yield Configuration(((i % K), 1, 1) for i in range(n))
    # 2. Descending staircase of counters, rts raised everywhere.
    yield Configuration((((n - i) % K), 1, 0) for i in range(n))
    # 3. Alternating two counter values, tra raised everywhere.
    yield Configuration(((i % 2), 0, 1) for i in range(n))
    # 4. All processes identical with both flags raised (every process thinks
    #    it is mid-handshake).
    yield Configuration(((K - 1), 1, 1) for _ in range(n))
    # 5. Legitimate x-part but fully scrambled handshake flags.
    yield Configuration(
        ((0, 1, 1) if i % 2 == 0 else (0, 1, 0)) for i in range(n)
    )


def all_legitimate(algorithm: SSRmin) -> List[Configuration]:
    """Every legitimate configuration of this instance (3nK of them)."""
    return list(legitimate_configurations(algorithm.n, algorithm.K))
