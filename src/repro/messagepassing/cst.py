"""Convenience entry points for CST experiments.

Thin wrappers over :func:`repro.messagepassing.network.build_cst_network`
that set up the canonical starting conditions of the section-5 experiments:

* :func:`legitimate_initial_states` — a legitimate configuration of the
  given algorithm, as a plain list of local states (caches then default to
  coherent-equivalent values once the first broadcasts land);
* :func:`transformed` — build a network starting from a legitimate
  configuration with *coherent* caches (Theorem 3's hypothesis);
* :func:`transformed_from_chaos` — build a network with uniformly random
  states *and* random caches (Theorem 4's hypothesis).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.algorithms.base import RingAlgorithm
from repro.messagepassing.links import DelayModel
from repro.messagepassing.network import MessagePassingNetwork, build_cst_network


def legitimate_initial_states(algorithm: RingAlgorithm) -> List[Any]:
    """A legitimate configuration of ``algorithm`` as a list of local states.

    Uses the algorithm's ``initial_configuration`` when available; otherwise
    searches random configurations for a legitimate one (all algorithms in
    this package provide the former).
    """
    init = getattr(algorithm, "initial_configuration", None)
    if callable(init):
        return list(init())
    rng = random.Random(0)
    for _ in range(100_000):
        cfg = algorithm.random_configuration(rng)
        if algorithm.is_legitimate(cfg):
            return list(cfg)
    raise RuntimeError("could not find a legitimate configuration by sampling")


def coherent_caches(initial_states: List[Any], n: int) -> Dict[int, Dict[int, Any]]:
    """Cache contents that exactly match the initial states (coherence)."""
    return {
        i: {(i - 1) % n: initial_states[(i - 1) % n],
            (i + 1) % n: initial_states[(i + 1) % n]}
        for i in range(n)
    }


def transformed(
    algorithm: RingAlgorithm,
    *,
    initial_states: Optional[List[Any]] = None,
    delay_model: Optional[DelayModel] = None,
    loss_probability: float = 0.0,
    timer_interval: float = 5.0,
    timer_jitter: float = 1.0,
    seed: int = 0,
    token_predicate=None,
    use_fastpath: Optional[bool] = None,
) -> MessagePassingNetwork:
    """CST network starting legitimate and cache-coherent (Theorem 3 setup)."""
    states = initial_states or legitimate_initial_states(algorithm)
    return build_cst_network(
        algorithm,
        states,
        delay_model=delay_model,
        loss_probability=loss_probability,
        timer_interval=timer_interval,
        timer_jitter=timer_jitter,
        seed=seed,
        initial_caches=coherent_caches(list(states), algorithm.n),
        token_predicate=token_predicate,
        use_fastpath=use_fastpath,
    )


def transformed_from_chaos(
    algorithm: RingAlgorithm,
    *,
    seed: int = 0,
    delay_model: Optional[DelayModel] = None,
    loss_probability: float = 0.0,
    duplicate_probability: float = 0.0,
    timer_interval: float = 5.0,
    timer_jitter: float = 1.0,
    use_fastpath: Optional[bool] = None,
) -> MessagePassingNetwork:
    """CST network with random states and random (incoherent) caches.

    This is Theorem 4's starting condition: "an arbitrary configuration and
    arbitrary cache values".  Delays and dwell default to *randomized*
    distributions: the transformation literature ([5], [17]) shows the
    transformed execution of non-silent algorithms needs a randomization
    factor in execution timing to break symmetric livelocks.
    """
    from repro.messagepassing.links import UniformDelay

    delay_model = delay_model or UniformDelay(0.5, 1.5)
    rng = random.Random(seed)
    n = algorithm.n
    states = list(algorithm.random_configuration(rng))
    caches: Dict[int, Dict[int, Any]] = {}
    for i in range(n):
        caches[i] = {}
        for k in ((i - 1) % n, (i + 1) % n):
            fake = algorithm.random_configuration(rng)[k]
            caches[i][k] = fake
    return build_cst_network(
        algorithm,
        states,
        delay_model=delay_model,
        loss_probability=loss_probability,
        duplicate_probability=duplicate_probability,
        timer_interval=timer_interval,
        timer_jitter=timer_jitter,
        seed=seed + 1,
        initial_caches=caches,
        dwell_model=UniformDelay(0.2, 0.8),
        use_fastpath=use_fastpath,
    )
