"""Message-passing execution of state-reading algorithms (paper section 5).

Real sensor networks do not offer instantaneous neighbour-state reads; the
paper executes SSRmin on them via Herman's *cached sensornet transform* (CST,
Algorithm 4): every node keeps a **cache** of its neighbours' states, sends
its own state whenever it changes and periodically on a timer, and evaluates
guards (and the token predicates) against the cache.

This package is a discrete-event simulation of that world:

* :mod:`repro.messagepassing.des` — event queue and clock;
* :mod:`repro.messagepassing.links` — directed links with transmission
  delay, Bernoulli loss, and the paper's "at most one message in transit per
  direction" constraint (newest state coalesces while the link is busy);
* :mod:`repro.messagepassing.node` — CST nodes (Algorithm 4 verbatim:
  on-receive handler + interval timer);
* :mod:`repro.messagepassing.network` — wiring + run loop + token
  timelines;
* :mod:`repro.messagepassing.coherence` — Definition 2's cache-coherence
  predicate and good/bad incoherence classification;
* :mod:`repro.messagepassing.timeline` — change-point records of how many
  nodes hold a token *in their own cached view*, the quantity Figures 11-13
  reason about;
* :mod:`repro.messagepassing.modelgap` — Definition 3's model-gap-tolerance
  evaluation.
"""

from repro.messagepassing.des import EventQueue, Event
from repro.messagepassing.links import (
    Link,
    FixedDelay,
    UniformDelay,
    ExponentialDelay,
)
from repro.messagepassing.node import CSTNode
from repro.messagepassing.network import MessagePassingNetwork, build_cst_network
from repro.messagepassing.coherence import is_cache_coherent
from repro.messagepassing.timeline import TokenTimeline
from repro.messagepassing.trace import MessageTrace, render_sequence_diagram
from repro.messagepassing.wireless import WirelessMedium, build_wireless_network

__all__ = [
    "EventQueue",
    "Event",
    "Link",
    "FixedDelay",
    "UniformDelay",
    "ExponentialDelay",
    "CSTNode",
    "MessagePassingNetwork",
    "build_cst_network",
    "is_cache_coherent",
    "TokenTimeline",
    "MessageTrace",
    "render_sequence_diagram",
    "WirelessMedium",
    "build_wireless_network",
]
