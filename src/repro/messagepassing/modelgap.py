"""Model-gap tolerance (paper Definition 3, Theorem 3).

The *model gap* is the behavioural difference between an algorithm in the
state-reading model and its CST transform in the message-passing model.
Definition 3 formalizes tolerance through two function layers:

* ``h_i(q_i, q_{i-1}, q_{i+1})`` — a per-node observation; for SSRmin,
  "node ``v_i`` holds a token";
* ``h(h_0, ..., h_{n-1})`` — a system-wide aggregate; for SSRmin,
  "at least one node holds a token" (we track the stronger aggregate
  ``1 <= count <= 2`` of Theorem 3).

The algorithm is model-gap tolerant iff, along every execution from a
legitimate configuration with cache coherence, ``h`` evaluated on *cached*
neighbour views equals ``h`` evaluated on *true* neighbour states.

:func:`evaluate_gap` runs a transformed network and compares the two
evaluations at every change-point; :func:`gap_report` summarizes zero-token
time, count bounds and any tolerance violations — the machinery behind the
fig11/fig12/fig13 and abl1 benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.messagepassing.network import MessagePassingNetwork
from repro.messagepassing.timeline import TokenTimeline


@dataclass
class GapObservation:
    """One comparison instant between cached-view and true-state aggregates."""

    time: float
    cached_holders: Tuple[int, ...]
    true_holders: Tuple[int, ...]

    @property
    def aggregate_matches(self) -> bool:
        """Definition 3's equation for h = 'at least one token exists'."""
        return bool(self.cached_holders) == bool(self.true_holders)


@dataclass
class GapReport:
    """Summary of a model-gap evaluation run.

    Attributes
    ----------
    duration:
        Simulated time covered.
    zero_time:
        Total time the *cached-view* aggregate showed zero tokens — positive
        zero_time is exactly the token extinction of Figures 11-12.
    zero_intervals:
        The maximal extinction intervals.
    min_count, max_count:
        Bounds on simultaneous cached-view holders (Theorem 3: 1..2 for
        SSRmin from legitimate+coherent starts).
    observations:
        Sampled :class:`GapObservation` comparisons (empty when sampling is
        disabled).
    tolerant:
        Whether the "at least one token" aggregate held at every
        change-point, i.e. no extinction was observed.
    """

    duration: float
    zero_time: float
    zero_intervals: List[Tuple[float, float]]
    min_count: int
    max_count: int
    observations: List[GapObservation]
    tolerant: bool


def evaluate_gap(
    network: MessagePassingNetwork,
    duration: float,
    sample_observations: bool = False,
    sample_every: float = 1.0,
    warmup: float = 0.0,
) -> GapReport:
    """Run ``network`` for ``duration`` and report the model-gap behaviour.

    Parameters
    ----------
    network:
        A built (not necessarily started) CST network.
    duration:
        Simulated time to run.
    sample_observations:
        Also collect cached-vs-true aggregate comparisons every
        ``sample_every`` time units (slower; used by the Definition-3 tests).
    warmup:
        Ignore the interval ``[0, warmup)`` in the statistics (used when the
        start is not legitimate+coherent and the claim only applies after
        stabilization).
    """
    observations: List[GapObservation] = []
    if not network._started:
        network.start()
    if sample_observations:
        remaining = duration
        while remaining > 0:
            slice_d = min(sample_every, remaining)
            network.run(slice_d)
            observations.append(
                GapObservation(
                    time=network.queue.now,
                    cached_holders=network.token_holders(),
                    true_holders=network.true_token_holders(),
                )
            )
            remaining -= slice_d
    else:
        network.run(duration)

    timeline = network.timeline
    zero = [
        (max(a, warmup), b)
        for a, b in timeline.zero_intervals()
        if b > warmup
    ]
    zero_time = sum(b - a for a, b in zero)
    lo, hi = timeline.count_bounds(from_time=warmup)
    return GapReport(
        duration=duration,
        zero_time=zero_time,
        zero_intervals=zero,
        min_count=lo,
        max_count=hi,
        observations=observations,
        tolerant=zero_time == 0.0,
    )


def definition3_holds(
    observations: Sequence[GapObservation],
) -> bool:
    """Whether the sampled Definition-3 equation held at every sample."""
    return all(o.aggregate_matches for o in observations)
