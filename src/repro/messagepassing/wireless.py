"""A shared wireless medium: broadcast, half-duplex, collisions.

The paper motivates SSRmin with *wireless* sensor networks, where the
point-to-point link model of :mod:`repro.messagepassing.links` is an
idealization: real radios **broadcast** (one transmission reaches every
neighbour), are **half-duplex** (a transmitting node hears nothing), and
**collide** (a receiver covered by two overlapping transmissions decodes
neither).  This module models exactly that:

* :class:`WirelessMedium` — transmissions occupy the air for an *airtime*;
  at the end of a transmission each ring neighbour of the sender receives
  the payload unless a collision spoiled it: some *other* transmission whose
  sender is audible to the receiver (the receiver itself or one of its
  neighbours) overlapped the airtime window;
* :class:`TransmitterAdapter` — lets the unchanged :class:`CSTNode` drive
  the medium through its ``links`` interface (newest-state coalescing while
  the transmitter is busy, as with wired links);
* :func:`build_wireless_network` — the CST transform over the medium,
  API-compatible with :func:`~repro.messagepassing.network.build_cst_network`'s
  returned :class:`~repro.messagepassing.network.MessagePassingNetwork`.

Collisions are a new *loss mechanism*, so the theory's story carries over:
Theorem 3 holds while caches stay "good", and Theorem 4's recovery argument
covers collision-induced losses exactly like random message loss (the
periodic, jittered timers guarantee eventually-collision-free refreshes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.algorithms.base import RingAlgorithm
from repro.messagepassing.des import EventQueue
from repro.messagepassing.links import DelayModel, FixedDelay, UniformDelay
from repro.messagepassing.network import MessagePassingNetwork
from repro.messagepassing.node import CSTNode


@dataclass
class Transmission:
    """One on-air transmission."""

    sender: int
    payload: Any
    start: float
    end: float


class WirelessMedium:
    """The shared radio channel of a ring-deployed sensor network.

    Parameters
    ----------
    queue:
        Shared event queue.
    n:
        Number of nodes (ring neighbourhood: ``i-1`` and ``i+1`` mod n).
    airtime_model:
        Distribution of per-transmission airtime (propagation is folded in).
    rng:
        Randomness for airtimes.
    """

    def __init__(
        self,
        queue: EventQueue,
        n: int,
        airtime_model: DelayModel,
        rng: random.Random,
    ):
        self.queue = queue
        self.n = n
        self.airtime_model = airtime_model
        self.rng = rng
        #: Transmissions that may still collide with an on-air one.
        self._recent: List[Transmission] = []
        #: Delivery callback, set by the network: (receiver, sender, payload).
        self.deliver: Optional[Callable[[int, int, Any], None]] = None
        # -- statistics -----------------------------------------------------
        self.transmissions = 0
        self.deliveries = 0
        self.collisions = 0

    def _neighbors(self, i: int) -> Sequence[int]:
        return ((i - 1) % self.n, (i + 1) % self.n)

    def transmit(self, sender: int, payload: Any) -> Transmission:
        """Put a payload on the air; returns the transmission record."""
        now = self.queue.now
        airtime = self.airtime_model.sample(self.rng)
        tx = Transmission(sender=sender, payload=payload, start=now,
                          end=now + airtime)
        self._recent.append(tx)
        self.transmissions += 1
        self.queue.schedule(airtime, lambda: self._complete(tx),
                            label=f"radio{sender}")
        return tx

    def _audible_to(self, receiver: int) -> set:
        """Senders whose transmissions reach (and can jam) ``receiver``."""
        return {receiver, *self._neighbors(receiver)}

    def _overlaps(self, a: Transmission, b: Transmission) -> bool:
        return a.start < b.end and b.start < a.end

    def _complete(self, tx: Transmission) -> None:
        # Prune transmissions that can no longer interfere with anything:
        # one is dead once it ends before the start of every transmission
        # still on the air (including tx, which completes this instant).
        now = self.queue.now
        active_starts = [t.start for t in self._recent if t.end >= now]
        cutoff = min(active_starts) if active_starts else now
        self._recent = [t for t in self._recent if t.end >= cutoff]

        for receiver in self._neighbors(tx.sender):
            jammers = [
                other
                for other in self._recent
                if other is not tx
                and other.sender in self._audible_to(receiver)
                and self._overlaps(other, tx)
            ]
            if jammers:
                self.collisions += 1
                continue
            self.deliveries += 1
            if self.deliver is not None:
                self.deliver(receiver, tx.sender, tx.payload)


class TransmitterAdapter:
    """Per-node radio front-end speaking the Link ``send`` protocol.

    Half-duplex with coalescing: while a transmission is on the air, newer
    payloads supersede the pending one; when the air clears, the newest
    pending payload transmits.
    """

    def __init__(self, medium: WirelessMedium, sender: int):
        self.medium = medium
        self.sender = sender
        self.busy = False
        self.pending: Optional[Any] = None
        self._has_pending = False
        #: Messages handed to the radio (matches Link.sent semantics).
        self.sent = 0
        self.coalesced = 0

    def send(self, payload: Any) -> None:
        """Transmit now, or coalesce while the radio is busy."""
        if self.busy:
            if self._has_pending:
                self.coalesced += 1
            self.pending = payload
            self._has_pending = True
            return
        self._transmit(payload)

    def _transmit(self, payload: Any) -> None:
        self.busy = True
        self.sent += 1
        tx = self.medium.transmit(self.sender, payload)
        self.medium.queue.schedule(
            tx.end - self.medium.queue.now, self._done, label=f"txdone{self.sender}"
        )

    def _done(self) -> None:
        self.busy = False
        if self._has_pending:
            payload = self.pending
            self.pending = None
            self._has_pending = False
            self._transmit(payload)


class WirelessNetwork(MessagePassingNetwork):
    """A CST deployment over the shared medium.

    Inherits all observation/fault machinery from
    :class:`MessagePassingNetwork`; only message statistics differ (the
    medium counts collisions instead of per-link losses).
    """

    def __init__(self, *args, medium: WirelessMedium, **kwargs):
        super().__init__(*args, **kwargs)
        self.medium = medium

    def message_stats(self) -> Dict[str, int]:
        """Radio statistics: transmissions, deliveries, collisions."""
        return {
            "sent": self.medium.transmissions,
            "delivered": self.medium.deliveries,
            "lost": self.medium.collisions,
            "coalesced": sum(
                adapter.coalesced
                for node in self.nodes
                for adapter in node.links.values()
            ),
        }

    def fail_link(self, a: int, b: int, duration: float) -> None:
        """Point-to-point outages do not exist on a shared medium."""
        raise NotImplementedError(
            "the wireless medium has no per-link outages; model node-level "
            "faults with corrupt_node/corrupt_cache instead"
        )


def build_wireless_network(
    algorithm: RingAlgorithm,
    initial_states: Sequence[Any],
    *,
    airtime_model: Optional[DelayModel] = None,
    timer_interval: float = 5.0,
    timer_jitter: float = 2.0,
    seed: int = 0,
    initial_caches: Optional[Dict[int, Dict[int, Any]]] = None,
    dwell_model: Optional[DelayModel] = None,
) -> WirelessNetwork:
    """CST over the shared wireless medium.

    One radio per node; a broadcast reaches both ring neighbours in a single
    transmission (unlike the wired model's two link sends).  Defaults use a
    jittered dwell to desynchronize transmissions — with deterministic
    timing, a symmetric ring would collide forever.
    """
    n = algorithm.n
    if len(initial_states) != n:
        raise ValueError(f"need {n} initial states, got {len(initial_states)}")
    airtime_model = airtime_model or UniformDelay(0.5, 1.0)
    dwell_model = dwell_model or UniformDelay(0.2, 0.8)
    rng = random.Random(seed)
    queue = EventQueue()
    medium = WirelessMedium(queue, n, airtime_model, rng)

    network_ref: List[Optional[WirelessNetwork]] = [None]

    def state_changed(node: CSTNode, old: Any, new: Any) -> None:
        net = network_ref[0]
        if net is not None:
            net.observe()

    nodes: List[CSTNode] = []
    for i in range(n):
        cache_init = (initial_caches or {}).get(i)
        node = CSTNode(
            index=i,
            algorithm=algorithm,
            neighbors=((i - 1) % n, (i + 1) % n),
            initial_state=initial_states[i],
            initial_cache=cache_init,
            on_state_change=state_changed,
            scheduler=queue.schedule,
            dwell_model=dwell_model,
            rng=rng,
            chatty=False,
        )
        # One shared-radio adapter; broadcast_state() sends exactly once.
        node.links = {"radio": TransmitterAdapter(medium, i)}
        nodes.append(node)

    def deliver(receiver: int, sender: int, payload: Any) -> None:
        _, state = payload
        nodes[receiver].on_receive(sender, state)
        net = network_ref[0]
        if net is not None:
            net.observe()

    medium.deliver = deliver

    net = WirelessNetwork(
        algorithm,
        nodes,
        queue,
        timer_interval,
        timer_jitter,
        rng,
        lambda node: node.holds_token(),
        medium=medium,
    )
    network_ref[0] = net
    return net
