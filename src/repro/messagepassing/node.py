"""CST nodes — Algorithm 4 (cached sensornet transform) with dwell time.

Each node ``v_i`` emulates process ``P_i``:

* it owns the original algorithm's local state ``q_i``;
* it keeps a cache ``Z_i[v_k]`` of every neighbour's state;
* **on receipt** of ``<state, q>`` from ``v_k``: update ``Z_i[v_k]``, send
  ``<state, q_i>`` to every neighbour, and (at most) one enabled rule is
  executed against the cached view;
* **on interval timer**: send ``<state, q_i>`` to every neighbour (this is
  what repairs corrupted caches — essential for self-stabilization in the
  real network).

**Dwell time.**  A token-ring rule execution *releases* the privilege, and a
real node does its critical-section work (the paper's motivating example:
actively monitoring with its camera) between becoming privileged and
executing the rule.  ``dwell_model`` inserts that delay: when a rule becomes
enabled, execution is scheduled ``dwell`` time units later (re-checking the
guard at execution time, since caches may have moved on).  With
``dwell_model=None`` rules execute inline in the receive handler —
Algorithm 4's literal reading — making privilege periods instantaneous,
which is well-defined but physically degenerate.

Guards and token predicates are evaluated on a *local view*: a pseudo-
configuration where positions ``i-1, i, i+1`` hold ``(cache, own, cache)``
and all other positions hold ``None`` — any rule that touched them would
crash, which doubles as an assertion that guards really are local.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.algorithms.base import RingAlgorithm
from repro.messagepassing.links import DelayModel, Message


class CSTNode:
    """One node of the transformed (message-passing) system.

    Parameters
    ----------
    index:
        The process index ``i`` this node emulates.
    algorithm:
        The original state-reading algorithm (shared, stateless w.r.t. runs).
    neighbors:
        Indices whose states this node caches (readable neighbours).
    initial_state:
        Initial ``q_i`` — arbitrary, per self-stabilization.
    initial_cache:
        Initial cache contents (arbitrary values allowed; missing entries
        default to the node's own initial state so guards are evaluable from
        step zero — any fixed default works since caches self-repair).
    on_state_change:
        Callback ``(node, old_state, new_state)`` fired whenever ``q_i``
        changes (the network layer uses it to timestamp token timelines).
    scheduler:
        ``scheduler(delay, fn)`` hooking into the event queue; required when
        ``dwell_model`` is set.
    dwell_model:
        Delay between a rule becoming enabled and its execution (see module
        docstring); ``None`` executes inline.
    rng:
        Random source for dwell sampling.
    chatty:
        Algorithm 4 verbatim sends the local state on *every* receipt
        (``True``, the default).  ``False`` suppresses the per-receipt echo
        and relies on state-change broadcasts plus the periodic timer — the
        standard economy on broadcast media, where every transmission can
        jam a neighbour; correctness in the limit is unaffected because the
        timers still refresh every cache (the Lemma 9 machinery).
    """

    def __init__(
        self,
        index: int,
        algorithm: RingAlgorithm,
        neighbors: Sequence[int],
        initial_state: Any,
        initial_cache: Optional[Dict[int, Any]] = None,
        on_state_change: Optional[Callable[["CSTNode", Any, Any], None]] = None,
        scheduler: Optional[Callable[[float, Callable[[], None]], Any]] = None,
        dwell_model: Optional[DelayModel] = None,
        rng: Optional[random.Random] = None,
        chatty: bool = True,
    ):
        if dwell_model is not None and scheduler is None:
            raise ValueError("dwell_model requires a scheduler")
        self.index = index
        self.algorithm = algorithm
        self.neighbors = tuple(neighbors)
        self.state = initial_state
        self.cache: Dict[int, Any] = {}
        for k in self.neighbors:
            if initial_cache and k in initial_cache:
                self.cache[k] = initial_cache[k]
            else:
                self.cache[k] = initial_state
        self.on_state_change = on_state_change
        self.scheduler = scheduler
        self.dwell_model = dwell_model
        # Fallback stream derives from the global ``random`` state so a
        # caller (or the test suite's autouse seed fixture) controls it;
        # a bare ``Random()`` here would be OS-entropy-seeded and make
        # nominally-seeded runs irreproducible.
        self.rng = rng if rng is not None else random.Random(
            random.getrandbits(64)
        )
        self.chatty = chatty
        #: Outgoing links, filled in by the network layer: neighbor -> Link.
        self.links: Dict[int, Any] = {}
        self._action_pending = False
        # Interned outgoing payload: re-used across broadcasts while the
        # state is unchanged (the common case — timers re-announce the same
        # state for long stretches).  Validated by *value* on every use
        # because fault injection mutates ``state`` without notice.
        self._payload: Optional[Message] = None
        # -- statistics -----------------------------------------------------
        self.rules_executed = 0
        self.messages_received = 0
        self.timer_fires = 0

    # -- local view ---------------------------------------------------------
    def view(self) -> List[Any]:
        """Pseudo-configuration seen through this node's cache.

        ``view[i] = q_i``; ``view[k] = Z_i[v_k]`` for cached neighbours;
        ``None`` elsewhere (guards must not read those).
        """
        n = self.algorithm.n
        v: List[Any] = [None] * n
        v[self.index] = self.state
        for k in self.neighbors:
            v[k] = self.cache[k]
        return v

    # -- Algorithm 4 actions ----------------------------------------------
    def on_receive(self, sender: int, payload: Any) -> None:
        """Handle ``<state, q>`` from a neighbour (Algorithm 4 lines 7-10)."""
        if sender not in self.cache:
            raise ValueError(
                f"node {self.index} got message from non-neighbour {sender}"
            )
        self.messages_received += 1
        self.cache[sender] = payload
        if self.dwell_model is None:
            changed = self.try_execute_rule()
            if self.chatty or changed:
                self.broadcast_state()
        else:
            if self.chatty:
                self.broadcast_state()
            self._consider_acting()

    def on_timer(self) -> None:
        """Interval timer (Algorithm 4 lines 11-12): refresh neighbours' caches.

        Also re-checks enabledness: after transient faults a node can be
        enabled purely from its (possibly corrupted) initial cache, with no
        incoming message to wake it.
        """
        self.timer_fires += 1
        self.broadcast_state()
        if self.dwell_model is not None:
            self._consider_acting()

    def _consider_acting(self) -> None:
        if self._action_pending:
            return
        if self.algorithm.enabled_rule(self.view(), self.index) is None:
            return
        self._action_pending = True
        dwell = self.dwell_model.sample(self.rng)
        self.scheduler(dwell, self._act)

    def _act(self) -> None:
        self._action_pending = False
        self.try_execute_rule()
        self.broadcast_state()
        # The guard may still (or again) be enabled — e.g. SSRmin's R1
        # followed by a wait for the neighbour, or back-to-back fix rules.
        self._consider_acting()

    def try_execute_rule(self) -> bool:
        """Execute at most one enabled rule against the cached view.

        Returns whether a rule fired.  State-change callbacks run before the
        (caller-issued) broadcast so timelines observe the transient period
        that begins the moment the local state changes.
        """
        view = self.view()
        rule = self.algorithm.enabled_rule(view, self.index)
        if rule is None:
            return False
        new_state = rule.execute(view, self.index)
        self.rules_executed += 1
        if new_state != self.state:
            old = self.state
            self.state = new_state
            if self.on_state_change is not None:
                self.on_state_change(self, old, new_state)
        return True

    #: Class-level switch for the payload interning above; the reference-path
    #: micro-benchmark A/Bs it (``CSTNode.intern_payloads = False`` restores
    #: one fresh allocation per broadcast).
    intern_payloads = True

    def broadcast_state(self) -> None:
        """Send ``<state, q_i>`` to every neighbour (links handle busy/loss)."""
        if self.intern_payloads:
            payload = self._payload
            if payload is None or payload.state != self.state:
                payload = self._payload = Message(self.index, self.state)
        else:
            payload = Message(self.index, self.state)
        for link in self.links.values():
            link.send(payload)

    # -- token predicates (node's own view) ----------------------------------
    def holds_token(self) -> bool:
        """Whether this node holds a token *according to its own cache*.

        This is the function ``h_i(q_i, Z_i[.])`` of Definition 3 — the
        quantity whose system-wide aggregate must match the true-state
        evaluation for model-gap tolerance.
        """
        return bool(self.algorithm.node_holds_token(self.view(), self.index))
