"""Packed message-passing fastpath: integer-encoded CST/DES kernel.

The reference DES (:mod:`repro.messagepassing`) spends almost all of its
time in Python object plumbing: every delivery builds O(n) local-view
lists, re-evaluates up to five guard closures, and re-computes the
own-view token census of *all* n nodes (``observe``) — an O(n) cost per
event that dominates at realistic ring sizes.  This package mirrors the
PR 2 fastpath design for the message-passing model:

* **packed state** — node states, neighbour caches and in-flight payloads
  are small integers (``(x << 2) | (rts << 1) | tra`` for SSRmin, the bare
  counter for Dijkstra's ring), translated by per-algorithm
  :class:`~repro.messagepassing.fastpath.codecs.MPCodec` objects that
  reuse the shared 128-entry ``RULE_TABLE`` for guard resolution;
* **fixed-slot links** — the capacity-one links live in flat parallel
  arrays (busy flags, coalesced pending slots, statistics counters)
  instead of one object per direction;
* **flat event wheel** — scheduling uses plain packed tuples on a binary
  heap (:mod:`repro.messagepassing.fastpath.wheel`) instead of frozen
  dataclass events holding closures;
* **incremental observation** — own-view token holders, cache staleness
  and the legitimate+coherent entry condition are maintained
  incrementally (O(1) per event) instead of recomputed network-wide.

The engine (:class:`~repro.messagepassing.fastpath.network.FastCSTNetwork`)
is *draw-identical* to the reference: it consumes the network's single
seeded ``random.Random`` in exactly the reference's order (loss draw, then
delay draw, per transmission; timer jitter per arming; dwell per pending
action) and reproduces the reference's ``(time, seq)`` event ordering —
so seeded runs are bit-reproducible across engines and the golden traces
replay record-for-record.  Equivalence is enforced by the differential
suite in ``tests/messagepassing/test_mp_fastpath.py`` and inline by every
timed run of ``benchmarks/bench_perf_mp.py``.

Escape hatches mirror PR 2: every builder takes ``use_fastpath=...``, the
``REPRO_FASTPATH_MP=0`` environment variable disables the packed engine
process-wide, and :func:`mp_fastpath_override` scopes a forced choice.
Algorithms opt in by returning a codec from ``mp_codec()`` (the base-class
default returns ``None``, keeping the reference path).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Process-wide default, read once at import: ``REPRO_FASTPATH_MP=0`` (or
#: ``false``/``no``/``off``) pins every CST network to the reference DES
#: without touching call sites.
_ENV_DEFAULT = os.environ.get("REPRO_FASTPATH_MP", "1").strip().lower() not in (
    "0", "false", "no", "off",
)

#: Scoped override installed by :func:`mp_fastpath_override` (None = defer
#: to the environment default).
_OVERRIDE: Optional[bool] = None


def mp_fastpath_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve whether the packed message-passing engine should be used.

    Precedence: an ``explicit`` per-call-site value (``use_fastpath=...``)
    beats the scoped :func:`mp_fastpath_override`, which beats the
    ``REPRO_FASTPATH_MP`` environment default (on).
    """
    if explicit is not None:
        return explicit
    if _OVERRIDE is not None:
        return _OVERRIDE
    return _ENV_DEFAULT


@contextmanager
def mp_fastpath_override(enabled: bool) -> Iterator[None]:
    """Force the packed engine on or off for a dynamic scope.

    Used by the differential tests, the A/B benchmark, and the CLI's
    ``--engine fast|reference`` switch.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = enabled
    try:
        yield
    finally:
        _OVERRIDE = previous


def resolve_mp_codec(algorithm, explicit: Optional[bool] = None):
    """The algorithm's MP codec if the fastpath is enabled, else ``None``.

    The capability probe is ``algorithm.mp_codec()``: algorithms without a
    packed encoding (the base-class default, compositions, ...) return
    ``None`` and every caller silently keeps the reference path.
    """
    if not mp_fastpath_enabled(explicit):
        return None
    probe = getattr(algorithm, "mp_codec", None)
    return probe() if callable(probe) else None


__all__ = [
    "mp_fastpath_enabled",
    "mp_fastpath_override",
    "resolve_mp_codec",
]
