"""Message-passing fastpath benchmark library (PR artifact backend).

Measures the workloads the packed DES engine was built for, fast vs
reference, with inline equivalence enforcement — every timed pair is
cross-checked (token timelines, final states, caches, message statistics,
event counts), so a reported speedup can never silently come from diverging
semantics.  Three sections:

* **des_single_run** — one chaos-start run on a large ring (n=64 full /
  n=32 quick), fixed duration, 10% loss: the packed event wheel vs the
  heap-of-dataclasses reference, selected via
  :func:`~repro.messagepassing.fastpath.mp_fastpath_override`;
* **run_thm4** — the registered Theorem 4 experiment end to end (loss ×
  seed Monte-Carlo grid), fast engine vs reference, asserting identical
  result rows;
* **reference_des_microbench** — the reference engine against itself with
  :attr:`CSTNode.intern_payloads` on/off, isolating the payload-interning
  satellite.  (``__slots__`` on ``Link``/``Event`` cannot be A/B-toggled
  in-process — a class either has the attribute dict or it does not — so
  its effect is folded into the interned baseline.)

Both the standalone script (``benchmarks/bench_perf_mp.py``) and the CLI
(``python -m repro bench mp``) are thin wrappers over :func:`run_mp_bench`
/ :func:`format_report` / :func:`check_gates`.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.messagepassing.fastpath import mp_fastpath_override


def _fingerprint(net) -> tuple:
    """Everything two equivalent runs must agree on, as one comparable value."""
    return (
        tuple(net.timeline.points),
        tuple(net.true_configuration()),
        tuple(tuple(sorted(node.cache.items())) for node in net.nodes),
        tuple(sorted(net.message_stats().items())),
        net.queue.executed,
        net.queue.now,
    )


def bench_des_single_run(
    n: int, duration: float, loss: float, seed: int
) -> dict:
    """Time one chaos-start DES run at fixed duration, both engines."""
    from repro.core.ssrmin import SSRmin
    from repro.messagepassing.cst import transformed_from_chaos

    timings = {}
    fingerprints = {}
    events = {}
    for label, use_fast in (("fastpath", True), ("reference", False)):
        t0 = time.perf_counter()
        net = transformed_from_chaos(
            SSRmin(n, n + 1), seed=seed, loss_probability=loss,
            use_fastpath=use_fast,
        )
        net.run(duration)
        timings[label] = time.perf_counter() - t0
        fingerprints[label] = _fingerprint(net)
        events[label] = net.queue.executed

    if fingerprints["fastpath"] != fingerprints["reference"]:
        raise RuntimeError(
            "fast and reference DES runs diverged (timeline/states/caches/"
            f"stats mismatch at n={n}, loss={loss}, seed={seed})"
        )
    ev = events["fastpath"]
    return {
        "workload": f"SSRmin n={n} chaos start, duration={duration:g}, "
                    f"loss={loss:g}, single run",
        "n": n,
        "duration": duration,
        "loss_probability": loss,
        "seed": seed,
        "events": ev,
        "reference_seconds": round(timings["reference"], 4),
        "fastpath_seconds": round(timings["fastpath"], 4),
        "reference_events_per_second": round(ev / timings["reference"], 1),
        "fastpath_events_per_second": round(ev / timings["fastpath"], 1),
        "speedup": round(timings["reference"] / timings["fastpath"], 2),
    }


def bench_thm4(fast_mode: bool) -> dict:
    """Time the registered Theorem 4 experiment end to end, both engines."""
    from repro.experiments.runners_theorems import run_thm4

    timings = {}
    rows = {}
    for label, use_fast in (("fastpath", True), ("reference", False)):
        with mp_fastpath_override(use_fast):
            t0 = time.perf_counter()
            result = run_thm4(fast=fast_mode)
            timings[label] = time.perf_counter() - t0
        rows[label] = result.rows
        if not result.match:
            raise RuntimeError(f"thm4 bounds check failed on the {label} engine")

    if rows["fastpath"] != rows["reference"]:
        raise RuntimeError(
            "fast and reference thm4 result rows diverged: "
            f"{rows['fastpath']} vs {rows['reference']}"
        )
    cells = len(rows["fastpath"]) * (3 if fast_mode else 10)
    return {
        "workload": "run_thm4 (Theorem 4 loss sweep, "
                    f"{'fast' if fast_mode else 'full'} trial counts, "
                    f"{cells} Monte-Carlo cells)",
        "fast_trial_counts": fast_mode,
        "rows": rows["fastpath"],
        "reference_seconds": round(timings["reference"], 4),
        "fastpath_seconds": round(timings["fastpath"], 4),
        "speedup": round(timings["reference"] / timings["fastpath"], 2),
    }


def bench_reference_intern(n: int, duration: float, seed: int) -> dict:
    """A/B the reference engine with payload interning on vs off."""
    from repro.core.ssrmin import SSRmin
    from repro.messagepassing.cst import transformed
    from repro.messagepassing.node import CSTNode

    timings = {}
    fingerprints = {}
    saved = CSTNode.intern_payloads
    try:
        for label, intern in (("interned", True), ("uninterned", False)):
            CSTNode.intern_payloads = intern
            with mp_fastpath_override(False):
                t0 = time.perf_counter()
                net = transformed(SSRmin(n, n + 1), seed=seed)
                net.run(duration)
                timings[label] = time.perf_counter() - t0
            fingerprints[label] = _fingerprint(net)
    finally:
        CSTNode.intern_payloads = saved

    if fingerprints["interned"] != fingerprints["uninterned"]:
        raise RuntimeError("payload interning changed reference semantics")
    return {
        "workload": f"reference engine, SSRmin n={n} legitimate start, "
                    f"duration={duration:g}, CSTNode.intern_payloads A/B",
        "n": n,
        "duration": duration,
        "seed": seed,
        "uninterned_seconds": round(timings["uninterned"], 4),
        "interned_seconds": round(timings["interned"], 4),
        "speedup": round(timings["uninterned"] / timings["interned"], 2),
        "note": (
            "isolates the Message-interning satellite on the reference "
            "engine; the __slots__ conversion of Link/Event/DelayModel "
            "cannot be toggled in-process and is included in both sides"
        ),
    }


def run_mp_bench(quick: bool = False) -> dict:
    """Run all sections and assemble the ``BENCH_perf_mp.json`` payload."""
    if quick:
        des = bench_des_single_run(n=32, duration=200.0, loss=0.1, seed=7)
        thm4 = bench_thm4(fast_mode=True)
        intern = bench_reference_intern(n=16, duration=150.0, seed=3)
    else:
        des = bench_des_single_run(n=64, duration=600.0, loss=0.1, seed=7)
        thm4 = bench_thm4(fast_mode=False)
        intern = bench_reference_intern(n=16, duration=600.0, seed=3)
    return {
        "schema": 1,
        "suite": "perf_mp",
        "mode": "quick" if quick else "full",
        "des_single_run": des,
        "run_thm4": thm4,
        "reference_des_microbench": intern,
        "equivalence": (
            "fast and reference engines produced identical token timelines, "
            "final states, caches, message statistics and event counts in "
            "every timed run (enforced inline; see "
            "tests/messagepassing/test_mp_fastpath.py for the full "
            "differential suite)"
        ),
    }


def format_report(payload: dict) -> str:
    """Human-readable summary of a bench payload."""
    des = payload["des_single_run"]
    thm4 = payload["run_thm4"]
    intern = payload["reference_des_microbench"]
    return "\n".join([
        f"DES single run : {des['speedup']}x "
        f"({des['reference_seconds']}s -> {des['fastpath_seconds']}s, "
        f"{des['events']} events, n={des['n']})",
        f"run_thm4       : {thm4['speedup']}x "
        f"({thm4['reference_seconds']}s -> {thm4['fastpath_seconds']}s, "
        f"rows identical)",
        f"payload intern : {intern['speedup']}x on the reference engine "
        f"({intern['uninterned_seconds']}s -> {intern['interned_seconds']}s)",
    ])


def check_gates(
    payload: dict,
    min_mp_speedup: Optional[float] = None,
    min_thm4_speedup: Optional[float] = None,
) -> List[str]:
    """Speedup gates; returns failure messages (empty = all gates pass)."""
    failures = []
    if min_mp_speedup is not None:
        got = payload["des_single_run"]["speedup"]
        if got < min_mp_speedup:
            failures.append(
                f"DES single-run speedup {got} < {min_mp_speedup}")
    if min_thm4_speedup is not None:
        got = payload["run_thm4"]["speedup"]
        if got < min_thm4_speedup:
            failures.append(f"run_thm4 speedup {got} < {min_thm4_speedup}")
    return failures


__all__ = [
    "bench_des_single_run",
    "bench_thm4",
    "bench_reference_intern",
    "run_mp_bench",
    "format_report",
    "check_gates",
]
