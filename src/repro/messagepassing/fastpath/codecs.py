"""Per-algorithm packed encodings for the message-passing fastpath.

An :class:`MPCodec` translates between an algorithm's native local states
and small integers, and evaluates the *local-view* semantics the CST nodes
need — rule resolution, rule execution and the own-view token predicate —
directly on packed integers.  A local view in the reference path is a
length-n list with ``(cache_pred, own, cache_succ)`` at positions
``i-1, i, i+1`` and ``None`` elsewhere; because every shipped guard only
reads those three positions, the codec collapses the view to three ints.

Encodings reuse the PR 2 conventions, now served by the shared kernel
layer (:mod:`repro.kernels`):

* **SSRmin** — ``packed = (x << 2) | (rts << 1) | tra`` (the handshake code
  ``h = packed & 3`` is exactly the fastpath kernel's ``h``), with guard
  resolution through the shared 128-entry
  :data:`~repro.kernels.rule_table.RULE_TABLE`, rule execution through
  :func:`~repro.kernels.successor.execute_ssrmin_word` and legitimacy
  through :func:`~repro.kernels.packing.ssrmin_words_legitimate` — the
  same modules the shared-memory kernel rides;
* **Dijkstra's K-state ring** — the bare counter (identity packing), its
  moves through :func:`~repro.kernels.successor.execute_dijkstra_word`.

Codecs are *stateless* translators (safe to share across networks); the
engine owns all mutable arrays.  Equivalence with the
:class:`~repro.core.rules.RuleSet` path over every local neighbourhood is
enforced exhaustively in ``tests/messagepassing/test_mp_fastpath.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.kernels.packing import (
    ssrmin_decode_table,
    ssrmin_word_bound,
    ssrmin_words_legitimate,
)
from repro.kernels.rule_table import (
    DIJKSTRA_RULE_NAMES,
    RULE_TABLE,
    SSRMIN_RULE_NAMES,
)
from repro.kernels.successor import execute_dijkstra_word, execute_ssrmin_word


class MPCodec:
    """Base interface for packed message-passing encodings.

    Attributes
    ----------
    bidirectional:
        Whether nodes cache both neighbours (SSRmin) or only the
        predecessor (Dijkstra).  Unidirectional codecs receive ``0`` for
        the (nonexistent) successor cache in every local-view call.
    rule_names:
        Rule names by id; id 0 (disabled) maps to the empty string.
    """

    bidirectional: bool = True
    rule_names: Tuple[str, ...] = ("",)

    n: int
    K: int
    #: Exclusive upper bound of the packed-integer domain (every valid
    #: packed state satisfies ``0 <= packed < packed_bound``).  The binary
    #: wire uses it to reject corrupted words before ``unpack``.
    packed_bound: int

    # -- state translation ---------------------------------------------------
    def pack(self, state: Any) -> int:
        """Encode a native local state; raises ``KeyError``/``ValueError``
        for states outside the algorithm's domain."""
        raise NotImplementedError

    def try_pack(self, state: Any) -> Optional[int]:
        """Encode, or ``None`` for out-of-domain states (caller falls back
        to the reference path for that evaluation)."""
        try:
            return self.pack(state)
        except (KeyError, ValueError, TypeError):
            return None

    def unpack(self, packed: int) -> Any:
        """Decode to the native (interned) local state."""
        raise NotImplementedError

    # -- local-view semantics ------------------------------------------------
    def rule_id(self, own: int, cpred: int, csucc: int, i: int) -> int:
        """Id of the unique enabled rule at node ``i`` in its cached view
        (priority resolved), or 0 when disabled."""
        raise NotImplementedError

    def execute(self, rid: int, own: int, cpred: int, csucc: int, i: int) -> int:
        """Packed new local state after executing rule ``rid``."""
        raise NotImplementedError

    def holds_token(self, own: int, cpred: int, csucc: int, i: int) -> bool:
        """Definition 3's own-view token predicate ``h_i``."""
        raise NotImplementedError

    def is_legitimate(self, packed_states: Sequence[int]) -> bool:
        """Legitimacy of the *true* configuration, on packed states."""
        raise NotImplementedError


class SSRminMPCodec(MPCodec):
    """Packed local-view semantics for :class:`repro.core.ssrmin.SSRmin`."""

    bidirectional = True
    rule_names = SSRMIN_RULE_NAMES

    def __init__(self, algorithm):
        self.algorithm = algorithm
        self.n = algorithm.n
        self.K = algorithm.K
        self.packed_bound = ssrmin_word_bound(self.K)
        # Interned decode table: packed -> (x, rts, tra); pack is its inverse.
        self._unpack: List[Tuple[int, int, int]] = ssrmin_decode_table(self.K)
        self._pack: Dict[Tuple[int, int, int], int] = {
            s: p for p, s in enumerate(self._unpack)
        }

    def pack(self, state: Any) -> int:
        return self._pack[tuple(state)]

    def unpack(self, packed: int) -> Tuple[int, int, int]:
        return self._unpack[packed]

    def rule_id(self, own: int, cpred: int, csucc: int, i: int) -> int:
        # G_i on the cached view: own x against the *cached* predecessor x
        # (bottom process compares equal, others compare different) — the
        # same table index layout as the shared-memory kernel.
        if i == 0:
            g = (own >> 2) == (cpred >> 2)
        else:
            g = (own >> 2) != (cpred >> 2)
        return RULE_TABLE[
            (g << 6) | ((cpred & 3) << 4) | ((own & 3) << 2) | (csucc & 3)
        ]

    def execute(self, rid: int, own: int, cpred: int, csucc: int, i: int) -> int:
        # One shared executor with the shared-memory kernel — R1/R3/R5
        # rewrite handshake bits, R2/R4 move the counter through C_i.
        return execute_ssrmin_word(rid, own, cpred, i, self.K)

    def holds_token(self, own: int, cpred: int, csucc: int, i: int) -> bool:
        # Primary: G_i.  Secondary: tra_i, or rts_i with a quiet successor.
        if i == 0:
            if (own >> 2) == (cpred >> 2):
                return True
        elif (own >> 2) != (cpred >> 2):
            return True
        return bool((own & 1) or ((own & 2) and not (csucc & 3)))

    def is_legitimate(self, packed_states: Sequence[int]) -> bool:
        # The shared full-pass Definition 1 predicate (the incremental
        # counter-gated variant lives in SSRminKernel; both are pinned
        # equivalent by the differential suites).
        return ssrmin_words_legitimate(packed_states, self.K)


class DijkstraMPCodec(MPCodec):
    """Packed local-view semantics for Dijkstra's K-state token ring.

    States are already small ints, so packing is the identity (with a
    domain check); the ring is unidirectional — nodes cache only the
    predecessor and the successor-cache argument is ignored.
    """

    bidirectional = False
    rule_names = DIJKSTRA_RULE_NAMES

    def __init__(self, algorithm):
        self.algorithm = algorithm
        self.n = algorithm.n
        self.K = algorithm.K
        self.packed_bound = self.K

    def pack(self, state: Any) -> int:
        s = int(state)
        if not 0 <= s < self.K or s != state:
            raise ValueError(f"state {state!r} outside domain [0, {self.K})")
        return s

    def unpack(self, packed: int) -> int:
        return packed

    def rule_id(self, own: int, cpred: int, csucc: int, i: int) -> int:
        if i == 0:
            return 1 if own == cpred else 0
        return 2 if own != cpred else 0

    def execute(self, rid: int, own: int, cpred: int, csucc: int, i: int) -> int:
        return execute_dijkstra_word(rid, cpred, self.K)

    def holds_token(self, own: int, cpred: int, csucc: int, i: int) -> bool:
        # Privilege == enabledness for Dijkstra's ring (the base-class
        # node_holds_token default).
        return (own == cpred) if i == 0 else (own != cpred)

    def is_legitimate(self, packed_states: Sequence[int]) -> bool:
        from repro.algorithms.dijkstra import is_dijkstra_legitimate

        return is_dijkstra_legitimate(tuple(packed_states), self.K)


__all__ = ["MPCodec", "SSRminMPCodec", "DijkstraMPCodec"]
