"""Per-algorithm packed encodings for the message-passing fastpath.

An :class:`MPCodec` translates between an algorithm's native local states
and small integers, and evaluates the *local-view* semantics the CST nodes
need — rule resolution, rule execution and the own-view token predicate —
directly on packed integers.  A local view in the reference path is a
length-n list with ``(cache_pred, own, cache_succ)`` at positions
``i-1, i, i+1`` and ``None`` elsewhere; because every shipped guard only
reads those three positions, the codec collapses the view to three ints.

Encodings reuse the PR 2 conventions:

* **SSRmin** — ``packed = (x << 2) | (rts << 1) | tra`` (the handshake code
  ``h = packed & 3`` is exactly the fastpath kernel's ``h``), with guard
  resolution through the shared 128-entry
  :data:`~repro.simulation.fastpath.ssrmin_kernel.RULE_TABLE`;
* **Dijkstra's K-state ring** — the bare counter (identity packing).

Codecs are *stateless* translators (safe to share across networks); the
engine owns all mutable arrays.  Equivalence with the
:class:`~repro.core.rules.RuleSet` path over every local neighbourhood is
enforced exhaustively in ``tests/messagepassing/test_mp_fastpath.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.simulation.fastpath.ssrmin_kernel import RULE_TABLE, SSRMIN_RULE_NAMES


class MPCodec:
    """Base interface for packed message-passing encodings.

    Attributes
    ----------
    bidirectional:
        Whether nodes cache both neighbours (SSRmin) or only the
        predecessor (Dijkstra).  Unidirectional codecs receive ``0`` for
        the (nonexistent) successor cache in every local-view call.
    rule_names:
        Rule names by id; id 0 (disabled) maps to the empty string.
    """

    bidirectional: bool = True
    rule_names: Tuple[str, ...] = ("",)

    n: int
    K: int
    #: Exclusive upper bound of the packed-integer domain (every valid
    #: packed state satisfies ``0 <= packed < packed_bound``).  The binary
    #: wire uses it to reject corrupted words before ``unpack``.
    packed_bound: int

    # -- state translation ---------------------------------------------------
    def pack(self, state: Any) -> int:
        """Encode a native local state; raises ``KeyError``/``ValueError``
        for states outside the algorithm's domain."""
        raise NotImplementedError

    def try_pack(self, state: Any) -> Optional[int]:
        """Encode, or ``None`` for out-of-domain states (caller falls back
        to the reference path for that evaluation)."""
        try:
            return self.pack(state)
        except (KeyError, ValueError, TypeError):
            return None

    def unpack(self, packed: int) -> Any:
        """Decode to the native (interned) local state."""
        raise NotImplementedError

    # -- local-view semantics ------------------------------------------------
    def rule_id(self, own: int, cpred: int, csucc: int, i: int) -> int:
        """Id of the unique enabled rule at node ``i`` in its cached view
        (priority resolved), or 0 when disabled."""
        raise NotImplementedError

    def execute(self, rid: int, own: int, cpred: int, csucc: int, i: int) -> int:
        """Packed new local state after executing rule ``rid``."""
        raise NotImplementedError

    def holds_token(self, own: int, cpred: int, csucc: int, i: int) -> bool:
        """Definition 3's own-view token predicate ``h_i``."""
        raise NotImplementedError

    def is_legitimate(self, packed_states: Sequence[int]) -> bool:
        """Legitimacy of the *true* configuration, on packed states."""
        raise NotImplementedError


class SSRminMPCodec(MPCodec):
    """Packed local-view semantics for :class:`repro.core.ssrmin.SSRmin`."""

    bidirectional = True
    rule_names = SSRMIN_RULE_NAMES

    def __init__(self, algorithm):
        self.algorithm = algorithm
        self.n = algorithm.n
        self.K = algorithm.K
        self.packed_bound = self.K << 2
        # Interned decode table: packed -> (x, rts, tra); pack is its inverse.
        self._unpack: List[Tuple[int, int, int]] = [
            (p >> 2, (p >> 1) & 1, p & 1) for p in range(self.K << 2)
        ]
        self._pack: Dict[Tuple[int, int, int], int] = {
            s: p for p, s in enumerate(self._unpack)
        }

    def pack(self, state: Any) -> int:
        return self._pack[tuple(state)]

    def unpack(self, packed: int) -> Tuple[int, int, int]:
        return self._unpack[packed]

    def rule_id(self, own: int, cpred: int, csucc: int, i: int) -> int:
        # G_i on the cached view: own x against the *cached* predecessor x
        # (bottom process compares equal, others compare different) — the
        # same table index layout as the shared-memory kernel.
        if i == 0:
            g = (own >> 2) == (cpred >> 2)
        else:
            g = (own >> 2) != (cpred >> 2)
        return RULE_TABLE[
            (g << 6) | ((cpred & 3) << 4) | ((own & 3) << 2) | (csucc & 3)
        ]

    def execute(self, rid: int, own: int, cpred: int, csucc: int, i: int) -> int:
        if rid == 1:                      # R1: <rts.tra> <- 10
            return (own & ~3) | 2
        if rid == 3:                      # R3: <rts.tra> <- 01
            return (own & ~3) | 1
        if rid == 5:                      # R5: <rts.tra> <- 00
            return own & ~3
        if rid in (2, 4):                 # R2 / R4: x <- C_i, <rts.tra> <- 00
            xp = cpred >> 2
            nx = (xp + 1) % self.K if i == 0 else xp
            return nx << 2
        raise ValueError(f"unknown SSRmin rule id {rid}")

    def holds_token(self, own: int, cpred: int, csucc: int, i: int) -> bool:
        # Primary: G_i.  Secondary: tra_i, or rts_i with a quiet successor.
        if i == 0:
            if (own >> 2) == (cpred >> 2):
                return True
        elif (own >> 2) != (cpred >> 2):
            return True
        return bool((own & 1) or ((own & 2) and not (csucc & 3)))

    def is_legitimate(self, packed_states: Sequence[int]) -> bool:
        # Mirrors SSRminKernel: Dijkstra-legitimate x-vector (0 or 2 cyclic
        # boundaries, wraparound being one of them, step of +1 mod K) plus
        # the Definition 1 handshake shapes at the token position.
        n, K = self.n, self.K
        x = [p >> 2 for p in packed_states]
        h = [p & 3 for p in packed_states]
        diff_edges = sum(1 for i in range(n) if x[i] != x[i - 1])
        if diff_edges == 0:
            pos = 0
        elif diff_edges == 2:
            if x[0] == x[n - 1]:
                return False
            pos = next(b for b in range(1, n) if x[b] != x[b - 1])
            if x[0] != (x[pos] + 1) % K:
                return False
        else:
            return False
        nz = sum(1 for v in h if v)
        if nz == 1:
            return h[pos] in (1, 2)
        if nz == 2:
            return h[pos] == 2 and h[(pos + 1) % n] == 1
        return False


class DijkstraMPCodec(MPCodec):
    """Packed local-view semantics for Dijkstra's K-state token ring.

    States are already small ints, so packing is the identity (with a
    domain check); the ring is unidirectional — nodes cache only the
    predecessor and the successor-cache argument is ignored.
    """

    bidirectional = False
    rule_names = ("", "D1", "D2")

    def __init__(self, algorithm):
        self.algorithm = algorithm
        self.n = algorithm.n
        self.K = algorithm.K
        self.packed_bound = self.K

    def pack(self, state: Any) -> int:
        s = int(state)
        if not 0 <= s < self.K or s != state:
            raise ValueError(f"state {state!r} outside domain [0, {self.K})")
        return s

    def unpack(self, packed: int) -> int:
        return packed

    def rule_id(self, own: int, cpred: int, csucc: int, i: int) -> int:
        if i == 0:
            return 1 if own == cpred else 0
        return 2 if own != cpred else 0

    def execute(self, rid: int, own: int, cpred: int, csucc: int, i: int) -> int:
        if rid == 1:
            return (cpred + 1) % self.K
        if rid == 2:
            return cpred
        raise ValueError(f"unknown Dijkstra rule id {rid}")

    def holds_token(self, own: int, cpred: int, csucc: int, i: int) -> bool:
        # Privilege == enabledness for Dijkstra's ring (the base-class
        # node_holds_token default).
        return (own == cpred) if i == 0 else (own != cpred)

    def is_legitimate(self, packed_states: Sequence[int]) -> bool:
        from repro.algorithms.dijkstra import is_dijkstra_legitimate

        return is_dijkstra_legitimate(tuple(packed_states), self.K)


__all__ = ["MPCodec", "SSRminMPCodec", "DijkstraMPCodec"]
