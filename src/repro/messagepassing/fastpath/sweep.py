"""Monte-Carlo loss sweeps: seeds × n × loss-rate grids over worker processes.

Loss-driven stabilization is statistical (Dolev & Herman's "unsupportive
environments" regime): confidence comes from *many seeds* at realistic ring
sizes, which is exactly what the packed engine plus a process pool deliver.
This module fans a (algorithm, n, loss, seed) grid across
:func:`repro.experiments.parallel.run_tasks_parallel`, one Theorem 4-style
run per cell:

* build ``transformed_from_chaos`` (arbitrary states + arbitrary caches),
* run to the legitimate+coherent entry condition
  (:class:`~repro.messagepassing.coherence.CoherenceTracker`),
* evaluate the post-stabilization model gap
  (:func:`~repro.messagepassing.modelgap.evaluate_gap`).

**Determinism.**  Each cell's RNG derivation depends only on its own
``seed`` value (``transformed_from_chaos`` seeds states with ``seed`` and
the network with ``seed + 1``), never on execution order — so results are
bit-identical across worker counts, and the returned list is always in
grid order (``itertools.product`` over n values × loss rates × seeds).

**Telemetry.**  Workers are separate processes, so their network-level
events cannot reach the parent's bus; instead the parent streams one
``("experiment", "sweep_cell")`` event per completed cell — in completion
order, carrying the full result row — into the ambient telemetry session.
Pass ``workers=1`` to keep everything in-process (cells then publish their
network events into the session too, at serial-wall-clock cost).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

#: Algorithm factories by name — names (not classes) cross the process
#: boundary.  Each maps (n) -> RingAlgorithm with a packed MP codec.
_ALGORITHMS: Dict[str, Callable[[int], object]] = {}


def _make_ssrmin(n: int):
    from repro.core.ssrmin import SSRmin

    return SSRmin(n, n + 1)


def _make_dijkstra(n: int):
    from repro.algorithms.dijkstra import DijkstraKState

    return DijkstraKState(n, n + 1)


_ALGORITHMS["ssrmin"] = _make_ssrmin
_ALGORITHMS["dijkstra"] = _make_dijkstra


@dataclass(frozen=True)
class SweepCell:
    """One completed Monte-Carlo cell (a full chaos-to-stabilized run)."""

    algorithm: str
    n: int
    loss: float
    seed: int
    stabilized_at: float
    min_tokens: int
    max_tokens: int
    zero_time: float
    events: int
    wall_seconds: float

    def to_json(self) -> dict:
        """Plain-dict form (telemetry event fields / JSON export)."""
        return asdict(self)


def _sweep_worker(payload: tuple) -> SweepCell:
    """Worker entry point (module-level for pickling): run one cell."""
    (algorithm, n, loss, seed, slice_duration, max_time, gap_duration,
     use_fastpath) = payload
    from repro.messagepassing.coherence import CoherenceTracker
    from repro.messagepassing.cst import transformed_from_chaos
    from repro.messagepassing.modelgap import evaluate_gap

    alg = _ALGORITHMS[algorithm](n)
    t0 = time.perf_counter()
    net = transformed_from_chaos(
        alg, seed=seed, loss_probability=loss, use_fastpath=use_fastpath,
    )
    tracker = CoherenceTracker(net)
    stabilized = tracker.run_until_stabilized(
        slice_duration=slice_duration, max_time=max_time,
    )
    report = evaluate_gap(net, duration=gap_duration, warmup=net.queue.now)
    wall = time.perf_counter() - t0
    return SweepCell(
        algorithm=algorithm,
        n=n,
        loss=loss,
        seed=seed,
        stabilized_at=stabilized,
        min_tokens=report.min_count,
        max_tokens=report.max_count,
        zero_time=report.zero_time,
        events=net.queue.executed,
        wall_seconds=wall,
    )


def run_loss_sweep(
    algorithm: str = "ssrmin",
    n_values: Sequence[int] = (8,),
    loss_rates: Sequence[float] = (0.0, 0.1, 0.3),
    seeds: Sequence[int] = range(10),
    *,
    workers: int = 2,
    slice_duration: float = 5.0,
    max_time: float = 20_000.0,
    gap_duration: float = 100.0,
    use_fastpath: Optional[bool] = None,
    on_cell: Optional[Callable[[SweepCell, int, int], None]] = None,
) -> List[SweepCell]:
    """Run the full seeds × n × loss grid; results in grid order.

    Parameters
    ----------
    algorithm:
        ``"ssrmin"`` or ``"dijkstra"`` (K is fixed at n+1, the minimal
        legal alphabet).
    n_values, loss_rates, seeds:
        The grid axes; cells are ``product(n_values, loss_rates, seeds)``.
    workers:
        Worker processes (1 = in-process; also forced in-process when
        already inside a daemonized pool worker).
    slice_duration, max_time:
        :meth:`CoherenceTracker.run_until_stabilized` parameters.
    gap_duration:
        Post-stabilization window for :func:`evaluate_gap`.
    use_fastpath:
        Explicit engine choice per cell (None = ambient default).  Results
        are engine-independent either way — the packed engine is
        draw-identical — so this is an A/B/debugging knob, not a semantic
        one.
    on_cell:
        Parent-side callback ``(cell, done, total)`` in completion order.
    """
    from repro.experiments.parallel import run_tasks_parallel
    from repro.telemetry.session import current_session

    if algorithm not in _ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; have {sorted(_ALGORITHMS)}"
        )
    grid = list(itertools.product(n_values, loss_rates, seeds))
    payloads = [
        (algorithm, n, loss, seed, slice_duration, max_time, gap_duration,
         use_fastpath)
        for n, loss, seed in grid
    ]

    def _on_result(index: int, cell: SweepCell, done: int, total: int) -> None:
        session = current_session()
        if session is not None:
            session.bus.publish(
                "experiment", "sweep_cell", float(done), **cell.to_json()
            )
        if on_cell is not None:
            on_cell(cell, done, total)

    return run_tasks_parallel(
        _sweep_worker, payloads, workers=workers, on_result=_on_result,
    )


__all__ = ["SweepCell", "run_loss_sweep"]
