"""Flat event wheel: packed-tuple scheduling for the fastpath engine.

The reference :class:`~repro.messagepassing.des.EventQueue` heap-pushes one
frozen dataclass per event, each holding a freshly allocated closure — two
object allocations plus dataclass ``__lt__`` dispatch per scheduled event.
The fastpath replaces that with plain tuples on a binary heap::

    (time, seq, code, a, b, c)

where ``code`` selects the engine's dispatch arm and ``a``/``b``/``c`` are
packed integer operands (link id + payload + loss flag for arrivals, node
index for dwell actions and timers, a callable for externally scheduled
events).  Tuple comparison resolves on ``(time, seq)`` before ever reaching
the operands because ``seq`` values are unique, so ordering is *identical*
to the reference queue's ``(time, seq)`` discipline.

Why a heap and not a hashed/calendar wheel (the textbook "event wheel")?
Event times here are floats drawn from continuous delay distributions, and
the bit-reproducibility contract requires the exact total order the
reference heap produces — including ties broken by insertion sequence.  A
bucketed wheel would need a per-bucket sort on exactly that key anyway, so
for this workload (tens of pending events per node, not millions) the flat
tuple heap keeps the constant factor low without risking ordering drift.
The name is kept for symmetry with the design it replaces.

The engine binds ``wheel.heap`` plus :func:`heapq.heappush`/``heappop``
locally in its run loop; the methods here are the convenience API used by
construction code and tests.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

#: Dispatch codes for packed entries (the engine's run-loop arms).
ARRIVE = 0   #: (time, seq, ARRIVE, link_id, packed_payload, lost_flag)
ACT = 1      #: (time, seq, ACT, node_index, 0, 0)
TIMER = 2    #: (time, seq, TIMER, node_index, 0, 0)
PYCALL = 3   #: (time, seq, PYCALL, callable, 0, 0) — drained external events


class EventWheel:
    """A flat binary heap of packed event tuples.

    Attributes
    ----------
    heap:
        The underlying list — exposed so hot loops can bind it (and the
        ``heapq`` functions) locally instead of paying a method call per
        event.
    """

    __slots__ = ("heap",)

    def __init__(self) -> None:
        self.heap: List[tuple] = []

    def push(self, entry: tuple) -> None:
        """Insert one packed entry ``(time, seq, code, a, b, c)``."""
        heapq.heappush(self.heap, entry)

    def pop(self) -> tuple:
        """Remove and return the earliest entry (raises ``IndexError`` when
        empty)."""
        return heapq.heappop(self.heap)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest entry, or ``None`` when empty."""
        return self.heap[0][0] if self.heap else None

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)


__all__ = ["EventWheel", "ARRIVE", "ACT", "TIMER", "PYCALL"]
