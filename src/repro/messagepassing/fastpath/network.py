"""The packed CST/DES engine: a drop-in ``MessagePassingNetwork``.

:class:`FastCSTNetwork` subclasses the reference network and keeps its
*entire object graph* — real :class:`~repro.messagepassing.node.CSTNode`
and :class:`~repro.messagepassing.links.Link` instances, the shared
:class:`~repro.messagepassing.des.EventQueue`, the telemetry bus — as a
facade, while the run loop executes on flat packed arrays:

* node states / neighbour caches: small ints via the algorithm's
  :class:`~repro.messagepassing.fastpath.codecs.MPCodec`;
* links: parallel arrays of busy flags, coalesced pending slots,
  precompiled delay samplers and statistics counters;
* events: packed tuples on a flat :class:`~.wheel.EventWheel`;
* observation: own-view token holders, cache staleness and the
  legitimate+coherent entry condition maintained incrementally.

**Fidelity contract.**  The engine consumes the network's single seeded
``random.Random`` in exactly the reference order (per transmission: loss
draw, optional duplication draw, delay draw; per timer arming: one
``uniform(0, jitter)``; per pending action: one dwell draw) and assigns
event sequence numbers from the facade queue's own counter, so the
``(time, seq)`` total order — and therefore every timeline record, census,
statistic and stabilization time — is bit-identical to the reference DES.
The differential suite in ``tests/messagepassing/test_mp_fastpath.py``
and the golden-trace replay enforce this record-for-record.

**Facade synchronization.**  Node ``state`` and ``cache`` entries are
mirrored *eagerly* (one interned write per change), so observers and
coherence checks that read the object graph mid-run see exact values.
Link flags/statistics, node counters and ``queue.executed`` are synced at
every run-slice boundary; external mutations of the facade between slices
(fault injection helpers, tests poking ``delay_model`` or outages) are
folded back into the packed arrays by a re-pack at the next ``run()``.

External events scheduled on the facade ``EventQueue`` are drained into
the wheel as ``PYCALL`` entries, preserving their ``(time, seq)`` slots.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.messagepassing.des import EventQueue
from repro.messagepassing.fastpath.codecs import MPCodec
from repro.messagepassing.fastpath.wheel import ACT, ARRIVE, PYCALL, TIMER, EventWheel
from repro.messagepassing.links import (
    DelayModel,
    ExponentialDelay,
    FixedDelay,
    Link,
    Message,
    UniformDelay,
)
from repro.messagepassing.network import MessagePassingNetwork
from repro.messagepassing.node import CSTNode

#: Sampler kinds produced by :func:`_compile_sampler`.
_FIXED, _UNIFORM, _EXPO, _GENERIC = 0, 1, 2, 3


def _compile_sampler(model: Optional[DelayModel]) -> Tuple[int, float, float, Any]:
    """Flatten a delay model into ``(kind, a, b, fallback)``.

    Exact-type checks only: a subclass overriding ``sample`` must keep its
    own draw discipline, so it goes through the generic arm.
    """
    if model is None:
        return (_FIXED, 0.0, 0.0, None)
    t = type(model)
    if t is FixedDelay:
        return (_FIXED, model.delay, 0.0, model)
    if t is UniformDelay:
        return (_UNIFORM, model.low, model.high, model)
    if t is ExponentialDelay:
        return (_EXPO, model.floor, 1.0 / model.mean, model)
    return (_GENERIC, 0.0, 0.0, model)


class FastCSTNetwork(MessagePassingNetwork):
    """Packed-engine CST network, draw-identical to the reference DES.

    Built by :func:`~repro.messagepassing.network.build_cst_network` when
    the algorithm provides an :class:`MPCodec` and the fastpath is enabled;
    never constructed directly by experiment code.
    """

    #: Capability flag probed by :class:`~repro.messagepassing.coherence.
    #: CoherenceTracker`: the engine records the legitimate+coherent entry
    #: condition natively at every observation point.
    native_stabilization = True

    def __init__(
        self,
        algorithm: RingAlgorithm,
        nodes: List[CSTNode],
        queue: EventQueue,
        timer_interval: float,
        timer_jitter: float,
        rng: random.Random,
        token_predicate: Callable[[CSTNode], bool],
        codec: MPCodec,
    ):
        super().__init__(
            algorithm, nodes, queue, timer_interval, timer_jitter, rng,
            token_predicate,
        )
        self.codec = codec
        self._wheel = EventWheel()
        n = len(nodes)
        self._n = n
        self._bidir = codec.bidirectional
        #: Simulation time at which legitimate + cache-coherent first held
        #: at an observation point (None until it does).
        self._stab_time: Optional[float] = None
        #: Holder mask at the last timeline record (None before the first);
        #: int comparison replaces the reference's tuple-equality coalescing.
        self._last_mask: Optional[int] = None
        self._mask_memo: Dict[int, Tuple[int, ...]] = {}

        # -- node arrays ---------------------------------------------------
        self._p = [0] * n            # packed own states
        self._cp = [0] * n           # packed predecessor-cache values
        self._cs = [0] * n           # packed successor-cache values (bidir)
        self._pending_act = [False] * n
        self._hold = [False] * n
        self._holders_mask = 0
        self._stale_pred = [False] * n
        self._stale_succ = [False] * n
        self._stale_count = 0
        self._rules_executed = [0] * n
        self._messages_received = [0] * n
        self._timer_fires = [0] * n
        self._chatty = [bool(node.chatty) for node in nodes]
        self._dwell = _compile_sampler(nodes[0].dwell_model)
        self._has_dwell = nodes[0].dwell_model is not None

        # -- link arrays (same construction order as the facade dicts) -----
        self._lid: Dict[Tuple[int, int], int] = {}
        self._links: List[Link] = []
        self._l_src: List[int] = []
        self._l_dst: List[int] = []
        self._l_slot: List[int] = []       # 0: feeds dst's pred cache, 1: succ
        self._out_lids: List[List[int]] = [[] for _ in range(n)]
        for node in nodes:
            for dst, link in node.links.items():
                lid = len(self._links)
                self._lid[(node.index, dst)] = lid
                self._links.append(link)
                self._l_src.append(node.index)
                self._l_dst.append(dst)
                self._l_slot.append(0 if node.index == (dst - 1) % n else 1)
                self._out_lids[node.index].append(lid)
        m = len(self._links)
        self._l_busy = [False] * m
        self._l_pending = [0] * m
        self._l_has_pending = [False] * m
        self._l_sent = [0] * m
        self._l_delivered = [0] * m
        self._l_lost = [0] * m
        self._l_coalesced = [0] * m
        self._l_duplicated = [0] * m
        self._l_loss = [0.0] * m
        self._l_dup = [0.0] * m
        self._l_outage = [0.0] * m
        self._l_sampler: List[Tuple[int, float, float, Any]] = [
            (_FIXED, 0.0, 0.0, None)
        ] * m

        self._sync_in()

    # -- packing helpers ---------------------------------------------------
    def _pack_state(self, state: Any, what: str) -> int:
        packed = self.codec.try_pack(state)
        if packed is None:
            raise ValueError(
                f"{what} {state!r} is outside the packed domain of "
                f"{type(self.algorithm).__name__}; rebuild the network with "
                "use_fastpath=False to simulate out-of-domain values"
            )
        return packed

    def _sync_in(self) -> None:
        """Fold the facade object graph back into the packed arrays.

        Runs at ``start()`` and at every ``run()`` entry, so facade-level
        mutations between slices (tests, fault scripts) are honoured
        exactly as the reference engine would honour them.
        """
        n, nodes = self._n, self.nodes
        p, cp, cs = self._p, self._cp, self._cs
        pack = self._pack_state
        for i in range(n):
            node = nodes[i]
            p[i] = pack(node.state, f"state of node {i}")
            pred, succ = (i - 1) % n, (i + 1) % n
            if pred in node.cache:
                cp[i] = pack(node.cache[pred], f"cache[{pred}] of node {i}")
            if self._bidir and succ in node.cache:
                cs[i] = pack(node.cache[succ], f"cache[{succ}] of node {i}")
        for lid, link in enumerate(self._links):
            self._l_loss[lid] = link.loss_probability
            self._l_dup[lid] = getattr(link, "duplicate_probability", 0.0)
            self._l_outage[lid] = link.outage_until
            sampler = self._l_sampler[lid]
            if sampler[3] is not link.delay_model:
                self._l_sampler[lid] = _compile_sampler(link.delay_model)
        self._recount()

    def _recount(self) -> None:
        """Recompute holder bits and staleness from the packed arrays."""
        n, p, cp, cs = self._n, self._p, self._cp, self._cs
        holds = self.codec.holds_token
        bidir = self._bidir
        mask = 0
        stale = 0
        for i in range(n):
            b = holds(p[i], cp[i], cs[i], i)
            self._hold[i] = b
            if b:
                mask |= 1 << i
            sp = cp[i] != p[(i - 1) % n]
            self._stale_pred[i] = sp
            stale += sp
            if bidir:
                ss = cs[i] != p[(i + 1) % n]
                self._stale_succ[i] = ss
                stale += ss
        self._holders_mask = mask
        self._stale_count = stale

    def _sync_out(self) -> None:
        """Mirror engine-side flags/counters back onto the facade objects."""
        unpack = self.codec.unpack
        for lid, link in enumerate(self._links):
            link.busy = self._l_busy[lid]
            if self._l_has_pending[lid]:
                link.pending = Message(
                    self._l_src[lid], unpack(self._l_pending[lid])
                )
                link._has_pending = True
            else:
                link.pending = None
                link._has_pending = False
            link.sent = self._l_sent[lid]
            link.delivered = self._l_delivered[lid]
            link.lost = self._l_lost[lid]
            link.coalesced = self._l_coalesced[lid]
            link.duplicated = self._l_duplicated[lid]
        for i, node in enumerate(self.nodes):
            node.rules_executed = self._rules_executed[i]
            node.messages_received = self._messages_received[i]
            node.timer_fires = self._timer_fires[i]
            node._action_pending = self._pending_act[i]

    # -- observation -------------------------------------------------------
    def _holders_tuple(self) -> Tuple[int, ...]:
        mask = self._holders_mask
        memo = self._mask_memo
        t = memo.get(mask)
        if t is None:
            if len(memo) > 4096:
                memo.clear()
            t = memo[mask] = tuple(
                i for i in range(self._n) if mask >> i & 1
            )
        return t

    def token_holders(self) -> Tuple[int, ...]:
        """Own-view holder set, from the incrementally maintained bits."""
        return self._holders_tuple()

    def observe(self) -> None:
        """Reference-point observation on packed state.

        Mirrors the base class exactly — timeline record (coalesced),
        census publish when the bus is live, observer callbacks — plus the
        native legitimate+coherent stabilization check, evaluated at
        precisely the reference's observation points.
        """
        mask = self._holders_mask
        if mask != self._last_mask:
            # The reference records unconditionally and lets the timeline
            # coalesce on tuple equality; comparing masks first is the same
            # decision without materializing the tuple.
            self.timeline.record(self.queue.now, self._holders_tuple())
            self._last_mask = mask
        if self.bus._subscribers:
            self.bus.publish("network", "census", self.queue.now,
                             holders=list(self._holders_tuple()))
        if self.observers:
            for callback in self.observers:
                callback(self)
        if self._stab_time is None and self._stale_count == 0:
            if self.codec.is_legitimate(self._p):
                self._stab_time = self.queue.now

    def stabilized_time(self) -> Optional[float]:
        """First observation-point time at which the network was legitimate
        with coherent caches, or ``None`` (the Theorem 4 entry condition,
        tracked natively so no per-event Python callback is needed)."""
        return self._stab_time

    def reset_stabilization(self) -> None:
        """Re-arm the native stabilization latch.

        A :class:`~repro.messagepassing.coherence.CoherenceTracker`
        constructed mid-life (after fault injection, say) must only report
        condition-holds *from its construction onward* — exactly what the
        reference observer-based tracker sees — so it clears the historical
        latch and lets the next observation re-record.
        """
        self._stab_time = None

    def stabilization_condition_now(self) -> bool:
        """Whether legitimate + cache-coherent holds at this instant.

        The poll-time (non-observation-point) check the reference tracker
        performs directly on the object graph; O(n) on packed state.
        """
        return self._stale_count == 0 and self.codec.is_legitimate(self._p)

    # -- engine primitives -------------------------------------------------
    def _transmit(self, lid: int, packed: int) -> None:
        self._l_busy[lid] = True
        self._l_sent[lid] += 1
        bus = self.bus
        if bus._subscribers:
            bus.publish("network", "send", self.queue.now,
                        src=self._l_src[lid], dst=self._l_dst[lid],
                        state=self.codec.unpack(packed))
        rng = self.rng
        lost = (
            rng.random() < self._l_loss[lid]
            or self.queue.now < self._l_outage[lid]
        )
        flags = 1 if lost else 0
        dup = self._l_dup[lid]
        if dup > 0.0 and rng.random() < dup:
            flags |= 2
            self._l_duplicated[lid] += 1
        kind, a, b, model = self._l_sampler[lid]
        if kind == _FIXED:
            delay = a
        elif kind == _UNIFORM:
            # Inlined random.Random.uniform — bit-identical by definition.
            delay = a + (b - a) * rng.random()
        elif kind == _EXPO:
            delay = a + rng.expovariate(b)
        else:
            delay = model.sample(rng)
        heappush(
            self._wheel.heap,
            (self.queue.now + delay, next(self.queue._seq), ARRIVE,
             lid, packed, flags),
        )

    def _broadcast(self, i: int) -> None:
        packed = self._p[i]
        busy, has_pending = self._l_busy, self._l_has_pending
        for lid in self._out_lids[i]:
            if busy[lid]:
                if has_pending[lid]:
                    self._l_coalesced[lid] += 1
                self._l_pending[lid] = packed
                has_pending[lid] = True
            else:
                self._transmit(lid, packed)

    def _consider(self, i: int) -> None:
        if self._pending_act[i]:
            return
        if not self.codec.rule_id(self._p[i], self._cp[i], self._cs[i], i):
            return
        self._pending_act[i] = True
        kind, a, b, model = self._dwell
        rng = self.rng
        if kind == _FIXED:
            dwell = a
        elif kind == _UNIFORM:
            dwell = a + (b - a) * rng.random()
        elif kind == _EXPO:
            dwell = a + rng.expovariate(b)
        else:
            dwell = model.sample(rng)
        heappush(
            self._wheel.heap,
            (self.queue.now + dwell, next(self.queue._seq), ACT, i, 0, 0),
        )

    def _set_state(self, i: int, packed: int) -> None:
        """Write a node's state and maintain every incremental structure,
        then observe (the reference's ``on_state_change`` point)."""
        n = self._n
        self._p[i] = packed
        self.nodes[i].state = self.codec.unpack(packed)
        succ = (i + 1) % n
        sp = self._cp[succ] != packed
        if sp != self._stale_pred[succ]:
            self._stale_pred[succ] = sp
            self._stale_count += 1 if sp else -1
        if self._bidir:
            pred = (i - 1) % n
            ss = self._cs[pred] != packed
            if ss != self._stale_succ[pred]:
                self._stale_succ[pred] = ss
                self._stale_count += 1 if ss else -1
        self._refresh_hold(i)
        self.observe()

    def _refresh_hold(self, i: int) -> None:
        b = self.codec.holds_token(self._p[i], self._cp[i], self._cs[i], i)
        if b != self._hold[i]:
            self._hold[i] = b
            self._holders_mask ^= 1 << i

    def _try_execute(self, i: int) -> bool:
        codec = self.codec
        own = self._p[i]
        rid = codec.rule_id(own, self._cp[i], self._cs[i], i)
        if not rid:
            return False
        new = codec.execute(rid, own, self._cp[i], self._cs[i], i)
        self._rules_executed[i] += 1
        if new != own:
            self._set_state(i, new)
        return True

    def _deliver(self, lid: int, packed: int) -> None:
        """One message delivery: the reference ``make_deliver`` +
        ``CSTNode.on_receive`` path on packed state."""
        dst = self._l_dst[lid]
        src = self._l_src[lid]
        self._messages_received[dst] += 1
        if self._l_slot[lid] == 0:
            self._cp[dst] = packed
            sp = packed != self._p[src]
            if sp != self._stale_pred[dst]:
                self._stale_pred[dst] = sp
                self._stale_count += 1 if sp else -1
        else:
            self._cs[dst] = packed
            ss = packed != self._p[src]
            if ss != self._stale_succ[dst]:
                self._stale_succ[dst] = ss
                self._stale_count += 1 if ss else -1
        self.nodes[dst].cache[src] = self.codec.unpack(packed)
        self._refresh_hold(dst)
        if not self._has_dwell:
            changed = self._try_execute(dst)
            if self._chatty[dst] or changed:
                self._broadcast(dst)
        else:
            if self._chatty[dst]:
                self._broadcast(dst)
            self._consider(dst)
        self.observe()

    def _arm_timer_fast(self, i: int) -> None:
        # interval + uniform(0, jitter); ``0.0 + (j - 0.0) * r == j * r``
        # exactly for j >= 0, so the inlined form is draw-identical.
        delay = self.timer_interval + self.timer_jitter * self.rng.random()
        heappush(
            self._wheel.heap,
            (self.queue.now + delay, next(self.queue._seq), TIMER, i, 0, 0),
        )

    def _drain_facade_queue(self) -> None:
        """Move externally scheduled facade events onto the wheel,
        preserving their ``(time, seq)`` slots."""
        fq = self.queue._heap
        if fq:
            heap = self._wheel.heap
            while fq:
                ev = heappop(fq)
                heappush(heap, (ev.time, ev.seq, PYCALL, ev.action, 0, 0))

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Reference-identical startup on the packed engine."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        self._sync_in()
        self.bus.publish(
            "network", "net_start", self.queue.now,
            algorithm=type(self.algorithm).__name__,
            n=self._n,
            K=getattr(self.algorithm, "K", None),
            seed=self.seed,
            timer_interval=self.timer_interval,
            timer_jitter=self.timer_jitter,
        )
        self.observe()
        for i in range(self._n):
            self._arm_timer_fast(i)
            self._broadcast(i)
        self.observe()

    def run(self, duration: float, max_events: Optional[int] = None) -> None:
        """Advance simulated time by ``duration`` on the packed engine."""
        if not self._started:
            self.start()
        else:
            self._sync_in()
        self._run_until(self.queue.now + duration, max_events)
        self.timeline.finish(self.queue.now)

    def _run_until(self, t_end: float, max_events: Optional[int]) -> int:
        self._drain_facade_queue()
        heap = self._wheel.heap
        queue = self.queue
        bus = self.bus
        subs = bus._subscribers
        unpack = self.codec.unpack
        l_src, l_dst = self._l_src, self._l_dst
        l_busy = self._l_busy
        l_has_pending = self._l_has_pending
        l_pending = self._l_pending
        count = 0
        while heap and heap[0][0] <= t_end:
            entry = heappop(heap)
            time_ = entry[0]
            queue.now = time_
            code = entry[2]
            if code == ARRIVE:
                lid = entry[3]
                packed = entry[4]
                flags = entry[5]
                l_busy[lid] = False
                if flags & 1:
                    self._l_lost[lid] += 1
                    if subs:
                        bus.publish("network", "loss", time_,
                                    src=l_src[lid], dst=l_dst[lid],
                                    state=unpack(packed))
                else:
                    copies = 2 if flags & 2 else 1
                    for _ in range(copies):
                        self._l_delivered[lid] += 1
                        if subs:
                            bus.publish("network", "deliver", time_,
                                        src=l_src[lid], dst=l_dst[lid],
                                        state=unpack(packed))
                        self._deliver(lid, packed)
                # Pump the coalesced payload if delivery left the link free.
                if l_has_pending[lid] and not l_busy[lid]:
                    pkt = l_pending[lid]
                    l_has_pending[lid] = False
                    self._transmit(lid, pkt)
            elif code == ACT:
                i = entry[3]
                self._pending_act[i] = False
                self._try_execute(i)
                self._broadcast(i)
                self._consider(i)
            elif code == TIMER:
                i = entry[3]
                if subs:
                    bus.publish("network", "timer", time_,
                                src=i, dst=i, state=None)
                self._timer_fires[i] += 1
                self._broadcast(i)
                if self._has_dwell:
                    self._consider(i)
                self._arm_timer_fast(i)
            else:  # PYCALL — externally scheduled facade event
                entry[3]()
                self._drain_facade_queue()
            count += 1
            if max_events is not None and count > max_events:
                queue.executed += count
                self._sync_out()
                raise RuntimeError(
                    f"exceeded max_events={max_events} before t={t_end}"
                )
        queue.now = max(queue.now, t_end)
        queue.executed += count
        self._sync_out()
        return count

    # -- fault injection (packed mirrors of the base hooks) ------------------
    def corrupt_node(self, index: int, new_state: Any) -> None:
        """Transient fault: overwrite a node's state (caches stay stale)."""
        node = self.nodes[index]
        packed = self._pack_state(new_state, f"state of node {index}")
        node.state = new_state
        n = self._n
        self._p[index] = packed
        succ = (index + 1) % n
        sp = self._cp[succ] != packed
        if sp != self._stale_pred[succ]:
            self._stale_pred[succ] = sp
            self._stale_count += 1 if sp else -1
        if self._bidir:
            pred = (index - 1) % n
            ss = self._cs[pred] != packed
            if ss != self._stale_succ[pred]:
                self._stale_succ[pred] = ss
                self._stale_count += 1 if ss else -1
        self._refresh_hold(index)
        # The reference fires on_state_change unconditionally, which lands
        # in the network's observe; mirror that observation point.
        self.observe()

    def corrupt_cache(self, index: int, neighbor: int, value: Any) -> None:
        """Transient fault: overwrite one cache entry."""
        node = self.nodes[index]
        if neighbor not in node.cache:
            raise ValueError(f"node {index} has no cache entry for {neighbor}")
        packed = self._pack_state(
            value, f"cache[{neighbor}] of node {index}"
        )
        node.cache[neighbor] = value
        n = self._n
        if neighbor == (index - 1) % n:
            self._cp[index] = packed
            sp = packed != self._p[neighbor]
            if sp != self._stale_pred[index]:
                self._stale_pred[index] = sp
                self._stale_count += 1 if sp else -1
        else:
            self._cs[index] = packed
            ss = packed != self._p[neighbor]
            if ss != self._stale_succ[index]:
                self._stale_succ[index] = ss
                self._stale_count += 1 if ss else -1
        self._refresh_hold(index)
        self.observe()

    def fail_link(self, a: int, b: int, duration: float) -> None:
        """Bidirectional outage window, mirrored into the packed arrays."""
        try:
            super().fail_link(a, b, duration)
        finally:
            for key in ((a, b), (b, a)):
                lid = self._lid.get(key)
                if lid is not None:
                    self._l_outage[lid] = self._links[lid].outage_until


__all__ = ["FastCSTNetwork"]
