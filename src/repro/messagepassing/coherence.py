"""Cache coherence (paper Definition 2) and incoherence classification.

A transformed system is *cache-coherent* when every node's cache holds the
latest value of each neighbour's state.  Non-silent algorithms like SSRmin
alternate coherence and incoherence forever; the paper classifies
incoherence as *good* (arising along an execution that started legitimate and
coherent — exactly the transient periods of Theorem 3) or *bad* (anything
else, e.g. right after transient faults).  :class:`CoherenceTracker` watches
a network and records when coherence first holds together with legitimacy —
the precondition after which Theorem 3's guarantee applies forever.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.messagepassing.network import MessagePassingNetwork


def stale_entries(nodes: Sequence) -> List[Tuple[int, int]]:
    """All ``(node, neighbor)`` pairs whose cache entry is stale.

    Operates on any collection of node-like objects exposing ``index``,
    ``state`` and ``cache`` (DES :class:`~repro.messagepassing.node.CSTNode`
    collections and the live runtime's server-held nodes alike); the
    collection must be indexable by process index.
    """
    out = []
    for node in nodes:
        for k, cached in node.cache.items():
            if cached != nodes[k].state:
                out.append((node.index, k))
    return out


def is_cache_coherent(network: MessagePassingNetwork) -> bool:
    """Definition 2: every cache entry equals the neighbour's current state."""
    return not stale_entries(network.nodes)


def incoherent_entries(
    network: MessagePassingNetwork,
) -> List[Tuple[int, int]]:
    """All ``(node, neighbor)`` pairs whose cache entry is stale."""
    return stale_entries(network.nodes)


class CoherenceTracker:
    """Polls a network for the "legitimate + coherent" entry condition.

    Theorem 4's statement: from arbitrary states and arbitrary caches, the
    system eventually reaches a configuration that is legitimate *with*
    cache coherence, after which the 1..2-token guarantee of Theorem 3 holds
    forever.  Call :meth:`poll` between run slices; the first time both
    conditions hold, :attr:`stabilized_at` is recorded.
    """

    def __init__(self, network: MessagePassingNetwork):
        self.network = network
        self._stabilized_at: Optional[float] = None
        # The packed engine maintains staleness incrementally and evaluates
        # this exact condition natively at every observation point; reading
        # its latch is O(1), so no per-observe Python callback is needed.
        self._native = bool(getattr(network, "native_stabilization", False))
        if self._native:
            # A tracker only reports condition-holds from its construction
            # onward (the reference registers its observer here); clear any
            # historical latch so the engine re-records from now.
            if network.stabilized_time() is not None:
                network.reset_stabilization()
        else:
            # Event-driven checking: the network calls us at every state/
            # cache change, so coherent instants between run slices are not
            # missed (they are fleeting in a non-silent system).
            network.observers.append(lambda net: self.poll())

    @property
    def stabilized_at(self) -> Optional[float]:
        """Simulation time at which legitimacy + coherence first held.

        On the packed engine this reads the native latch, so it updates
        mid-run exactly like the reference's observer-driven attribute.
        """
        if self._stabilized_at is None and self._native:
            self._stabilized_at = self.network.stabilized_time()
        return self._stabilized_at

    @stabilized_at.setter
    def stabilized_at(self, value: Optional[float]) -> None:
        self._stabilized_at = value

    def poll(self) -> bool:
        """Check the condition now; returns whether it has *ever* held."""
        if self.stabilized_at is not None:
            return True
        if self._native:
            # The latch (read above) covers every observation point; polls
            # can also land *between* observation points, where the
            # reference checks the condition directly.
            if self.network.stabilization_condition_now():
                self._stabilized_at = self.network.queue.now
                return True
            return False
        alg = self.network.algorithm
        config = alg.normalize_configuration(self.network.true_configuration())
        if alg.is_legitimate(config) and is_cache_coherent(self.network):
            self._stabilized_at = self.network.queue.now
            return True
        return False

    def run_until_stabilized(
        self,
        slice_duration: float = 1.0,
        max_time: float = 10_000.0,
    ) -> float:
        """Advance the network until the entry condition holds.

        Returns the stabilization time; raises :class:`RuntimeError` if
        ``max_time`` elapses first (which would falsify Lemma 9 for this
        run's parameters).
        """
        if not self.network._started:
            self.network.start()
        self.poll()
        while self.stabilized_at is None:
            if self.network.queue.now >= max_time:
                raise RuntimeError(
                    f"no legitimate+coherent configuration within t={max_time}"
                )
            self.network.run(slice_duration)
            self.poll()
        return self.stabilized_at
