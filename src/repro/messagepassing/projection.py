"""Synchronous CST projection — the lockstep shadow of the transformed system.

The full message-passing deployment (:mod:`repro.messagepassing.network`) is
asynchronous: timers, delays and dwell make its interleavings incomparable
step-for-step with the shared-memory engine.  The conformance oracle instead
uses this *projection*: real :class:`~repro.messagepassing.node.CSTNode`
objects with real caches and the real ``on_receive`` cache-update path, but
driven at the quiescent points of the transformed execution — each
composite-atomicity step of the state-reading model corresponds to a window
in which every CST timer has fired and every cache has been refreshed
(the Lemma 9 repair machinery, collapsed to a deterministic sweep).

One lockstep step is:

1. **channel phase** — scripted channel faults perturb the post-write
   broadcasts of the previous step: a ``lose`` op models a dropped
   broadcast (the cache simply keeps its current content), a ``delay`` op
   delivers the sender's *previous* state (a stale in-flight message), a
   ``duplicate`` op delivers the current state twice (retransmission);
   scripted cache corruptions land here too;
2. **timer sweep** — every node reliably broadcasts its current state to
   its CST recipients, and each recipient runs ``on_receive``.  On correct
   code this restores coherence whatever phase 1 did, which is exactly why
   an unmutated tree shows zero divergence under loss/delay/duplication
   scripts while a broken cache-update path is caught immediately;
3. **rule phase** — the oracle evaluates guards on each node's *cached
   view* and applies the selected commands with composite atomicity via
   :meth:`apply`.

The projection exposes the same observables the oracle compares across
models: node states, enabled set, resolved rules, own-view token holders
(Definition 3's ``h_i``) and per-node view coherence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.messagepassing.fastpath import resolve_mp_codec
from repro.messagepassing.node import CSTNode


class SynchronousCSTProjection:
    """Lockstep CST shadow of one algorithm instance.

    Parameters
    ----------
    algorithm:
        The state-reading algorithm (its ``ring`` decides message flow:
        bidirectional for SSRmin, forward-only for Dijkstra's SSToken).
    initial_states:
        Initial ``q_i`` per node; caches start coherent (the projection
        models the post-stabilization cache regime — incoherence enters
        only through scripted faults).
    """

    def __init__(self, algorithm: RingAlgorithm, initial_states: Sequence[Any]):
        n = algorithm.n
        if len(initial_states) != n:
            raise ValueError(f"need {n} initial states, got {len(initial_states)}")
        self.algorithm = algorithm
        ring = getattr(algorithm, "ring", None)
        if ring is not None:
            self._readable_of = ring.readable_neighbors
            self._recipients_of = ring.message_neighbors
        else:  # pragma: no cover - all shipped algorithms carry a ring
            self._readable_of = lambda i: ((i - 1) % n, (i + 1) % n)
            self._recipients_of = lambda i: ((i - 1) % n, (i + 1) % n)
        self.nodes: List[CSTNode] = [
            CSTNode(
                index=i,
                algorithm=algorithm,
                neighbors=self._readable_of(i),
                initial_state=initial_states[i],
                initial_cache={
                    k: initial_states[k] for k in self._readable_of(i)
                },
                # Deferred-action mode: a throwaway scheduler keeps
                # ``on_receive`` from executing rules inline — the oracle
                # owns the rule phase.
                scheduler=lambda delay, fn: None,
                dwell_model=_NullDwell(),
            )
            for i in range(n)
        ]
        #: States as of *before* the most recent :meth:`apply` — what a
        #: delayed (in-flight) message from the previous window carries.
        self._prev_states: List[Any] = list(initial_states)
        # Packed local-view semantics when available: guard resolution and
        # the token predicate collapse to table lookups.  Scripted faults
        # may write out-of-domain values, so every packed evaluation falls
        # back to the reference path per node when packing fails.
        self._codec = resolve_mp_codec(algorithm)

    @property
    def n(self) -> int:
        return self.algorithm.n

    def _packed_view(self, i: int) -> Optional[Tuple[int, int, int]]:
        """Node ``i``'s local view as packed ``(own, cpred, csucc)``, or
        ``None`` when disabled or any value is outside the packed domain."""
        codec = self._codec
        if codec is None:
            return None
        node = self.nodes[i]
        own = codec.try_pack(node.state)
        if own is None:
            return None
        n = self.algorithm.n
        cpred = csucc = 0
        pred, succ = (i - 1) % n, (i + 1) % n
        if pred in node.cache:
            cpred = codec.try_pack(node.cache[pred])
            if cpred is None:
                return None
        if codec.bidirectional and succ in node.cache:
            csucc = codec.try_pack(node.cache[succ])
            if csucc is None:
                return None
        return own, cpred, csucc

    # -- observables ---------------------------------------------------------
    def states(self) -> Tuple[Any, ...]:
        """The vector of true node states."""
        return tuple(node.state for node in self.nodes)

    def view(self, i: int) -> List[Any]:
        """Node ``i``'s cached pseudo-configuration."""
        return self.nodes[i].view()

    def enabled(self) -> Tuple[int, ...]:
        """Processes with an enabled rule *in their own cached view*."""
        alg = self.algorithm
        codec = self._codec
        out = []
        for i in range(self.n):
            pv = self._packed_view(i)
            if pv is not None:
                if codec.rule_id(pv[0], pv[1], pv[2], i):
                    out.append(i)
            elif alg.enabled_rule(self.nodes[i].view(), i) is not None:
                out.append(i)
        return tuple(out)

    def rule_name(self, i: int) -> Optional[str]:
        """Name of node ``i``'s enabled rule in its cached view, or None."""
        pv = self._packed_view(i)
        if pv is not None:
            rid = self._codec.rule_id(pv[0], pv[1], pv[2], i)
            return self._codec.rule_names[rid] if rid else None
        rule = self.algorithm.enabled_rule(self.nodes[i].view(), i)
        return rule.name if rule is not None else None

    def own_view_holders(self) -> Tuple[int, ...]:
        """Nodes whose own-view token predicate ``h_i`` holds (Def. 3)."""
        alg = self.algorithm
        codec = self._codec
        out = []
        for i in range(self.n):
            pv = self._packed_view(i)
            if pv is not None:
                if codec.holds_token(pv[0], pv[1], pv[2], i):
                    out.append(i)
            elif alg.node_holds_token(self.nodes[i].view(), i):
                out.append(i)
        return tuple(out)

    def incoherent_entries(
        self, reference: Sequence[Any]
    ) -> List[Tuple[int, int, Any, Any]]:
        """Cache entries disagreeing with ``reference`` true states.

        Returns ``(node, neighbor, cached, true)`` tuples; empty means every
        view equals the reference neighborhood (full coherence).
        """
        out = []
        for node in self.nodes:
            for k, cached in node.cache.items():
                if cached != reference[k]:
                    out.append((node.index, k, cached, reference[k]))
        return out

    # -- fault hooks (mirror MessagePassingNetwork's) ------------------------
    def corrupt_node(self, index: int, new_state: Any) -> None:
        """Transient fault: overwrite a node's true state."""
        self.nodes[index].state = new_state

    def corrupt_cache(self, index: int, neighbor: int, value: Any) -> None:
        """Transient fault: overwrite one cache entry."""
        node = self.nodes[index]
        if neighbor not in node.cache:
            raise ValueError(f"node {index} has no cache entry for {neighbor}")
        node.cache[neighbor] = value

    # -- the lockstep window -------------------------------------------------
    def deliver_stale(self, src: int, dst: int) -> None:
        """A delayed in-flight message: ``src``'s *previous* state reaches
        ``dst`` now (channel-phase ``delay`` op)."""
        self.nodes[dst].on_receive(src, self._prev_states[src])

    def deliver_current(self, src: int, dst: int, copies: int = 1) -> None:
        """``copies`` (re)transmissions of ``src``'s current state to ``dst``
        (channel-phase ``duplicate`` op)."""
        state = self.nodes[src].state
        for _ in range(copies):
            self.nodes[dst].on_receive(src, state)

    def timer_sweep(self) -> None:
        """Every node broadcasts its current state to its CST recipients.

        This is the deterministic collapse of "all interval timers fire and
        their messages arrive": the repair pass that makes channel faults
        survivable.  Deliveries go through the real ``on_receive`` path so a
        broken cache update is observable.
        """
        for i in range(self.n):
            state = self.nodes[i].state
            for j in self._recipients_of(i):
                self.nodes[j].on_receive(i, state)

    def apply(self, selection: Sequence[int]) -> None:
        """Composite-atomicity rule phase: all selected nodes read their
        cached views, then all writes land simultaneously."""
        alg = self.algorithm
        writes: Dict[int, Any] = {}
        for i in set(selection):
            pv = self._packed_view(i)
            if pv is not None:
                rid = self._codec.rule_id(pv[0], pv[1], pv[2], i)
                if not rid:
                    raise ValueError(
                        f"node {i} has no enabled rule in its cached view"
                    )
                writes[i] = self._codec.unpack(
                    self._codec.execute(rid, pv[0], pv[1], pv[2], i)
                )
                continue
            view = self.nodes[i].view()
            rule = alg.enabled_rule(view, i)
            if rule is None:
                raise ValueError(
                    f"node {i} has no enabled rule in its cached view"
                )
            writes[i] = rule.execute(view, i)
        if not writes:
            raise ValueError("selection must be non-empty")
        self._prev_states = [node.state for node in self.nodes]
        for i, new_state in writes.items():
            node = self.nodes[i]
            node.rules_executed += 1
            node.state = new_state


class _NullDwell:
    """Dwell model whose scheduled action never runs (the no-op scheduler
    swallows it) — the projection owns the rule phase."""

    def sample(self, rng: Any) -> float:
        return 0.0
