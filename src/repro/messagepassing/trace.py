"""Message-level tracing of CST networks.

The paper's Figures 11-13 are *message-sequence diagrams*: vertical node
lifelines, arrows for state messages, shaded token-holding periods.
:class:`MessageTrace` subscribes to a network's structured event bus
(:attr:`MessagePassingNetwork.bus`) and records every send / delivery /
loss / timer event with timestamps, enabling

* ordering checks (per-direction FIFO follows from capacity-one links),
* transit-time accounting (the transient periods of Theorem 3's proof),
* :func:`render_sequence_diagram` — an ASCII message-sequence chart in the
  spirit of the paper's figures.

Historically this module monkeypatched link internals; it is now a thin
subscriber of the unified telemetry event bus (see
:mod:`repro.telemetry.events`), so a trace, a JSONL exporter and live
metrics can all observe one run without coordinating.  The public API is
unchanged: attach with :meth:`MessageTrace.attach` *before* the network
starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.messagepassing.network import MessagePassingNetwork
from repro.telemetry.events import Event

#: Bus event kinds mirrored into :class:`MessageEvent` records.
_TRACED_KINDS = frozenset({"send", "deliver", "loss", "timer"})


@dataclass(frozen=True)
class MessageEvent:
    """One traced event.

    Attributes
    ----------
    time:
        Simulation time.
    kind:
        ``"send"``, ``"deliver"``, ``"loss"`` or ``"timer"``.
    src, dst:
        Link endpoints (``dst`` is ``src`` itself for timer events).
    payload:
        The state carried (``None`` for timer events).
    """

    time: float
    kind: str
    src: int
    dst: int
    payload: object = None


class MessageTrace:
    """Recorder of link and timer activity on one network."""

    def __init__(self) -> None:
        self.events: List[MessageEvent] = []

    # -- attachment --------------------------------------------------------
    def attach(self, network: MessagePassingNetwork) -> "MessageTrace":
        """Subscribe to the network's event bus; returns ``self``."""
        network.bus.subscribe(self._on_event)
        return self

    def _on_event(self, event: Event) -> None:
        if event.layer != "network" or event.kind not in _TRACED_KINDS:
            return
        payload = event.payload
        self.events.append(
            MessageEvent(
                time=event.time,
                kind=event.kind,
                src=payload["src"],
                dst=payload["dst"],
                payload=payload.get("state"),
            )
        )

    # -- queries --------------------------------------------------------------
    def of_kind(self, kind: str) -> List[MessageEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def transit_times(self) -> List[float]:
        """Delay between each delivery/loss and its matching send.

        Capacity-one links carry at most one message per direction, so the
        matching send of a delivery on ``(src, dst)`` is the latest
        unmatched send on that direction.
        """
        pending: dict = {}
        out: List[float] = []
        for e in self.events:
            key = (e.src, e.dst)
            if e.kind == "send":
                pending[key] = e.time
            elif e.kind in ("deliver", "loss") and key in pending:
                out.append(e.time - pending.pop(key))
        return out

    def per_direction_fifo(self) -> bool:
        """Deliveries on each direction occur in send order (trivially true
        for capacity-one links; checked as a substrate sanity property)."""
        last_delivery: dict = {}
        for e in self.events:
            if e.kind == "deliver":
                key = (e.src, e.dst)
                if key in last_delivery and e.time < last_delivery[key]:
                    return False
                last_delivery[key] = e.time
        return True


def render_sequence_diagram(
    trace: MessageTrace,
    n: int,
    t_start: float,
    t_end: float,
    max_rows: int = 40,
) -> str:
    """ASCII message-sequence chart (paper Figures 11-13 style).

    One column per node; each delivery in the window renders as a row with
    an arrow from sender column to receiver column.  Losses render with
    ``x`` at the receiving end.
    """
    if t_end <= t_start:
        raise ValueError("need t_end > t_start")
    col_width = 8
    header = "".join(f"v{i}".center(col_width) for i in range(n))
    lines = [f"{'time':>8}  {header}"]
    shown = 0
    for e in trace.events:
        if e.kind not in ("deliver", "loss"):
            continue
        if not t_start <= e.time <= t_end:
            continue
        if shown >= max_rows:
            lines.append(f"{'...':>8}  ({len(trace.events)} events total)")
            break
        row = [" "] * (n * col_width)
        a, b = e.src * col_width + col_width // 2, e.dst * col_width + col_width // 2
        lo, hi = min(a, b), max(a, b)
        for c in range(lo, hi):
            row[c] = "-"
        row[a] = "+"
        row[b] = ">" if e.kind == "deliver" else "x"
        lines.append(f"{e.time:8.2f}  {''.join(row)}")
        shown += 1
    return "\n".join(lines)
