"""Token-coverage timelines: who holds a token, when (Figures 11-13).

The message-passing experiments all ask the same question: over continuous
time, how many nodes believe (through their own cached view) that they hold a
token?  :class:`TokenTimeline` records change-points ``(time, count,
holders)`` and answers interval queries:

* :meth:`zero_intervals` — maximal intervals with **no** token anywhere: the
  "token extinction" the paper's Figure 11 shows for transformed SSToken and
  Figure 13 shows never happens for SSRmin;
* :meth:`count_bounds` — min/max simultaneous holders (Theorem 3's 1..2);
* :meth:`coverage_fraction` — fraction of time with >= 1 holder (the camera
  application's continuous-observation metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TimelinePoint:
    """A change-point: from ``time`` onward, ``holders`` hold tokens."""

    time: float
    holders: Tuple[int, ...]

    @property
    def count(self) -> int:
        """Number of simultaneous holders from this instant."""
        return len(self.holders)


class TokenTimeline:
    """Append-only record of token-holding change-points."""

    def __init__(self) -> None:
        self._points: List[TimelinePoint] = []
        self._end_time: Optional[float] = None

    # -- construction ------------------------------------------------------
    def record(self, time: float, holders: Sequence[int]) -> None:
        """Record the holder set effective from ``time``.

        Consecutive identical holder sets are coalesced; times must be
        non-decreasing.  Multiple records at the same instant keep only the
        last (events at equal time are a single observable instant).
        """
        holders_t = tuple(sorted(holders))
        if self._points:
            last = self._points[-1]
            if time < last.time:
                raise ValueError(f"time went backwards: {time} < {last.time}")
            if holders_t == last.holders:
                return
            if time == last.time:
                self._points[-1] = TimelinePoint(time, holders_t)
                # Coalesce again if this made it equal to its predecessor.
                if (
                    len(self._points) >= 2
                    and self._points[-2].holders == holders_t
                ):
                    self._points.pop()
                return
        self._points.append(TimelinePoint(time, holders_t))

    def finish(self, end_time: float) -> None:
        """Close the timeline at ``end_time`` (defines the last interval)."""
        if self._points and end_time < self._points[-1].time:
            raise ValueError("end_time precedes the last change-point")
        self._end_time = end_time

    # -- queries --------------------------------------------------------------
    @property
    def points(self) -> Tuple[TimelinePoint, ...]:
        """All change-points, in time order."""
        return tuple(self._points)

    @property
    def end_time(self) -> float:
        if self._end_time is None:
            raise ValueError("call finish(end_time) before querying intervals")
        return self._end_time

    def intervals(self) -> List[Tuple[float, float, Tuple[int, ...]]]:
        """``(start, end, holders)`` triples partitioning [t0, end_time]."""
        end = self.end_time
        out = []
        for idx, pt in enumerate(self._points):
            stop = self._points[idx + 1].time if idx + 1 < len(self._points) else end
            if stop > pt.time:
                out.append((pt.time, stop, pt.holders))
        return out

    def zero_intervals(self) -> List[Tuple[float, float]]:
        """Maximal intervals of positive length with zero token holders."""
        return [(a, b) for a, b, h in self.intervals() if not h]

    def zero_time(self) -> float:
        """Total time with no token anywhere ("token extinction" time)."""
        return sum(b - a for a, b in self.zero_intervals())

    def count_bounds(
        self, from_time: float = 0.0
    ) -> Tuple[int, int]:
        """(min, max) simultaneous holders over ``[from_time, end_time]``."""
        counts = [
            len(h) for a, b, h in self.intervals() if b > from_time
        ]
        if not counts:
            raise ValueError("no intervals after from_time")
        return min(counts), max(counts)

    def coverage_fraction(self, from_time: float = 0.0) -> float:
        """Fraction of time in ``[from_time, end_time]`` with >= 1 holder."""
        total = 0.0
        covered = 0.0
        for a, b, h in self.intervals():
            a = max(a, from_time)
            if b <= a:
                continue
            total += b - a
            if h:
                covered += b - a
        return covered / total if total > 0 else 1.0

    def holder_changes(self) -> int:
        """Number of change-points (handover activity measure)."""
        return len(self._points)
