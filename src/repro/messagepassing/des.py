"""Minimal deterministic discrete-event simulation core.

A heap-based event queue with a monotone clock.  Determinism matters for
reproducible experiments: ties in time are broken by insertion sequence
number, so runs are bit-identical given the same seeds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True, order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, seq)``; the payload callable is excluded from
    ordering.  ``__slots__``-backed: the reference engine allocates one per
    scheduled message/timer/dwell, so the dict-free layout is the cheapest
    part of the reference-path allocation diet (see docs/PERFORMANCE.md).
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """Priority queue of events with a simulation clock.

    Usage::

        q = EventQueue()
        q.schedule(1.5, lambda: ..., label="timer")
        q.run_until(100.0)
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        #: Current simulation time; advances monotonically.
        self.now: float = 0.0
        #: Total events executed (diagnostics).
        self.executed: int = 0

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        ev = Event(self.now + delay, next(self._seq), action, label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        ev = Event(time, next(self._seq), action, label)
        heapq.heappush(self._heap, ev)
        return ev

    def empty(self) -> bool:
        """Whether any events remain."""
        return not self._heap

    def step(self) -> Optional[Event]:
        """Execute the next event; returns it, or ``None`` if the queue is empty."""
        if not self._heap:
            return None
        ev = heapq.heappop(self._heap)
        self.now = ev.time
        ev.action()
        self.executed += 1
        return ev

    def run_until(self, t_end: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= t_end``; returns the number executed.

        ``max_events`` guards against runaway feedback loops; exceeding it
        raises :class:`RuntimeError` (a correctly configured CST network has
        bounded event rate, so hitting the guard indicates a modelling bug).
        """
        count = 0
        while self._heap and self._heap[0].time <= t_end:
            ev = heapq.heappop(self._heap)
            self.now = ev.time
            ev.action()
            self.executed += 1
            count += 1
            if max_events is not None and count > max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events} before t={t_end}"
                )
        self.now = max(self.now, t_end)
        return count
