"""Directed communication links with delay, loss and capacity one.

The paper's link model (section 5): "each communication link can transmit
only one message in each direction at a time.  In other words, a node v_i can
send a message to its neighbor v_j only if there is no message transiting on
the communication link from v_i to v_j."

:class:`Link` models one *direction*.  Because CST messages carry the
sender's full local state, a newer state supersedes an older one — so when
the link is busy the newest pending state is *coalesced* (kept to transmit as
soon as the link frees up), which both respects the capacity-one constraint
and guarantees the freshest state eventually flows (the property Lemma 9's
convergence argument needs).

Message loss is Bernoulli per message (the paper's "events of message loss
occur uniformly at random"); a lost message still occupies the link for its
transit time — as a radio transmission would — but is silently dropped
instead of delivered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, NamedTuple, Optional

from repro.messagepassing.des import EventQueue


class Message(NamedTuple):
    """A CST payload ``<state, q>``: the sender's index and local state.

    Tuple-compatible with the bare ``(sender, state)`` pairs the transform
    historically shipped (receivers unpack positionally, telemetry reads
    ``payload[1]``), but allocated once per *distinct* state via the
    sender-side interning cache in :class:`~repro.messagepassing.node.
    CSTNode` instead of once per transmission.
    """

    sender: int
    state: Any


class DelayModel:
    """Base class for per-message transmission-delay distributions."""

    __slots__ = ()

    def sample(self, rng: random.Random) -> float:
        """Draw one transmission delay (> 0)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class FixedDelay(DelayModel):
    """Constant transmission delay."""

    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ValueError(f"delay must be > 0, got {self.delay}")

    def sample(self, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True, slots=True)
class UniformDelay(DelayModel):
    """Uniform transmission delay on ``[low, high]``."""

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValueError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True, slots=True)
class ExponentialDelay(DelayModel):
    """Exponential transmission delay with the given mean (plus a floor).

    The small floor keeps delays strictly positive so event ordering stays
    meaningful.
    """

    mean: float = 1.0
    floor: float = 1e-6

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean must be > 0, got {self.mean}")

    def sample(self, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)


class Link:
    """One direction of a communication link.

    Parameters
    ----------
    queue:
        The shared event queue.
    deliver:
        Callback ``deliver(payload)`` invoked at the receiver when a message
        arrives.
    delay_model:
        Transmission-delay distribution.
    loss_probability:
        Bernoulli per-message loss probability in ``[0, 1)``.
    rng:
        Random source for delays, losses and duplications (shared per
        network for reproducibility).
    duplicate_probability:
        Bernoulli per-message duplication probability in ``[0, 1)``.  A
        duplicated message is delivered *twice at its single arrival
        instant* — a link-layer retransmit race where the original and the
        retransmission both land — which keeps the capacity-one invariant
        (one message in transit per direction) intact.  The extra random
        draw happens only when this is nonzero, so ``0.0`` (the default)
        leaves existing seeded runs' RNG streams untouched.

    Instances are ``__slots__``-backed: a CST run allocates two link
    directions per ring edge but *touches* them on every event, so the
    dict-free layout trims both per-link memory and the attribute-access
    constant in ``_transmit``/``_arrive`` (micro-benched in
    ``BENCH_perf_mp.json``'s reference-path note).
    """

    __slots__ = (
        "queue", "deliver", "delay_model", "loss_probability",
        "duplicate_probability", "rng", "label", "outage_until", "observer",
        "busy", "pending", "_has_pending", "sent", "delivered", "lost",
        "coalesced", "duplicated",
    )

    def __init__(
        self,
        queue: EventQueue,
        deliver: Callable[[Any], None],
        delay_model: DelayModel,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        label: str = "",
        duplicate_probability: float = 0.0,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError(
                f"duplicate_probability must be in [0, 1), got "
                f"{duplicate_probability}"
            )
        self.queue = queue
        self.deliver = deliver
        self.delay_model = delay_model
        self.loss_probability = loss_probability
        self.duplicate_probability = duplicate_probability
        # Derive the fallback from the global stream (seeded by callers /
        # the test suite) rather than OS entropy; see docs/TESTING.md.
        self.rng = rng if rng is not None else random.Random(
            random.getrandbits(64)
        )
        self.label = label
        #: Simulation time until which every transmission is lost (an
        #: outage/partition window; see :meth:`set_outage`).
        self.outage_until = float("-inf")
        #: Optional telemetry hook ``observer(kind, payload)`` invoked at
        #: the send / deliver / loss points (kinds match those names).  The
        #: network layer wires this to its event bus; ``None`` costs one
        #: check per event.
        self.observer: Optional[Callable[[str, Any], None]] = None
        #: Whether a message is currently in transit on this direction.
        self.busy = False
        #: Newest payload waiting for the link to free up (coalesced).
        self.pending: Optional[Any] = None
        self._has_pending = False
        # -- statistics -----------------------------------------------------
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.coalesced = 0
        self.duplicated = 0

    def send(self, payload: Any) -> None:
        """Send (or coalesce) a payload on this link direction."""
        if self.busy:
            if self._has_pending:
                self.coalesced += 1
            self.pending = payload
            self._has_pending = True
            return
        self._transmit(payload)

    def set_outage(self, until_time: float) -> None:
        """Mark this direction down until ``until_time``.

        Every message sent while the outage is active is lost (the radio
        transmits into the void); transmissions after ``until_time`` behave
        normally again.  Used by the link-outage fault scenarios.
        """
        self.outage_until = max(self.outage_until, until_time)

    def _transmit(self, payload: Any) -> None:
        self.busy = True
        self.sent += 1
        if self.observer is not None:
            self.observer("send", payload)
        lost = (
            self.rng.random() < self.loss_probability
            or self.queue.now < self.outage_until
        )
        # Duplication draw comes after the loss draw and before the delay
        # draw (the fastpath engine consumes the stream in this exact
        # order); the draw is skipped entirely at probability zero so
        # dup-free seeded runs keep their historical RNG streams.
        copies = 1
        if (
            self.duplicate_probability > 0.0
            and self.rng.random() < self.duplicate_probability
        ):
            copies = 2
            self.duplicated += 1
        delay = self.delay_model.sample(self.rng)
        self.queue.schedule(
            delay,
            lambda p=payload, lost=lost, c=copies: self._arrive(p, lost, c),
            label=f"link{self.label}",
        )

    def _arrive(self, payload: Any, lost: bool, copies: int = 1) -> None:
        self.busy = False
        if lost:
            self.lost += 1
            if self.observer is not None:
                self.observer("loss", payload)
        else:
            for _ in range(copies):
                self.delivered += 1
                if self.observer is not None:
                    self.observer("deliver", payload)
                self.deliver(payload)
        # The deliver callback may itself have sent on this link; only pump
        # the coalesced payload if the link is still free.
        if self._has_pending and not self.busy:
            payload = self.pending
            self.pending = None
            self._has_pending = False
            self._transmit(payload)
