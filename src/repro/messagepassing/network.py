"""The transformed (message-passing) system: nodes + links + run loop.

:func:`build_cst_network` applies the CST transform to any
:class:`~repro.algorithms.base.RingAlgorithm`: one :class:`CSTNode` per
process, two directed :class:`Link`\\ s per ring edge, periodic state timers
with jitter, and a :class:`TokenTimeline` that re-evaluates every node's
own-view token predicate after every event that can change an own-view
(state changes *and* cache updates).

Timer jitter matters: the transformation literature ([5], [17]) notes that
convergence of transformed non-silent algorithms needs "some randomization
factor in execution timing"; jittered timers provide it.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.messagepassing.des import EventQueue
from repro.messagepassing.links import DelayModel, FixedDelay, Link
from repro.messagepassing.node import CSTNode
from repro.messagepassing.timeline import TokenTimeline
from repro.ring.topology import RingTopology
from repro.telemetry.events import EventBus
from repro.telemetry.session import current_session


class MessagePassingNetwork:
    """A running CST deployment of one algorithm instance.

    Build via :func:`build_cst_network`; then :meth:`run` advances simulated
    time while the token timeline and statistics accumulate.
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        nodes: List[CSTNode],
        queue: EventQueue,
        timer_interval: float,
        timer_jitter: float,
        rng: random.Random,
        token_predicate: Callable[[CSTNode], bool],
    ):
        self.algorithm = algorithm
        self.nodes = nodes
        self.queue = queue
        self.timer_interval = timer_interval
        self.timer_jitter = timer_jitter
        self.rng = rng
        self.token_predicate = token_predicate
        self.timeline = TokenTimeline()
        self._started = False
        #: Callbacks invoked at every observation point (state/cache change);
        #: used by CoherenceTracker for exact event-driven checks.
        self.observers: List[Callable[["MessagePassingNetwork"], None]] = []
        #: Seed the network was built from (set by :func:`build_cst_network`;
        #: recorded in run manifests).
        self.seed: Optional[int] = None
        # -- telemetry -----------------------------------------------------
        # Every network owns a structured event bus; link sends/deliveries/
        # losses, timer fires and token censuses are published into it.
        # MessageTrace subscribes here, and an ambient telemetry session
        # (when active) shares its sequencer and ingests the same stream.
        tel = current_session()
        self.bus = EventBus(sequence=tel.sequence if tel is not None else None)
        if tel is not None:
            tel.attach_bus(self.bus)
        for node in self.nodes:
            for dst, link in node.links.items():
                self._instrument_link(link, node.index, dst)

    def _instrument_link(self, link: Any, src: int, dst: int) -> None:
        """Point a link's observer hook at this network's event bus.

        Wireless transmitter adapters share the ``send`` protocol but not
        the observer hook; setting the attribute is harmless there.
        """
        bus = self.bus
        queue = self.queue

        def observe(kind: str, payload: Any, _src=src, _dst=dst) -> None:
            bus.publish("network", kind, queue.now,
                        src=_src, dst=_dst, state=payload[1])

        link.observer = observe

    # -- observation -----------------------------------------------------------
    def token_holders(self) -> Tuple[int, ...]:
        """Nodes holding a token in their *own cached view* (h_i of Def. 3)."""
        return tuple(
            node.index for node in self.nodes if self.token_predicate(node)
        )

    def true_configuration(self) -> Tuple[Any, ...]:
        """The vector of actual node states (omniscient observer)."""
        return tuple(node.state for node in self.nodes)

    def true_token_holders(self) -> Tuple[int, ...]:
        """Token holders evaluated on *true* states (the state-reading h)."""
        return self.algorithm.privileged(
            self.algorithm.normalize_configuration(self.true_configuration())
        )

    def observe(self) -> None:
        """Record the current own-view holder set on the timeline."""
        holders = self.token_holders()
        self.timeline.record(self.queue.now, holders)
        if self.bus.active:
            self.bus.publish("network", "census", self.queue.now,
                             holders=list(holders))
        for callback in self.observers:
            callback(self)

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Record the initial observation and arm every node's timer."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        self.bus.publish(
            "network", "net_start", self.queue.now,
            algorithm=type(self.algorithm).__name__,
            n=len(self.nodes),
            K=getattr(self.algorithm, "K", None),
            seed=self.seed,
            timer_interval=self.timer_interval,
            timer_jitter=self.timer_jitter,
        )
        self.observe()
        for node in self.nodes:
            self._arm_timer(node)
            # Initial state announcement so neighbours' caches heal even
            # before the first timer (Algorithm 4 keeps nodes chatty).
            node.broadcast_state()
        self.observe()

    def _arm_timer(self, node: CSTNode) -> None:
        delay = self.timer_interval + self.rng.uniform(0.0, self.timer_jitter)

        def fire() -> None:
            if self.bus.active:
                self.bus.publish("network", "timer", self.queue.now,
                                 src=node.index, dst=node.index, state=None)
            node.on_timer()
            self._arm_timer(node)

        self.queue.schedule(delay, fire, label=f"timer{node.index}")

    def run(self, duration: float, max_events: Optional[int] = None) -> None:
        """Advance simulated time by ``duration``."""
        if not self._started:
            self.start()
        self.queue.run_until(self.queue.now + duration, max_events=max_events)
        self.timeline.finish(self.queue.now)

    # -- fault injection hooks -------------------------------------------------
    def corrupt_node(self, index: int, new_state: Any) -> None:
        """Transient fault: overwrite a node's state (caches stay stale)."""
        node = self.nodes[index]
        old = node.state
        node.state = new_state
        if node.on_state_change is not None:
            node.on_state_change(node, old, new_state)

    def corrupt_cache(self, index: int, neighbor: int, value: Any) -> None:
        """Transient fault: overwrite one cache entry."""
        node = self.nodes[index]
        if neighbor not in node.cache:
            raise ValueError(f"node {index} has no cache entry for {neighbor}")
        node.cache[neighbor] = value
        self.observe()

    def fail_link(self, a: int, b: int, duration: float) -> None:
        """Take the (a, b) link down in BOTH directions for ``duration``.

        Models a temporary radio outage / partition of one ring edge
        starting now; messages sent into the outage window are lost, and the
        periodic CST timers re-establish caches once it heals.
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        until = self.queue.now + duration
        try:
            self.nodes[a].links[b].set_outage(until)
            self.nodes[b].links[a].set_outage(until)
        except KeyError:
            raise ValueError(f"({a}, {b}) is not a ring edge") from None

    # -- statistics --------------------------------------------------------
    def message_stats(self) -> Dict[str, int]:
        """Aggregate link statistics over the whole network."""
        sent = delivered = lost = coalesced = duplicated = 0
        for node in self.nodes:
            for link in node.links.values():
                sent += link.sent
                delivered += link.delivered
                lost += link.lost
                coalesced += link.coalesced
                duplicated += getattr(link, "duplicated", 0)
        return {
            "sent": sent,
            "delivered": delivered,
            "lost": lost,
            "coalesced": coalesced,
            "duplicated": duplicated,
        }


def build_cst_network(
    algorithm: RingAlgorithm,
    initial_states: Sequence[Any],
    *,
    delay_model: Optional[DelayModel] = None,
    loss_probability: float = 0.0,
    timer_interval: float = 5.0,
    timer_jitter: float = 1.0,
    seed: int = 0,
    initial_caches: Optional[Dict[int, Dict[int, Any]]] = None,
    token_predicate: Optional[Callable[[CSTNode], bool]] = None,
    dwell_model: Optional[DelayModel] = FixedDelay(0.5),
    link_delay_overrides: Optional[Dict[tuple, DelayModel]] = None,
    duplicate_probability: float = 0.0,
    use_fastpath: Optional[bool] = None,
) -> MessagePassingNetwork:
    """Apply the CST transform (Algorithm 4) and wire up the network.

    Parameters
    ----------
    algorithm:
        The state-reading algorithm to transform.
    initial_states:
        Initial ``q_i`` per node (arbitrary — self-stabilization's job).
    delay_model:
        Per-message transmission delay (default ``FixedDelay(1.0)``).
    loss_probability:
        Bernoulli per-message loss.
    timer_interval, timer_jitter:
        Periodic state-refresh cadence; actual period is
        ``interval + U(0, jitter)`` re-drawn each firing.
    seed:
        Master seed for delays, losses, jitter and dwell.
    initial_caches:
        Optional ``{node: {neighbor: state}}`` — arbitrary (possibly
        incoherent) initial cache contents, Theorem 4's starting condition.
    token_predicate:
        Override of the own-view token predicate (the abl1 ablation passes
        the weak ``tra``-only condition here); default
        :meth:`CSTNode.holds_token`.
    dwell_model:
        Critical-section dwell between enabledness and rule execution (see
        :mod:`repro.messagepassing.node`); ``None`` executes rules inline in
        the receive handler.
    link_delay_overrides:
        Optional ``{(src, dst): DelayModel}`` giving individual link
        directions their own delay distribution — heterogeneous networks
        (one slow radio, asymmetric paths).  Unlisted directions use
        ``delay_model``.
    duplicate_probability:
        Bernoulli per-message duplication: a duplicated transmission is
        delivered twice at its (single) arrival instant, modelling a
        link-layer retransmit race without violating capacity one.
    use_fastpath:
        Explicit choice of the packed message-passing engine
        (:class:`~repro.messagepassing.fastpath.network.FastCSTNetwork`).
        ``None`` (the default) defers to the scoped override /
        ``REPRO_FASTPATH_MP`` environment default; either way the packed
        engine is only used when the algorithm provides an
        ``mp_codec()`` and no custom ``token_predicate`` is installed —
        otherwise the reference object-graph engine is built, silently.
    """
    n = algorithm.n
    if len(initial_states) != n:
        raise ValueError(f"need {n} initial states, got {len(initial_states)}")
    delay_model = delay_model or FixedDelay(1.0)
    rng = random.Random(seed)
    queue = EventQueue()
    predicate = token_predicate or (lambda node: node.holds_token())

    network_ref: List[Optional[MessagePassingNetwork]] = [None]

    def state_changed(node: CSTNode, old: Any, new: Any) -> None:
        net = network_ref[0]
        if net is not None:
            net.observe()

    # CST caches the state of every process a node must *read*, and sends
    # its own state to every process that reads it.  The algorithm's ring
    # topology encodes both: bidirectional algorithms (SSRmin — its rules
    # and token predicates read both neighbours) cache and message both
    # directions; unidirectional ones (Dijkstra's SSToken reads only the
    # predecessor) need half the links and half the messages.
    ring = getattr(algorithm, "ring", None)
    if ring is not None:
        readable_of = ring.readable_neighbors
        recipients_of = ring.message_neighbors
    else:  # pragma: no cover - all shipped algorithms carry a ring
        readable_of = lambda i: ((i - 1) % n, (i + 1) % n)
        recipients_of = lambda i: ((i - 1) % n, (i + 1) % n)

    nodes: List[CSTNode] = []
    for i in range(n):
        cache_init = (initial_caches or {}).get(i)
        nodes.append(
            CSTNode(
                index=i,
                algorithm=algorithm,
                neighbors=readable_of(i),
                initial_state=initial_states[i],
                initial_cache=cache_init,
                on_state_change=state_changed,
                scheduler=queue.schedule,
                dwell_model=dwell_model,
                rng=rng,
            )
        )

    # Directed links: i -> j for every reader j of i's state, capacity one.
    def make_deliver(receiver: CSTNode):
        def deliver(payload: Any) -> None:
            sender, state = payload
            receiver.on_receive(sender, state)
            net = network_ref[0]
            if net is not None:
                # Cache updates can flip the receiver's own-view predicate
                # (and, for SSRmin, only the receiver's — predicates read
                # own state + caches only).
                net.observe()

        return deliver

    overrides = link_delay_overrides or {}
    for i in range(n):
        for j in recipients_of(i):
            nodes[i].links[j] = Link(
                queue=queue,
                deliver=make_deliver(nodes[j]),
                delay_model=overrides.get((i, j), delay_model),
                loss_probability=loss_probability,
                rng=rng,
                label=f"{i}->{j}",
                duplicate_probability=duplicate_probability,
            )

    # Engine dispatch: the packed fastpath needs a codec, the *default*
    # token predicate (custom predicates — the abl1 ablation — read facade
    # nodes arbitrarily), and every initial state/cache inside the packed
    # domain.  Anything else silently keeps the reference engine.
    codec = None
    if token_predicate is None:
        from repro.messagepassing.fastpath import resolve_mp_codec

        codec = resolve_mp_codec(algorithm, use_fastpath)
        if codec is not None and codec.bidirectional and n < 3:
            codec = None

    net: Optional[MessagePassingNetwork] = None
    if codec is not None:
        from repro.messagepassing.fastpath.network import FastCSTNetwork

        try:
            net = FastCSTNetwork(
                algorithm=algorithm,
                nodes=nodes,
                queue=queue,
                timer_interval=timer_interval,
                timer_jitter=timer_jitter,
                rng=rng,
                token_predicate=predicate,
                codec=codec,
            )
        except ValueError:
            # Out-of-domain initial state or cache value: the packed
            # encoding cannot represent it, so run the reference engine.
            net = None
    if net is None:
        net = MessagePassingNetwork(
            algorithm=algorithm,
            nodes=nodes,
            queue=queue,
            timer_interval=timer_interval,
            timer_jitter=timer_jitter,
            rng=rng,
            token_predicate=predicate,
        )
    net.seed = seed
    network_ref[0] = net
    return net
