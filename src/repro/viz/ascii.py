"""ASCII visualizations.

These renderings exist for the examples and the CLI: a quick way to *see*
the inchworm walk the ring and the message-passing transient periods without
plotting dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.messagepassing.timeline import TokenTimeline


def render_ring(
    n: int,
    primary: Sequence[int] = (),
    secondary: Sequence[int] = (),
    width: int = 4,
) -> str:
    """One-line ring snapshot.

    Each process renders as ``[i:PS]`` where ``P``/``S`` mark the primary /
    secondary token; e.g. ``[0:PS] [1:--] [2:--]``.
    """
    cells = []
    pset, sset = set(primary), set(secondary)
    for i in range(n):
        mark = ("P" if i in pset else "-") + ("S" if i in sset else "-")
        cells.append(f"[{i}:{mark}]")
    return " ".join(cells)


def render_timeline(
    timeline: TokenTimeline,
    n: int,
    t_start: float = 0.0,
    t_end: Optional[float] = None,
    columns: int = 80,
) -> str:
    """Strip chart: one row per node, ``#`` while holding a token.

    Continuous time ``[t_start, t_end]`` is quantized into ``columns`` cells;
    a cell shows ``#`` if the node holds a token at the cell's midpoint.  A
    final ``count`` row prints the holder count per cell (``0`` cells are the
    token-extinction windows of Figures 11-12).
    """
    t_end = timeline.end_time if t_end is None else t_end
    if t_end <= t_start:
        raise ValueError("need t_end > t_start")
    intervals = timeline.intervals()

    def holders_at(t: float):
        for a, b, h in intervals:
            if a <= t < b:
                return h
        return intervals[-1][2] if intervals and t >= intervals[-1][1] else ()

    dt = (t_end - t_start) / columns
    grid: List[List[str]] = [["." for _ in range(columns)] for _ in range(n)]
    counts: List[str] = []
    for c in range(columns):
        mid = t_start + (c + 0.5) * dt
        h = holders_at(mid)
        for i in h:
            grid[i][c] = "#"
        counts.append(str(min(len(h), 9)))
    lines = [f"node {i:2d} |{''.join(row)}|" for i, row in enumerate(grid)]
    lines.append(f"count   |{''.join(counts)}|")
    lines.append(
        f"         t={t_start:.1f}{' ' * max(columns - 18, 0)}t={t_end:.1f}"
    )
    return "\n".join(lines)
