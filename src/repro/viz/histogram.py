"""ASCII histograms for convergence-time distributions.

The scaling studies produce per-n step distributions; an inline histogram
makes their shape visible in a terminal without plotting dependencies.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def render_histogram(
    samples: Sequence[float],
    bins: int = 10,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar histogram.

    Parameters
    ----------
    samples:
        The observations (non-empty).
    bins:
        Number of equal-width bins over ``[min, max]``.
    width:
        Character width of the longest bar.
    title:
        Optional caption printed above the bars.
    """
    if len(samples) == 0:
        raise ValueError("cannot histogram an empty sample")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be positive")
    arr = np.asarray(samples, dtype=float)
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    label_width = max(
        len(f"{edges[i]:.1f}-{edges[i + 1]:.1f}") for i in range(bins)
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for i in range(bins):
        label = f"{edges[i]:.1f}-{edges[i + 1]:.1f}".rjust(label_width)
        bar = "#" * int(round(counts[i] / peak * width))
        lines.append(f"{label} |{bar.ljust(width)}| {counts[i]}")
    lines.append(
        f"{'':>{label_width}}  n={arr.size} mean={arr.mean():.1f} "
        f"max={arr.max():.0f}"
    )
    return "\n".join(lines)
