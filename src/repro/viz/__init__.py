"""ASCII rendering of rings and timelines (terminal-friendly figures).

* :func:`render_ring` — a one-line ring snapshot marking token holders;
* :func:`render_timeline` — a Figure-13-style strip chart of token holding
  over continuous time per node;
* :func:`render_histogram` — horizontal bar histograms for step/time
  distributions.
"""

from repro.viz.ascii import render_ring, render_timeline
from repro.viz.histogram import render_histogram

__all__ = ["render_ring", "render_timeline", "render_histogram"]
