"""Replay daemon: drive a simulation from a recorded selection sequence.

Used for figure-exact regression tests (Figure 4's sixteen steps) and for
replaying executions recorded by :class:`repro.simulation.execution.Execution`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

from repro.daemons.base import Daemon


class ReplayDaemon(Daemon):
    """Selects a pre-recorded set of processes at each step.

    Parameters
    ----------
    schedule:
        Iterable of selections; each element is a process index or an
        iterable of indices.  Raises :class:`IndexError` when the engine asks
        for more steps than were recorded, and :class:`ValueError` if a
        recorded selection is not a subset of the currently enabled set (the
        replayed execution has diverged).
    """

    def __init__(self, schedule: Iterable):
        self._schedule: list[Tuple[int, ...]] = []
        for entry in schedule:
            if isinstance(entry, int):
                self._schedule.append((entry,))
            else:
                self._schedule.append(tuple(entry))
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._schedule)

    @property
    def remaining(self) -> int:
        """Selections not yet consumed."""
        return len(self._schedule) - self._cursor

    def select(self, enabled: Sequence[int], config: Any, step: int) -> Tuple[int, ...]:
        if self._cursor >= len(self._schedule):
            raise IndexError(
                f"replay schedule exhausted after {len(self._schedule)} steps"
            )
        selection = self._schedule[self._cursor]
        self._cursor += 1
        return self.validate_selection(selection, enabled)

    def reset(self) -> None:
        self._cursor = 0
