"""Distributed daemons: any non-empty subset of enabled processes may move."""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence, Tuple

from repro.daemons.base import Daemon


class SynchronousDaemon(Daemon):
    """Every enabled process moves at every step.

    The fully synchronous schedule is one particular (extreme) behaviour of
    the distributed daemon, so algorithms proven under the unfair distributed
    daemon must also converge under it.
    """

    def select(self, enabled: Sequence[int], config: Any, step: int) -> Tuple[int, ...]:
        return tuple(enabled)


class RandomSubsetDaemon(Daemon):
    """A uniformly random non-empty subset of the enabled processes moves.

    Each of the ``2^|enabled| - 1`` non-empty subsets is equally likely.
    """

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._rng = random.Random(seed)

    def select(self, enabled: Sequence[int], config: Any, step: int) -> Tuple[int, ...]:
        enabled = list(enabled)
        while True:
            chosen = [i for i in enabled if self._rng.random() < 0.5]
            if chosen:
                return tuple(chosen)
            # Rejection-sample away the empty set; with >= 1 enabled process
            # each retry succeeds with probability >= 1/2.

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def describe(self):
        return dict(super().describe(), seed=self._seed)


class BernoulliDaemon(Daemon):
    """Each enabled process independently moves with probability ``p``.

    Falls back to a single uniformly random process when the coin flips all
    come up tails, so the selection is always non-empty.  ``p`` close to 1
    approximates the synchronous daemon, close to 0 the central daemon — the
    knob used by the daemon-sweep ablation (abl2).
    """

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = p
        self._seed = seed
        self._rng = random.Random(seed)

    def select(self, enabled: Sequence[int], config: Any, step: int) -> Tuple[int, ...]:
        enabled = list(enabled)
        chosen = [i for i in enabled if self._rng.random() < self.p]
        if not chosen:
            chosen = [self._rng.choice(enabled)]
        return tuple(chosen)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def describe(self):
        return dict(super().describe(), p=self.p, seed=self._seed)
