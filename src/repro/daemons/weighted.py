"""Weighted-unfair daemons: biased schedules that starve high-weight-deficit
processes for long stretches.

The unfair distributed daemon of the paper may delay any enabled process
indefinitely as long as *some* enabled process moves.  Uniform random
daemons are a poor approximation of that adversary: every process gets
selected at roughly the same rate, so starvation-sensitive bugs never
surface.  :class:`WeightedUnfairDaemon` skews the selection distribution
geometrically (process ``i`` is ``bias**i`` times less likely to move than
process 0 by default), producing schedules where a tail of the ring is
starved for long—but not infinite—stretches, which is exactly the schedule
family the conformance fuzzer uses to hunt for daemon-dependent divergence.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence, Tuple

from repro.daemons.base import Daemon


class WeightedUnfairDaemon(Daemon):
    """Distributed daemon with a geometrically skewed selection distribution.

    Parameters
    ----------
    weights:
        Optional explicit per-process selection weights (index -> weight).
        Unlisted processes default to ``bias ** -i``.
    bias:
        Geometric skew base (> 1); larger values starve high indices harder.
        Ignored for processes with an explicit weight.
    multi_p:
        Probability of growing the selection by one more process at each
        draw, so selection sizes are geometrically distributed starting at 1
        (``multi_p=0`` gives a weighted *central* daemon).
    seed:
        RNG seed; runs replay deterministically from it.
    """

    def __init__(
        self,
        weights: Optional[dict] = None,
        bias: float = 4.0,
        multi_p: float = 0.3,
        seed: Optional[int] = None,
    ):
        if bias <= 1.0:
            raise ValueError(f"bias must exceed 1, got {bias}")
        if not 0.0 <= multi_p < 1.0:
            raise ValueError(f"multi_p must be in [0, 1), got {multi_p}")
        self.weights = dict(weights) if weights else {}
        self.bias = bias
        self.multi_p = multi_p
        self._seed = seed
        self._rng = random.Random(seed)

    def weight(self, i: int) -> float:
        """Selection weight of process ``i`` (explicit, else ``bias**-i``)."""
        w = self.weights.get(i)
        return w if w is not None else self.bias ** (-i)

    def select(
        self, enabled: Sequence[int], config: Any, step: int
    ) -> Tuple[int, ...]:
        rng = self._rng
        pool = list(enabled)
        size = 1
        while size < len(pool) and rng.random() < self.multi_p:
            size += 1
        chosen = []
        weights = [self.weight(i) for i in pool]
        for _ in range(size):
            pick = rng.choices(range(len(pool)), weights=weights)[0]
            chosen.append(pool.pop(pick))
            weights.pop(pick)
        return tuple(sorted(chosen))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def describe(self):
        return dict(
            super().describe(),
            bias=self.bias,
            multi_p=self.multi_p,
            seed=self._seed,
            explicit_weights=dict(self.weights),
        )
