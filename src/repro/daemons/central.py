"""Central daemons: exactly one enabled process moves per step."""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence, Tuple

from repro.daemons.base import Daemon


class RandomCentralDaemon(Daemon):
    """Uniformly random central daemon.

    Picks one enabled process uniformly at random each step.  Seeded for
    reproducibility.
    """

    distributed = False

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._rng = random.Random(seed)

    def select(self, enabled: Sequence[int], config: Any, step: int) -> Tuple[int, ...]:
        return (self._rng.choice(list(enabled)),)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def describe(self):
        return dict(super().describe(), seed=self._seed)


class RoundRobinDaemon(Daemon):
    """A *fair* central daemon cycling through process indices.

    Maintains a pointer and each step selects the first enabled process at or
    after it (wrapping), then advances past it.  Every continuously enabled
    process is eventually selected, so this daemon is weakly fair — useful as
    a contrast to the unfair daemons SSRmin is proven under.
    """

    distributed = False

    def __init__(self) -> None:
        self._pointer = 0

    def select(self, enabled: Sequence[int], config: Any, step: int) -> Tuple[int, ...]:
        n_max = max(enabled) + 1
        for offset in range(n_max):
            candidate = (self._pointer + offset) % n_max
            if candidate in enabled:
                self._pointer = (candidate + 1) % n_max
                return (candidate,)
        raise AssertionError("unreachable: enabled was non-empty")

    def reset(self) -> None:
        self._pointer = 0


class FixedPriorityDaemon(Daemon):
    """Central daemon that always picks the enabled process of lowest index.

    Deterministic and maximally *unfair*: a low-index process that is
    continuously enabled starves everyone above it.  Handy for reproducible
    worst-case-flavoured executions and for exercising unfairness tolerance.
    """

    distributed = False

    def __init__(self, reverse: bool = False):
        #: If True, pick the highest index instead.
        self.reverse = reverse

    def select(self, enabled: Sequence[int], config: Any, step: int) -> Tuple[int, ...]:
        return (max(enabled) if self.reverse else min(enabled),)

    def describe(self):
        return dict(super().describe(), reverse=self.reverse)
