"""An adversarial (unfair) daemon that tries to delay convergence.

The unfair distributed daemon of the paper is an *adversary*: correctness
must hold for every selection it can make.  :class:`AdversarialDaemon`
approximates the worst case with bounded-depth greedy lookahead: at each step
it enumerates candidate selections, simulates ``depth`` steps ahead (with the
same policy recursively at depth > 1), and picks the selection whose deepest
reachable configuration stays illegitimate the longest / keeps the most
disorder.

The *exact* worst case (game value) is computed by
:mod:`repro.verification.model_checker` for small instances; this daemon
scales to larger rings and is used by the Lemma-5 census and the convergence
scaling study to pressure-test the O(n^2) bound.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.daemons.base import Daemon


def _default_disorder(algorithm, config: Any) -> float:
    """Heuristic disorder score: higher = further from legitimacy.

    Counts enabled processes (legitimate SSRmin configurations have exactly
    one) and adds a large bonus while the configuration is illegitimate, so
    the adversary prefers staying outside Lambda.
    """
    score = float(len(algorithm.enabled_processes(config)))
    if not algorithm.is_legitimate(config):
        score += 1000.0
    return score


class AdversarialDaemon(Daemon):
    """Greedy lookahead adversary.

    Parameters
    ----------
    algorithm:
        The algorithm under test (needed to simulate lookahead).
    depth:
        Lookahead depth in steps (>= 1).  Cost grows as
        ``(candidate count)^depth``.
    max_subsets:
        Cap on candidate selections evaluated per node.  All singletons are
        always considered; the full set and random larger subsets fill the
        remaining budget.
    disorder:
        Scoring function ``(algorithm, config) -> float``; the adversary
        maximizes the minimum score along its lookahead.  Defaults to
        :func:`_default_disorder`.
    seed:
        Seed for the tie-breaking / subset-sampling RNG.
    """

    def __init__(
        self,
        algorithm,
        depth: int = 2,
        max_subsets: int = 12,
        disorder: Optional[Callable[[Any, Any], float]] = None,
        seed: Optional[int] = None,
    ):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if max_subsets < 1:
            raise ValueError(f"max_subsets must be >= 1, got {max_subsets}")
        self.algorithm = algorithm
        self.depth = depth
        self.max_subsets = max_subsets
        self.disorder = disorder or _default_disorder
        self._seed = seed
        self._rng = random.Random(seed)

    # -- candidate enumeration ------------------------------------------------
    def _candidates(self, enabled: Sequence[int]) -> list[Tuple[int, ...]]:
        enabled = list(enabled)
        cands: list[Tuple[int, ...]] = [(i,) for i in enabled]
        if len(enabled) > 1:
            cands.append(tuple(enabled))
        if len(enabled) <= 4:
            # Small enabled sets: enumerate every non-empty subset exactly.
            for r in range(2, len(enabled)):
                cands.extend(itertools.combinations(enabled, r))
        else:
            while len(cands) < self.max_subsets:
                size = self._rng.randint(2, len(enabled) - 1)
                cands.append(tuple(sorted(self._rng.sample(enabled, size))))
        # Deduplicate, keep order, respect the budget.
        seen = set()
        out = []
        for c in cands:
            if c not in seen:
                seen.add(c)
                out.append(c)
            if len(out) >= max(self.max_subsets, len(enabled) + 1):
                break
        return out

    def _value(self, config: Any, depth: int) -> float:
        """Best disorder the adversary can maintain from ``config``."""
        base = self.disorder(self.algorithm, config)
        if depth == 0:
            return base
        enabled = self.algorithm.enabled_processes(config)
        if not enabled:
            return base
        best = float("-inf")
        for cand in self._candidates(enabled):
            nxt = self.algorithm.step(config, cand)
            best = max(best, self._value(nxt, depth - 1))
        return best

    # -- Daemon API --------------------------------------------------------
    def select(self, enabled: Sequence[int], config: Any, step: int) -> Tuple[int, ...]:
        best_score = float("-inf")
        best: list[Tuple[int, ...]] = []
        for cand in self._candidates(enabled):
            nxt = self.algorithm.step(config, cand)
            score = self._value(nxt, self.depth - 1)
            if score > best_score:
                best_score, best = score, [cand]
            elif score == best_score:
                best.append(cand)
        return self._rng.choice(best)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def describe(self):
        return dict(super().describe(), depth=self.depth,
                    max_subsets=self.max_subsets, seed=self._seed)
