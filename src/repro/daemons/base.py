"""Daemon interface.

A daemon is asked, at each step, to select a non-empty subset of the enabled
processes.  It may inspect the current configuration (adversarial daemons do)
and carries its own randomness so simulations replay deterministically from a
seed.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Sequence, Tuple


class Daemon(abc.ABC):
    """Abstract scheduler.

    Subclasses implement :meth:`select`; the simulation engine guarantees
    ``enabled`` is non-empty (a deadlocked configuration ends the run before
    the daemon is consulted) and validates the returned selection.
    """

    #: Whether this daemon may select more than one process per step.
    distributed: bool = True

    @property
    def name(self) -> str:
        """Stable label for telemetry (``steps_total{daemon=...}``)."""
        return type(self).__name__

    def describe(self) -> Dict[str, Any]:
        """Reproducibility descriptor recorded in run manifests.

        Subclasses with tunables (seeds, probabilities) extend the base
        dict so a manifest pins down the exact schedule distribution.
        """
        return {"name": self.name, "distributed": self.distributed}

    @abc.abstractmethod
    def select(
        self, enabled: Sequence[int], config: Any, step: int
    ) -> Tuple[int, ...]:
        """Choose a non-empty subset of ``enabled`` to move at ``step``.

        Parameters
        ----------
        enabled:
            Sorted tuple of currently enabled process indices (non-empty).
        config:
            The current configuration (read-only; adversaries may use it).
        step:
            0-based step counter of the simulation.
        """

    def reset(self) -> None:
        """Forget per-run state (round-robin pointers etc.).

        Called by the engine at the start of each run; default is a no-op.
        """

    @staticmethod
    def validate_selection(
        selection: Sequence[int], enabled: Sequence[int]
    ) -> Tuple[int, ...]:
        """Check a selection is a non-empty subset of the enabled set."""
        chosen = tuple(sorted(set(selection)))
        if not chosen:
            raise ValueError("daemon selected an empty set")
        enabled_set = set(enabled)
        bad = [i for i in chosen if i not in enabled_set]
        if bad:
            raise ValueError(f"daemon selected disabled processes {bad}")
        return chosen
