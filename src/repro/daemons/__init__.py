"""Process schedulers ("daemons") — paper section 2.1.

At each step a daemon selects a non-empty subset of the enabled processes:

* the **central daemon** picks exactly one enabled process;
* the **distributed daemon** picks an arbitrary non-empty subset;
* a daemon is **unfair** if it may starve a continuously-enabled process.

SSRmin is proven correct under the *unfair distributed* daemon — the weakest
scheduler — so this package provides a spectrum of schedulers to exercise it:

* :class:`SynchronousDaemon` — all enabled processes move (a distributed
  daemon's extreme choice);
* :class:`RandomCentralDaemon` / :class:`RandomSubsetDaemon` /
  :class:`BernoulliDaemon` — randomized selections;
* :class:`RoundRobinDaemon` — a fair central daemon;
* :class:`AdversarialDaemon` — greedy lookahead trying to maximize
  convergence time (an *unfair* daemon by construction);
* :class:`WeightedUnfairDaemon` — geometrically skewed selections that
  starve a tail of the ring for long stretches (the conformance fuzzer's
  fourth schedule family);
* :class:`ReplayDaemon` — replays a recorded selection sequence
  (deterministic regression tests, Figure 4).
"""

from repro.daemons.base import Daemon
from repro.daemons.central import (
    RandomCentralDaemon,
    RoundRobinDaemon,
    FixedPriorityDaemon,
)
from repro.daemons.distributed import (
    SynchronousDaemon,
    RandomSubsetDaemon,
    BernoulliDaemon,
)
from repro.daemons.adversarial import AdversarialDaemon
from repro.daemons.replay import ReplayDaemon
from repro.daemons.weighted import WeightedUnfairDaemon

__all__ = [
    "Daemon",
    "RandomCentralDaemon",
    "RoundRobinDaemon",
    "FixedPriorityDaemon",
    "SynchronousDaemon",
    "RandomSubsetDaemon",
    "BernoulliDaemon",
    "AdversarialDaemon",
    "WeightedUnfairDaemon",
    "ReplayDaemon",
]
