"""Declarative chaos campaigns: fault grids, persistence, and reports.

A :class:`CampaignSpec` is the file-shaped description of a resilience
study: one ring recipe, a list of typed faults, and a list of seeds.
:meth:`CampaignSpec.experiments` expands the ``seeds × faults`` grid into
:class:`~repro.chaoslab.experiment.ChaosExperiment` cells;
:func:`run_campaign` drives them through an
:class:`~repro.chaoslab.scheduler.ExperimentScheduler` and persists every
cell into the :class:`~repro.observability.store.RunStore` — a tagged
``runs`` row per cell (``runs.campaign``), its epochs, its injected
disturbances, every observation as a ``samples`` row, and a **critical
incident per invariant breach** — plus one ``campaigns`` row holding the
spec and the final report.

The report itself (:func:`build_campaign_report`) is computed *from the
store*, not from in-memory results: per-fault-class p50/p99
time-to-restabilize over merged epochs
(:func:`~repro.observability.slo.merge_epochs`), the breach list, and
error-budget burn — the fraction of failed cells over the campaign's
allowance.
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaoslab.experiment import (
    ChaosExperiment,
    ExperimentResult,
    ExperimentStatus,
)
from repro.chaoslab.faults import FaultConfig
from repro.chaoslab.observe import ObservationPoint
from repro.chaoslab.scheduler import ExperimentScheduler, OnProgress
from repro.observability.slo import merge_epochs, quantile
from repro.observability.store import RunStore


def _utcnow() -> str:
    return _time.strftime("%Y-%m-%dT%H:%M:%SZ", _time.gmtime())


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign: a fault grid over one ring recipe.

    Every ``(fault, seed)`` pair becomes one experiment cell named
    ``<campaign>/<fault-slug>/seed<seed>``; compound multi-fault cells
    are built directly as :class:`ChaosExperiment`\\ s when needed.
    """

    name: str
    faults: Tuple[FaultConfig, ...]
    seeds: Tuple[int, ...] = (0,)
    algorithm: str = "ssrmin"
    n: int = 6
    K: Optional[int] = None
    transport: str = "loopback"
    wire: str = "json"
    timer_interval: float = 0.05
    budget: float = 10.0
    settle: float = 1.0
    stabilize_timeout: float = 20.0
    extra_duration: float = 0.0
    abort_on_breach: bool = True
    #: Fraction of grid cells allowed to fail before the campaign does.
    error_budget: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(
            f if isinstance(f, FaultConfig) else FaultConfig.from_json(f)
            for f in self.faults
        ))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.faults:
            raise ValueError("campaign needs at least one fault")
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if not 0.0 <= self.error_budget <= 1.0:
            raise ValueError(
                f"error_budget must be in [0, 1], got {self.error_budget}"
            )

    @property
    def cells(self) -> int:
        return len(self.faults) * len(self.seeds)

    def experiments(self) -> List[ChaosExperiment]:
        """Expand the ``seeds × faults`` grid into experiment cells."""
        out: List[ChaosExperiment] = []
        for fault in self.faults:
            for seed in self.seeds:
                out.append(ChaosExperiment(
                    name=f"{self.name}/{fault.slug}/seed{seed}",
                    faults=(fault,),
                    algorithm=self.algorithm,
                    n=self.n,
                    K=self.K,
                    seed=seed,
                    transport=self.transport,
                    wire=self.wire,
                    timer_interval=self.timer_interval,
                    budget=self.budget,
                    settle=self.settle,
                    stabilize_timeout=self.stabilize_timeout,
                    extra_duration=self.extra_duration,
                    abort_on_breach=self.abort_on_breach,
                ))
        return out

    def to_json(self) -> dict:
        """JSON-able form (spec files, the ``campaigns.spec`` column)."""
        return {
            "name": self.name,
            "faults": [f.to_json() for f in self.faults],
            "seeds": list(self.seeds),
            "algorithm": self.algorithm,
            "n": self.n,
            "K": self.K,
            "transport": self.transport,
            "wire": self.wire,
            "timer_interval": self.timer_interval,
            "budget": self.budget,
            "settle": self.settle,
            "stabilize_timeout": self.stabilize_timeout,
            "extra_duration": self.extra_duration,
            "abort_on_breach": self.abort_on_breach,
            "error_budget": self.error_budget,
        }

    @classmethod
    def from_json(cls, blob: dict) -> "CampaignSpec":
        if "name" not in blob:
            raise ValueError(f"campaign spec needs a 'name': {blob!r}")
        if not blob.get("faults"):
            raise ValueError(f"campaign {blob['name']!r} declares no faults")
        kwargs: Dict[str, Any] = {
            "name": blob["name"],
            "faults": tuple(
                FaultConfig.from_json(f) for f in blob["faults"]
            ),
        }
        for key in ("seeds", "algorithm", "n", "K", "transport", "wire",
                    "timer_interval", "budget", "settle",
                    "stabilize_timeout", "extra_duration",
                    "abort_on_breach", "error_budget"):
            if key in blob:
                kwargs[key] = blob[key]
        if "seeds" in kwargs:
            kwargs["seeds"] = tuple(kwargs["seeds"])
        return cls(**kwargs)


def load_campaign_spec(path: str) -> CampaignSpec:
    """Load a campaign spec file: JSON always, YAML when available."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if os.path.splitext(path)[1].lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise RuntimeError(
                f"{path}: YAML specs need PyYAML; re-express the spec as "
                f"JSON or install pyyaml"
            ) from None
        blob = yaml.safe_load(text)
    else:
        blob = json.loads(text)
    if not isinstance(blob, dict):
        raise ValueError(f"{path}: campaign spec must be a mapping")
    return CampaignSpec.from_json(blob)


# -- persistence ---------------------------------------------------------------

def _fault_class(experiment: ChaosExperiment) -> str:
    """Grid-cell fault class: the fault's type, or ``mixed`` for volleys."""
    types = {f.fault_type.value for f in experiment.faults}
    return types.pop() if len(types) == 1 else "mixed"


def persist_experiment(
    store: RunStore,
    campaign: str,
    result: ExperimentResult,
) -> int:
    """Write one experiment cell into the store; returns its run db id.

    One ``runs`` row (tagged with the campaign), its epochs and injected
    disturbances, one ``samples`` row per observation, and — for a fatal
    result — exactly one escalated (critical) incident.
    """
    experiment = result.experiment
    health = result.report.get("health", {})
    run_db_id = store.insert_run(
        experiment.name,
        kind="chaos-cell",
        campaign=campaign,
        algorithm=result.report.get("algorithm"),
        n=experiment.n,
        k=result.report.get("K"),
        seed=experiment.seed,
        transport=experiment.transport,
        script="+".join(f.slug for f in experiment.faults),
        started_utc=_utcnow(),
        wall_seconds=result.report.get("wall_clock"),
        stabilized=int(bool(health.get("stabilized"))),
        vacancy_instants=health.get("vacancy_instants"),
        violations=len(health.get("guarantee_violations", ())),
        restarts=result.report.get("restarts"),
        source="chaoslab",
        extra={
            "status": result.status.value,
            "ok": result.ok,
            "fatal": result.fatal,
            "fault_class": _fault_class(experiment),
            "budget": experiment.budget,
            "time_to_restabilize": result.time_to_restabilize,
            "leaked_tasks": result.leaked_tasks,
            "faults": [f.to_json() for f in experiment.faults],
        },
    )
    for idx, epoch in enumerate(health.get("epochs", ())):
        store.add_epoch(
            run_db_id,
            idx=idx,
            label=str(epoch.get("label", "?")),
            cls=_epoch_class(epoch),
            started_at=float(epoch.get("started_at", 0.0)),
            stabilized_at=epoch.get("stabilized_at"),
        )
    for op in result.report.get("script", {}).get("ops", ()):
        store.add_disturbance(
            run_db_id,
            at=float(op.get("at", 0.0)),
            kind=str(op.get("kind", "?")),
            duration=float(op.get("duration", 0.0)),
            params=op.get("params") or None,
        )
    store.add_samples(run_db_id, [
        (
            obs.time,
            f"obs.{obs.point}",
            obs.value if obs.value is not None else 0.0,
            {"event": obs.event, "breach": obs.breach, "fatal": obs.fatal},
        )
        for obs in result.observations
    ])
    if result.fatal:
        first = next(o for o in result.observations if o.fatal)
        store.open_incident(
            run_db_id,
            opened_at=first.time,
            kind="invariant-breach",
            severity="critical",
            title=(
                f"invariant breach in {experiment.name}: "
                f"{first.point} at {first.time:.2f}s"
            ),
            details={"observation": first.to_json(),
                     "status": result.status.value},
        )
    store.flush()
    return run_db_id


def _epoch_class(epoch: Dict[str, Any]) -> str:
    from repro.observability.slo import disturbance_class

    return disturbance_class(str(epoch.get("label", "")))


# -- reporting -----------------------------------------------------------------

def build_campaign_report(store: RunStore, name: str) -> dict:
    """Assemble the campaign report from the store (the source of truth).

    Per-fault-class restabilization latency quantiles are computed over
    the **merged** epochs of every cell in the class (so back-to-back
    disturbances within one cell count once, measured from the fault
    that stopped biting last), plus the breach list and error-budget
    burn.
    """
    row = store.get_campaign(name)
    if row is None:
        raise ValueError(f"no campaign named {name!r} in the store")
    spec = row.get("spec") or {}
    error_budget = float(spec.get("error_budget", 0.0))
    runs = store.campaign_runs(name)

    cells: List[dict] = []
    by_class: Dict[str, List[float]] = {}
    breaches: List[dict] = []
    for run in runs:
        extra = run.get("extra") or {}
        cls = extra.get("fault_class", "other")
        merged = merge_epochs(store.epochs_for(run["id"]))
        for epoch in merged:
            ttr = epoch.get("time_to_stabilize")
            if ttr is not None and epoch.get("class") != "boot":
                by_class.setdefault(cls, []).append(float(ttr))
        for sample in store.samples_for(run["id"]):
            labels = sample.get("labels") or {}
            if labels.get("breach"):
                breaches.append({
                    "cell": run["run_id"],
                    "point": str(sample.get("name", "")).replace(
                        "obs.", "", 1),
                    "time": sample.get("time"),
                    "value": sample.get("value"),
                    "fatal": bool(labels.get("fatal")),
                })
        cells.append({
            "cell": run["run_id"],
            "fault_class": cls,
            "seed": run.get("seed"),
            "status": extra.get("status"),
            "ok": bool(extra.get("ok")),
            "time_to_restabilize": extra.get("time_to_restabilize"),
            "stabilized": bool(run.get("stabilized")),
            "restarts": run.get("restarts"),
        })

    classes = {
        cls: {
            "cells": len(values),
            "p50": quantile(values, 0.50),
            "p99": quantile(values, 0.99),
            "max": max(values),
        }
        for cls, values in sorted(by_class.items())
    }
    total = len(cells)
    failed = sum(1 for c in cells if not c["ok"])
    aborted = sum(
        1 for c in cells if c["status"] == ExperimentStatus.ABORTED.value
    )
    failed_fraction = failed / total if total else 0.0
    if failed == 0:
        burn = 0.0
    elif error_budget > 0:
        burn = failed_fraction / error_budget
    else:
        burn = float("inf")
    return {
        "campaign": name,
        "cells": total,
        "completed": total - aborted,
        "aborted": aborted,
        "failed": failed,
        "classes": classes,
        "breaches": breaches,
        "error_budget": {
            "budget": error_budget,
            "failed_fraction": failed_fraction,
            "burn": burn,
            "ok": failed_fraction <= error_budget,
        },
        "ok": failed_fraction <= error_budget,
        "cell_rows": cells,
    }


def render_campaign_report(report: dict) -> List[str]:
    """Human-readable campaign report lines (the CLI's output)."""
    budget = report.get("error_budget", {})
    lines = [
        f"campaign:  {report.get('campaign')}",
        f"cells:     {report.get('cells')} "
        f"({report.get('completed')} completed, "
        f"{report.get('aborted')} aborted, {report.get('failed')} failed)",
    ]
    classes = report.get("classes", {})
    if classes:
        lines.append("time-to-restabilize by fault class:")
        for cls, stats in classes.items():
            lines.append(
                f"  {cls:<18} p50={stats['p50']:.3f}s  "
                f"p99={stats['p99']:.3f}s  max={stats['max']:.3f}s  "
                f"({stats['cells']} epochs)"
            )
    breaches = report.get("breaches", ())
    lines.append(f"breaches:  {len(breaches)}")
    for breach in breaches:
        marker = "FATAL " if breach.get("fatal") else ""
        lines.append(
            f"  {marker}{breach['cell']}: {breach['point']} "
            f"at {breach.get('time', 0.0):.2f}s"
        )
    burn = budget.get("burn", 0.0)
    lines.append(
        f"error budget: {budget.get('failed_fraction', 0.0):.1%} failed "
        f"of {budget.get('budget', 0.0):.1%} allowed "
        f"(burn {'∞' if burn == float('inf') else f'{burn:.2f}'}) -> "
        f"{'OK' if budget.get('ok') else 'EXCEEDED'}"
    )
    return lines


# -- execution -----------------------------------------------------------------

def run_campaign(
    spec: CampaignSpec,
    store: Optional[RunStore] = None,
    workers: int = 1,
    points: Optional[List[ObservationPoint]] = None,
    on_progress: Optional[OnProgress] = None,
) -> dict:
    """Run a campaign's full grid and return the store-derived report.

    Without a ``store`` an in-memory one is used for the duration — the
    report is *always* assembled from a RunStore, so persisted and
    ephemeral campaigns answer from the same code path.  Cells persist
    in completion order (parallel results are persisted parent-side; the
    scheduler's workers only ship JSON back).
    """
    own_store = store is None
    if own_store:
        store = RunStore(":memory:")
    assert store is not None
    experiments = spec.experiments()
    store.insert_campaign(
        spec.name,
        spec=spec.to_json(),
        started_utc=_utcnow(),
        cells=len(experiments),
    )
    results: List[Optional[ExperimentResult]] = [None] * len(experiments)

    def _progress(
        index: int, result: ExperimentResult, done: int, total: int
    ) -> None:
        results[index] = result
        persist_experiment(store, spec.name, result)
        if on_progress is not None:
            on_progress(index, result, done, total)

    scheduler = ExperimentScheduler(
        workers=workers, points=points, on_progress=_progress,
    )
    try:
        final = scheduler.run(experiments)
        # The scheduler's return is authoritative; persist any cell the
        # progress callback missed (defensive — sequential never does).
        for index, result in enumerate(final):
            if results[index] is None:
                persist_experiment(store, spec.name, result)
        wall = sum(
            r.report.get("wall_clock", 0.0) or 0.0 for r in final
        )
        report = build_campaign_report(store, spec.name)
        store.update_campaign(
            spec.name,
            wall_seconds=wall,
            completed=report["completed"],
            aborted=report["aborted"],
            breaches=len(report["breaches"]),
            report=report,
        )
        store.flush()
    finally:
        if own_store:
            store.close()
    return report


__all__ = [
    "CampaignSpec",
    "build_campaign_report",
    "load_campaign_spec",
    "persist_experiment",
    "render_campaign_report",
    "run_campaign",
]
