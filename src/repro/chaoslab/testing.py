"""``resilience_test``: declarative chaos experiments as pytest tests.

Replaces the hand-rolled ``live_chaos(...)``-plus-assertions setup with a
decorator: declare the faults and the ring, receive the executed
:class:`~repro.chaoslab.experiment.ExperimentResult` as an ``outcome``
keyword argument, assert on it::

    @resilience_test(
        faults=[FaultConfig(FaultType.LOSS, at=0.2, duration=0.4,
                            severity=0.7)],
        n=5, seed=41, budget=20.0,
    )
    def test_ring_survives_loss(outcome):
        assert outcome.ok
        assert outcome.report["health"]["stabilized"]

The decorator strips ``outcome`` from the wrapper's signature so pytest
does not try to resolve it as a fixture; every other parameter passes
through untouched (fixtures still work).  Fault specs are permissive:
:class:`~repro.chaoslab.faults.FaultConfig` instances,
:class:`~repro.chaoslab.faults.FaultType` members (default onset /
duration / severity), or CLI-style ``"type[:severity[:duration]]"``
strings.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.chaoslab.experiment import ChaosExperiment, run_experiment
from repro.chaoslab.faults import FaultConfig, FaultType, parse_fault_flag
from repro.chaoslab.observe import ObservationPoint

FaultSpec = Union[FaultConfig, FaultType, str]


def _coerce_fault(spec: FaultSpec) -> FaultConfig:
    if isinstance(spec, FaultConfig):
        return spec
    if isinstance(spec, FaultType):
        return FaultConfig(fault_type=spec)
    return parse_fault_flag(str(spec))


def _coerce_faults(
    faults: Union[FaultSpec, Iterable[FaultSpec]]
) -> Tuple[FaultConfig, ...]:
    if isinstance(faults, (FaultConfig, FaultType, str)):
        faults = (faults,)
    return tuple(_coerce_fault(f) for f in faults)


def resilience_test(
    faults: Union[FaultSpec, Iterable[FaultSpec]],
    *,
    points: Optional[List[ObservationPoint]] = None,
    name: Optional[str] = None,
    **experiment_kwargs: Any,
) -> Callable[[Callable], Callable]:
    """Declare a chaos experiment around a test function.

    Parameters
    ----------
    faults:
        One fault spec or an iterable of them (see module docstring).
    points:
        Observation points; defaults to the canonical panel.
    name:
        Experiment name; defaults to the test function's ``__name__``.
    experiment_kwargs:
        Everything else :class:`ChaosExperiment` accepts — ``algorithm``,
        ``n``, ``K``, ``seed``, ``transport``, ``wire``,
        ``timer_interval``, ``budget``, ``settle``, ``stabilize_timeout``,
        ``extra_duration``, ``abort_on_breach``.
    """
    fault_configs = _coerce_faults(faults)

    def decorate(fn: Callable) -> Callable:
        def make_experiment() -> ChaosExperiment:
            # A fresh experiment per invocation: status is mutable and a
            # rerun (pytest-repeat, flake retries) must start PENDING.
            return ChaosExperiment(
                name=name or fn.__name__,
                faults=fault_configs,
                **experiment_kwargs,
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            outcome = run_experiment(make_experiment(), points=points)
            return fn(*args, outcome=outcome, **kwargs)

        signature = inspect.signature(fn)
        if "outcome" not in signature.parameters:
            raise TypeError(
                f"{fn.__name__} must take an 'outcome' parameter to be a "
                f"resilience_test"
            )
        wrapper.__signature__ = signature.replace(  # type: ignore[attr-defined]
            parameters=[
                p for pname, p in signature.parameters.items()
                if pname != "outcome"
            ]
        )
        # Introspection hooks (docs, campaign dogfooding).
        wrapper.make_experiment = make_experiment  # type: ignore[attr-defined]
        wrapper.faults = fault_configs  # type: ignore[attr-defined]
        return wrapper

    return decorate


__all__ = ["FaultSpec", "resilience_test"]
