"""Chaos experiments: one declarative fault plan run against one live ring.

A :class:`ChaosExperiment` bundles the ring recipe (algorithm, ``n``,
``K``, transport, wire, seed, timer interval) with a tuple of
:class:`~repro.chaoslab.faults.FaultConfig`\\ s and a restabilization
budget.  :meth:`ChaosExperiment.compile` lowers the faults to one
:class:`~repro.runtime.chaos.ChaosScript`; :func:`run_experiment` plays
it against a live :class:`~repro.runtime.supervisor.RingSupervisor`
while an :class:`~repro.chaoslab.observe.ObservationHarness` samples the
paper's predicates at every epoch boundary.

Lifecycle: ``pending -> running -> completed | aborted``.  The executor
races the chaos director against the harness's fatal-breach event — the
first invariant breach (token guarantee violated post-stabilization,
vacancy under graceful handover, or a custom tripwire) cancels the
script, tears the ring down, and marks the experiment ``aborted``.  The
:class:`ExperimentResult` also counts asyncio tasks left behind after
teardown (``leaked_tasks``), so resilience tests can assert the abort
path cleans up completely.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.chaoslab.faults import FaultConfig
from repro.chaoslab.observe import Observation, ObservationHarness, ObservationPoint
from repro.runtime.chaos import ChaosScript, WINDOW_KINDS
from repro.runtime.harness import build_algorithm
from repro.runtime.supervisor import RingSupervisor


class ExperimentStatus(str, Enum):
    """Where an experiment is in its lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    ABORTED = "aborted"


@dataclass
class ChaosExperiment:
    """One grid cell: a fault plan plus the ring it runs against."""

    name: str
    faults: Tuple[FaultConfig, ...]
    algorithm: str = "ssrmin"
    n: int = 6
    K: Optional[int] = None
    seed: int = 0
    transport: str = "loopback"
    wire: str = "json"
    timer_interval: float = 0.05
    #: Re-stabilization budget in seconds (the RestabilizeBudgetPoint's
    #: threshold; overruns are non-fatal breaches).
    budget: float = 10.0
    #: Calm run-on after the last fault stops biting.
    settle: float = 1.0
    stabilize_timeout: float = 20.0
    #: Extra post-restabilization runtime (steady-state soak).
    extra_duration: float = 0.0
    #: Cancel the script and tear down on the first fatal breach.
    abort_on_breach: bool = True
    status: ExperimentStatus = field(default=ExperimentStatus.PENDING)

    def __post_init__(self) -> None:
        self.faults = tuple(
            f if isinstance(f, FaultConfig) else FaultConfig.from_json(f)
            for f in self.faults
        )
        self.status = ExperimentStatus(self.status)

    def compile(self) -> ChaosScript:
        """Lower every fault and merge into one replayable script."""
        ops: List[Any] = []
        for fault in self.faults:
            ops.extend(fault.compile(self.n, self.seed))
        return ChaosScript(
            name=self.name,
            ops=tuple(sorted(ops, key=lambda op: op.at)),
            settle=self.settle,
        )

    @property
    def needs_chaos_transport(self) -> bool:
        """Whether any fault opens a transport window."""
        return any(
            op.kind in WINDOW_KINDS for op in self.compile().ops
        )

    def to_json(self) -> dict:
        """JSON-able form (campaign specs, cross-process payloads)."""
        return {
            "name": self.name,
            "faults": [f.to_json() for f in self.faults],
            "algorithm": self.algorithm,
            "n": self.n,
            "K": self.K,
            "seed": self.seed,
            "transport": self.transport,
            "wire": self.wire,
            "timer_interval": self.timer_interval,
            "budget": self.budget,
            "settle": self.settle,
            "stabilize_timeout": self.stabilize_timeout,
            "extra_duration": self.extra_duration,
            "abort_on_breach": self.abort_on_breach,
            "status": self.status.value,
        }

    @classmethod
    def from_json(cls, blob: dict) -> "ChaosExperiment":
        """Inverse of :meth:`to_json`; tolerant of sparse specs."""
        if "name" not in blob:
            raise ValueError(f"experiment spec needs a 'name': {blob!r}")
        faults = tuple(
            FaultConfig.from_json(f) for f in blob.get("faults", ())
        )
        kwargs: Dict[str, Any] = {"name": blob["name"], "faults": faults}
        for key in ("algorithm", "n", "K", "seed", "transport", "wire",
                    "timer_interval", "budget", "settle",
                    "stabilize_timeout", "extra_duration",
                    "abort_on_breach", "status"):
            if key in blob:
                kwargs[key] = blob[key]
        return cls(**kwargs)


@dataclass
class ExperimentResult:
    """The verdict of one executed experiment."""

    experiment: ChaosExperiment
    status: ExperimentStatus
    report: Dict[str, Any]
    observations: List[Observation] = field(default_factory=list)
    #: asyncio tasks still pending after supervisor teardown (should be 0).
    leaked_tasks: int = 0

    @property
    def breaches(self) -> List[Observation]:
        return [o for o in self.observations if o.breach]

    @property
    def fatal(self) -> bool:
        return any(o.fatal for o in self.observations)

    @property
    def time_to_restabilize(self) -> Optional[float]:
        return self.report.get("health", {}).get("time_to_restabilize")

    @property
    def ok(self) -> bool:
        """Completed, stabilized, and breach-free."""
        return (
            self.status is ExperimentStatus.COMPLETED
            and bool(self.report.get("health", {}).get("stabilized"))
            and not self.breaches
        )

    def to_json(self) -> dict:
        """JSON-able form (cross-process scheduler results)."""
        return {
            "experiment": self.experiment.to_json(),
            "status": self.status.value,
            "report": self.report,
            "observations": [o.to_json() for o in self.observations],
            "leaked_tasks": self.leaked_tasks,
        }

    @classmethod
    def from_json(cls, blob: dict) -> "ExperimentResult":
        return cls(
            experiment=ChaosExperiment.from_json(blob["experiment"]),
            status=ExperimentStatus(blob["status"]),
            report=dict(blob.get("report", {})),
            observations=[
                Observation(
                    point=o["point"], event=o["event"], time=o["time"],
                    value=o.get("value"), breach=o.get("breach", False),
                    fatal=o.get("fatal", False),
                    detail=dict(o.get("detail", {})),
                )
                for o in blob.get("observations", ())
            ],
            leaked_tasks=int(blob.get("leaked_tasks", 0)),
        )


async def execute_experiment(
    experiment: ChaosExperiment,
    points: Optional[List[ObservationPoint]] = None,
) -> ExperimentResult:
    """Async executor: boot, stabilize, inject, observe, judge, drain.

    Races the chaos director against the observation harness's fatal
    breach event when ``abort_on_breach`` is set.
    """
    script = experiment.compile()
    algorithm = build_algorithm(
        experiment.algorithm, experiment.n, experiment.K
    )
    supervisor = RingSupervisor(
        algorithm,
        transport=experiment.transport,
        chaos=any(op.kind in WINDOW_KINDS for op in script.ops),
        wire=experiment.wire,
        initial="legitimate",
        seed=experiment.seed,
        timer_interval=experiment.timer_interval,
    )
    harness = ObservationHarness(points=points, budget=experiment.budget)
    experiment.status = ExperimentStatus.RUNNING
    aborted = False
    try:
        await supervisor.boot()
        harness.attach(supervisor)
        try:
            await supervisor.wait_stabilized(experiment.stabilize_timeout)
        except TimeoutError:
            pass  # judged by the harness's final sample, not here
        director = asyncio.create_task(supervisor.run_chaos(script))
        if experiment.abort_on_breach:
            tripwire = asyncio.create_task(harness.breach_event.wait())
            try:
                await asyncio.wait(
                    {director, tripwire},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                tripwire.cancel()
            if harness.breach_event.is_set() and not director.done():
                # Invariant breach mid-script: stop injecting, tear down.
                director.cancel()
                aborted = True
        try:
            await director
        except asyncio.CancelledError:
            if not aborted:
                raise
        if not aborted:
            if not supervisor.health.stabilized:
                try:
                    await supervisor.wait_stabilized(
                        experiment.stabilize_timeout
                    )
                except TimeoutError:
                    pass  # recorded as a restabilize-budget breach
            if experiment.extra_duration > 0:
                await supervisor.run_for(experiment.extra_duration)
        harness.finalize()
    finally:
        await supervisor.shutdown()
    current = asyncio.current_task()
    leaked = [
        t for t in asyncio.all_tasks()
        if t is not current and not t.done()
    ]
    report = supervisor.report()
    report["script"] = script.to_json()
    experiment.status = (
        ExperimentStatus.ABORTED if aborted else ExperimentStatus.COMPLETED
    )
    return ExperimentResult(
        experiment=experiment,
        status=experiment.status,
        report=report,
        observations=list(harness.observations),
        leaked_tasks=len(leaked),
    )


def run_experiment(
    experiment: ChaosExperiment,
    points: Optional[List[ObservationPoint]] = None,
) -> ExperimentResult:
    """Synchronous entry point (tests, CLI, scheduler workers)."""
    return asyncio.run(execute_experiment(experiment, points=points))


__all__ = [
    "ChaosExperiment",
    "ExperimentResult",
    "ExperimentStatus",
    "execute_experiment",
    "run_experiment",
]
