"""Observation points: the paper's predicates sampled at epoch boundaries.

The online :class:`~repro.runtime.health.HealthMonitor` already evaluates
the conformance predicates (legitimate + coherent entry condition, own-view
token census vs :data:`~repro.verification.conformance.oracle.TOKEN_BOUNDS`,
vacancy instants, per-epoch time-to-restabilize).  An
:class:`ObservationPoint` taps that stream declaratively: the
:class:`ObservationHarness` chains itself onto the monitor's epoch
callbacks — ``epoch_open``, ``epoch_stabilized``, ``violation``, plus a
synthetic ``final`` sample at teardown — and asks every point for an
:class:`Observation` at each boundary.

Observations come in three grades:

* plain **samples** (``breach=False``) — the campaign's measured
  observables (time-to-restabilize per epoch, census extrema, vacancy
  counts), persisted as ``samples`` rows;
* **breaches** (``breach=True, fatal=False``) — a declared budget was
  missed (e.g. restabilization slower than the experiment's budget); the
  cell fails its verdict but runs to completion;
* **fatal breaches** (``fatal=True``) — a paper *invariant* broke (token
  guarantee violated after stabilization, vacancy observed for a
  graceful-handover algorithm).  With ``abort_on_breach`` the scheduler
  tears the ring down immediately and records an escalated incident.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Event names a point can observe.
EVENTS = ("epoch_open", "epoch_stabilized", "violation", "final")


@dataclass(frozen=True)
class Observation:
    """One reading from one observation point."""

    point: str
    event: str
    time: float
    value: Optional[float] = None
    breach: bool = False
    fatal: bool = False
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-able form (experiment results, sample rows)."""
        return {
            "point": self.point,
            "event": self.event,
            "time": self.time,
            "value": self.value,
            "breach": self.breach,
            "fatal": self.fatal,
            "detail": dict(self.detail),
        }


@dataclass(frozen=True)
class ObservationContext:
    """What a point sees at one epoch boundary."""

    event: str
    time: float
    supervisor: Any
    health: Any
    budget: float
    #: Event-specific payload: the epoch (open/stabilized) or the
    #: violation record.
    payload: Dict[str, Any] = field(default_factory=dict)


class ObservationPoint:
    """Base class: ``observe(ctx)`` returns an Observation or ``None``."""

    name = "point"

    def observe(self, ctx: ObservationContext) -> Optional[Observation]:
        """Sample this point at one boundary; ``None`` means no sample.

        Called for every health-monitor event (``epoch_open``,
        ``epoch_stabilized``, ``violation``) and once more with the
        synthetic ``final`` event at teardown.  A returned observation
        with ``fatal=True`` trips the experiment's abort path.
        """
        raise NotImplementedError


class EntryConditionPoint(ObservationPoint):
    """Theorem 4's entry condition: the legitimate + coherent instant.

    Samples each epoch's time-to-stabilize the moment the monitor sees
    the first legitimate + coherent configuration; never breaches (the
    budget point judges the latency).
    """

    name = "entry-condition"

    def observe(self, ctx: ObservationContext) -> Optional[Observation]:
        if ctx.event != "epoch_stabilized":
            return None
        epoch = ctx.payload.get("epoch")
        ttr = epoch.time_to_stabilize if epoch is not None else None
        return Observation(
            point=self.name, event=ctx.event, time=ctx.time, value=ttr,
            detail={"epoch": epoch.label if epoch is not None else "?"},
        )


class TokenCensusPoint(ObservationPoint):
    """The (1, 2)-token bounds of Theorems 1/3 on post-stabilized instants.

    A ``violation`` event from the monitor — the census left its bounds
    after the entry condition — is the invariant breach the paper's
    claims forbid: **fatal**.  At ``final`` it samples the census extrema
    observed across the run.
    """

    name = "token-census"

    def observe(self, ctx: ObservationContext) -> Optional[Observation]:
        if ctx.event == "violation":
            record = ctx.payload.get("record", {})
            return Observation(
                point=self.name, event=ctx.event, time=ctx.time,
                value=float(len(record.get("holders", ()))),
                breach=True, fatal=True, detail=dict(record),
            )
        if ctx.event == "final":
            lo = ctx.health.post_stab_min_holders
            return Observation(
                point=self.name, event=ctx.event, time=ctx.time,
                value=float(lo) if lo is not None else None,
                detail={
                    "min_holders": lo,
                    "max_holders": ctx.health.post_stab_max_holders,
                    "bounds": ctx.health.token_bounds,
                },
            )
        return None


class VacancyPoint(ObservationPoint):
    """Handover vacancy instants (Theorems 3-4 vs Dijkstra's Figure 13 gap).

    For a graceful-handover algorithm any vacancy after stabilization is
    an invariant breach (**fatal**); for non-graceful algorithms the
    count is the measured observable.
    """

    name = "vacancy"

    def observe(self, ctx: ObservationContext) -> Optional[Observation]:
        if ctx.event not in ("epoch_open", "final"):
            return None
        count = ctx.health.vacancy_instants
        fatal = bool(ctx.health.guaranteed_throughout and count > 0)
        return Observation(
            point=self.name, event=ctx.event, time=ctx.time,
            value=float(count), breach=fatal, fatal=fatal,
            detail={"graceful": ctx.health.guaranteed_throughout},
        )


class RestabilizeBudgetPoint(ObservationPoint):
    """Closure/convergence within budget (Theorem 2, operationalized).

    At ``final``: the last epoch must have restabilized, within the
    experiment's budget.  Misses are breaches (the cell fails) but not
    fatal — the ring was torn down normally and the latency itself is
    the data point.
    """

    name = "restabilize-budget"

    def observe(self, ctx: ObservationContext) -> Optional[Observation]:
        if ctx.event != "final":
            return None
        ttr = ctx.health.time_to_restabilize()
        if not ctx.health.stabilized:
            return Observation(
                point=self.name, event=ctx.event, time=ctx.time,
                value=None, breach=True,
                detail={"reason": "never restabilized",
                        "epoch": ctx.health.current_epoch.label,
                        "budget": ctx.budget},
            )
        breach = ttr is not None and ttr > ctx.budget
        return Observation(
            point=self.name, event=ctx.event, time=ctx.time, value=ttr,
            breach=breach, detail={"budget": ctx.budget},
        )


class PredicatePoint(ObservationPoint):
    """A custom point from a plain predicate (tests, ad-hoc campaigns).

    ``fn(ctx)`` returns True to flag a breach at that boundary; ``fatal``
    chooses whether the breach aborts the experiment.
    """

    def __init__(self, name: str,
                 fn: Callable[[ObservationContext], bool],
                 fatal: bool = True):
        self.name = name
        self._fn = fn
        self.fatal = fatal

    def observe(self, ctx: ObservationContext) -> Optional[Observation]:
        if not self._fn(ctx):
            return None
        return Observation(
            point=self.name, event=ctx.event, time=ctx.time,
            breach=True, fatal=self.fatal,
            detail={"predicate": self.name},
        )


def default_points() -> List[ObservationPoint]:
    """The canonical panel: entry condition, census, vacancy, budget."""
    return [
        EntryConditionPoint(),
        TokenCensusPoint(),
        VacancyPoint(),
        RestabilizeBudgetPoint(),
    ]


class ObservationHarness:
    """Wires observation points onto one live supervisor's health monitor.

    Chains the supervisor's existing epoch callbacks (the event-bus
    publications keep flowing) and fans each boundary to every point,
    accumulating observations and breaches; the first **fatal** breach
    sets :attr:`breach_event`, which the experiment runner races against
    the chaos script to implement abort-on-invariant-breach.
    """

    def __init__(self, points: Optional[List[ObservationPoint]] = None,
                 budget: float = 10.0):
        self.points = list(points) if points is not None else default_points()
        self.budget = budget
        self.observations: List[Observation] = []
        self.breaches: List[Observation] = []
        self.breach_event = asyncio.Event()
        self._supervisor: Any = None

    @property
    def fatal(self) -> bool:
        """Whether any fatal breach has been observed."""
        return any(o.fatal for o in self.breaches)

    # -- wiring ---------------------------------------------------------------
    def attach(self, supervisor: Any) -> None:
        """Chain onto a booted supervisor's health callbacks."""
        self._supervisor = supervisor
        health = supervisor.health
        prev_open = health.on_epoch_open
        prev_stab = health.on_epoch_stabilized
        prev_viol = health.on_violation

        def on_open(index: int, epoch: Any) -> None:
            if prev_open is not None:
                prev_open(index, epoch)
            self._boundary("epoch_open", {"index": index, "epoch": epoch})

        def on_stabilized(index: int, epoch: Any) -> None:
            if prev_stab is not None:
                prev_stab(index, epoch)
            self._boundary("epoch_stabilized",
                           {"index": index, "epoch": epoch})

        def on_violation(record: dict) -> None:
            if prev_viol is not None:
                prev_viol(record)
            self._boundary("violation", {"record": record})

        health.on_epoch_open = on_open
        health.on_epoch_stabilized = on_stabilized
        health.on_violation = on_violation

    def finalize(self) -> None:
        """Take the synthetic ``final`` sample (after the run ends)."""
        self._boundary("final", {})

    # -- sampling -------------------------------------------------------------
    def _boundary(self, event: str, payload: Dict[str, Any]) -> None:
        sup = self._supervisor
        if sup is None or sup.health is None:
            return
        ctx = ObservationContext(
            event=event,
            time=sup.clock(),
            supervisor=sup,
            health=sup.health,
            budget=self.budget,
            payload=payload,
        )
        for point in self.points:
            obs = point.observe(ctx)
            if obs is None:
                continue
            self.observations.append(obs)
            if obs.breach:
                self.breaches.append(obs)
                if obs.fatal:
                    self.breach_event.set()


__all__ = [
    "EVENTS",
    "EntryConditionPoint",
    "Observation",
    "ObservationContext",
    "ObservationHarness",
    "ObservationPoint",
    "PredicatePoint",
    "RestabilizeBudgetPoint",
    "TokenCensusPoint",
    "VacancyPoint",
    "default_points",
]
