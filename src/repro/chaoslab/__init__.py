"""Declarative chaos campaigns over live rings.

The chaos lab is the typed, declarative layer above
:mod:`repro.runtime.chaos`'s imperative scripts:

* :mod:`repro.chaoslab.faults` — the :class:`FaultType` taxonomy and
  :class:`FaultConfig`, compiled down to ``ChaosOp``\\ s;
* :mod:`repro.chaoslab.observe` — :class:`ObservationPoint`\\ s sampling
  the paper's predicates at epoch boundaries;
* :mod:`repro.chaoslab.experiment` — one fault plan against one live
  ring, with the ``pending → running → completed | aborted`` lifecycle
  and abort-on-invariant-breach;
* :mod:`repro.chaoslab.scheduler` — sequential or process-pool execution
  of experiment batches;
* :mod:`repro.chaoslab.campaign` — ``seeds × faults`` grids, RunStore
  persistence (``campaigns`` table), and per-fault-class p50/p99
  restabilization reports;
* :mod:`repro.chaoslab.testing` — the :func:`resilience_test` pytest
  decorator.
"""

from repro.chaoslab.campaign import (
    CampaignSpec,
    build_campaign_report,
    load_campaign_spec,
    persist_experiment,
    render_campaign_report,
    run_campaign,
)
from repro.chaoslab.experiment import (
    ChaosExperiment,
    ExperimentResult,
    ExperimentStatus,
    execute_experiment,
    run_experiment,
)
from repro.chaoslab.faults import (
    FaultConfig,
    FaultType,
    WINDOW_TYPES,
    parse_fault_flag,
)
from repro.chaoslab.observe import (
    EntryConditionPoint,
    Observation,
    ObservationContext,
    ObservationHarness,
    ObservationPoint,
    PredicatePoint,
    RestabilizeBudgetPoint,
    TokenCensusPoint,
    VacancyPoint,
    default_points,
)
from repro.chaoslab.scheduler import ExperimentScheduler
from repro.chaoslab.testing import resilience_test

__all__ = [
    "CampaignSpec",
    "ChaosExperiment",
    "EntryConditionPoint",
    "ExperimentResult",
    "ExperimentScheduler",
    "ExperimentStatus",
    "FaultConfig",
    "FaultType",
    "Observation",
    "ObservationContext",
    "ObservationHarness",
    "ObservationPoint",
    "PredicatePoint",
    "RestabilizeBudgetPoint",
    "TokenCensusPoint",
    "VacancyPoint",
    "WINDOW_TYPES",
    "build_campaign_report",
    "default_points",
    "execute_experiment",
    "load_campaign_spec",
    "parse_fault_flag",
    "persist_experiment",
    "render_campaign_report",
    "resilience_test",
    "run_campaign",
    "run_experiment",
]
