"""Typed fault experiments: the declarative layer over :mod:`repro.runtime.chaos`.

A :class:`FaultConfig` names *what* should go wrong — one member of the
:class:`FaultType` taxonomy, an onset time, a window duration and a
``severity`` knob — without saying *how*.  :meth:`FaultConfig.compile`
lowers it onto the existing imperative primitives: every fault type maps
to one or more :class:`~repro.runtime.chaos.ChaosOp`\\ s, so everything a
declarative experiment injects replays through the exact machinery the
hand-written scripts (``loss_burst``, ``partition``, ``storm``) already
exercise.

========================  ====================================================
fault type                lowered to
========================  ====================================================
``loss``                  ``loss`` window (Bernoulli p = severity)
``delay``                 ``delay`` window (latency range scaled by severity)
``duplication``           ``duplicate`` window (p = severity)
``reorder``               ``reorder`` window (p = severity)
``partition``             ``partition`` window (ring cut; severity >= 0.5
                          bisects, below cuts a single edge)
``node-crash``            ``crash`` point fault (watchdog restart)
``wedge``                 ``wedge`` point fault (silent hang; watchdog must
                          detect the missing heartbeat)
``cache-corruption``      ``corrupt-state`` / ``corrupt-cache`` point-fault
                          volley (the paper's section-5 transient faults)
========================  ====================================================

Severity is a single 0..1 dial so fault grids can sweep "how hard" the
same way loss sweeps sweep loss rates; per-type parameters (``edges``,
``node``, ``targets``, ``low``/``high``...) override the derived values
when an experiment needs exact control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.chaos import ChaosOp, ring_cut_edges


class FaultType(str, Enum):
    """The declarative fault taxonomy (see the table above)."""

    LOSS = "loss"
    DELAY = "delay"
    DUPLICATION = "duplication"
    REORDER = "reorder"
    PARTITION = "partition"
    NODE_CRASH = "node-crash"
    WEDGE = "wedge"
    CACHE_CORRUPTION = "cache-corruption"

    @classmethod
    def parse(cls, value: "FaultType | str") -> "FaultType":
        """Accept enum members, values, or member names (CLI input)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            pass
        try:
            return cls[str(value).upper().replace("-", "_")]
        except KeyError:
            raise ValueError(
                f"unknown fault type {value!r}; available: "
                f"{', '.join(sorted(m.value for m in cls))}"
            ) from None


#: Fault types that open a transport window (need ``duration > 0``).
WINDOW_TYPES = frozenset({
    FaultType.LOSS, FaultType.DELAY, FaultType.DUPLICATION,
    FaultType.REORDER, FaultType.PARTITION,
})


@dataclass(frozen=True)
class FaultConfig:
    """One declarative fault: ``fault_type`` at ``at`` for ``duration``.

    Parameters
    ----------
    fault_type:
        A :class:`FaultType` (or its string value — CLI / JSON specs).
    at:
        Onset in seconds after boot-stabilization.
    duration:
        Window length for transport faults (ignored by point faults).
    severity:
        0..1 intensity dial; the per-type lowering derives probabilities
        and latency ranges from it (see :meth:`compile`).
    params:
        Per-type overrides (``edges``, ``node``, ``neighbor``, ``targets``,
        ``low``, ``high``, ``jitter``, ``spacing``).
    """

    fault_type: FaultType
    at: float = 0.5
    duration: float = 0.8
    severity: float = 0.5
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fault_type", FaultType.parse(self.fault_type)
        )
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError(
                f"severity must be in [0, 1], got {self.severity}"
            )
        if self.fault_type in WINDOW_TYPES and self.duration <= 0:
            raise ValueError(
                f"{self.fault_type.value} needs a positive duration"
            )

    # -- identity ------------------------------------------------------------
    @property
    def slug(self) -> str:
        """Short grid-cell label (``loss-0.6``, ``partition``)."""
        base = self.fault_type.value
        if self.fault_type in WINDOW_TYPES and self.fault_type is not \
                FaultType.PARTITION:
            return f"{base}-{self.severity:g}"
        return base

    # -- lowering ------------------------------------------------------------
    def compile(self, n: int, seed: int = 0) -> Tuple[ChaosOp, ...]:
        """Lower this fault onto :class:`ChaosOp` primitives for an n-ring.

        Deterministic in ``(self, n, seed)`` — grids replay.
        """
        p = self.params
        ft = self.fault_type
        if ft is FaultType.LOSS:
            return (ChaosOp(self.at, "loss", self.duration,
                            {"p": float(p.get("p", self.severity))}),)
        if ft is FaultType.DELAY:
            low = float(p.get("low", 0.02))
            high = float(p.get("high", low + 0.18 * max(self.severity, 0.1)))
            return (ChaosOp(self.at, "delay", self.duration,
                            {"low": low, "high": high}),)
        if ft is FaultType.DUPLICATION:
            return (ChaosOp(self.at, "duplicate", self.duration,
                            {"p": float(p.get("p", self.severity))}),)
        if ft is FaultType.REORDER:
            return (ChaosOp(self.at, "reorder", self.duration,
                            {"p": float(p.get("p", self.severity)),
                             "jitter": float(p.get("jitter", 0.05))}),)
        if ft is FaultType.PARTITION:
            edges = p.get("edges")
            if edges is None:
                edges = ring_cut_edges(n, bisect=self.severity >= 0.5)
            edges = [tuple(e) for e in edges]
            for src, dst in edges:
                if not (0 <= src < n and 0 <= dst < n):
                    raise ValueError(
                        f"partition edge ({src}, {dst}) outside the "
                        f"{n}-ring"
                    )
            return (ChaosOp(self.at, "partition", self.duration,
                            {"edges": edges}),)
        if ft is FaultType.NODE_CRASH:
            return (ChaosOp(self.at, "crash",
                            params={"node": int(p.get("node", n // 2)) % n}),)
        if ft is FaultType.WEDGE:
            return (ChaosOp(self.at, "wedge",
                            params={"node": int(p.get("node", n // 2)) % n}),)
        # cache-corruption: a volley of transient memory faults.  The
        # default targets reproduce the ``cache_scramble`` script (state
        # of node 1, one cache entry mid-ring, state of node n-1), spaced
        # ``spacing`` seconds apart.
        targets = p.get("targets")
        if targets is None:
            mid = n // 2
            targets = [
                {"node": 1 % n},
                {"node": mid, "neighbor": (mid + 1) % n},
                {"node": (n - 1) % n},
            ]
        spacing = float(p.get("spacing", 0.4))
        ops: List[ChaosOp] = []
        for k, target in enumerate(targets):
            node = int(target["node"]) % n
            when = self.at + k * spacing
            if "neighbor" in target:
                ops.append(ChaosOp(when, "corrupt-cache", params={
                    "node": node, "neighbor": int(target["neighbor"]) % n,
                }))
            else:
                ops.append(ChaosOp(when, "corrupt-state",
                                   params={"node": node}))
        return tuple(ops)

    # -- (de)serialization ---------------------------------------------------
    def to_json(self) -> dict:
        """JSON-able form (campaign specs, cross-process payloads)."""
        return {
            "type": self.fault_type.value,
            "at": self.at,
            "duration": self.duration,
            "severity": self.severity,
            "params": dict(self.params),
        }

    @classmethod
    def from_json(cls, blob: dict) -> "FaultConfig":
        """Inverse of :meth:`to_json`; tolerant of sparse spec files."""
        if "type" not in blob and "fault_type" not in blob:
            raise ValueError(f"fault spec needs a 'type' key: {blob!r}")
        kwargs: Dict[str, Any] = {
            "fault_type": FaultType.parse(
                blob.get("type", blob.get("fault_type"))
            ),
        }
        for key in ("at", "duration", "severity"):
            if key in blob:
                kwargs[key] = float(blob[key])
        if blob.get("params"):
            kwargs["params"] = dict(blob["params"])
        return cls(**kwargs)


def parse_fault_flag(spec: str) -> FaultConfig:
    """Parse a CLI ``--fault`` flag: ``type[:severity[:duration]]``.

    Empty segments keep the defaults (``partition::0.4`` sets only the
    duration).
    """
    parts = spec.split(":")
    kwargs: Dict[str, Any] = {"fault_type": FaultType.parse(parts[0])}
    if len(parts) > 1 and parts[1]:
        kwargs["severity"] = float(parts[1])
    if len(parts) > 2 and parts[2]:
        kwargs["duration"] = float(parts[2])
    if len(parts) > 3:
        raise ValueError(
            f"--fault takes type[:severity[:duration]], got {spec!r}"
        )
    return FaultConfig(**kwargs)


__all__ = [
    "FaultConfig",
    "FaultType",
    "WINDOW_TYPES",
    "parse_fault_flag",
]
