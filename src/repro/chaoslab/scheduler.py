"""Experiment scheduler: campaigns over live rings, sequential or fanned out.

The :class:`ExperimentScheduler` takes a list of
:class:`~repro.chaoslab.experiment.ChaosExperiment`\\ s — typically the
seeds × fault-grid product built by
:func:`repro.chaoslab.campaign.CampaignSpec.experiments` — and runs each
to a verdict.  ``workers=1`` runs cells sequentially in-process (each
cell is its own ``asyncio.run``, so rings never share a loop);
``workers>1`` fans cells across the same process pool the Monte-Carlo
sweeps use (:func:`repro.experiments.parallel.run_tasks_parallel`).

Cross-process payloads are the experiments' JSON forms, and results come
back as JSON too — observation points are live callables and cannot
cross a pickle boundary, so parallel runs always use the default point
panel.  Pass custom ``points`` only with ``workers=1``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.chaoslab.experiment import (
    ChaosExperiment,
    ExperimentResult,
    run_experiment,
)
from repro.chaoslab.observe import ObservationPoint
from repro.experiments.parallel import run_tasks_parallel

#: ``on_progress(index, result, done, total)`` — completion order.
OnProgress = Callable[[int, ExperimentResult, int, int], None]


def _experiment_worker(payload: dict) -> dict:
    """Pool worker: run one JSON-encoded experiment, return its JSON result.

    Module-level so it pickles into spawn-based pools.
    """
    experiment = ChaosExperiment.from_json(payload)
    return run_experiment(experiment).to_json()


class ExperimentScheduler:
    """Drives a batch of experiments to completion."""

    def __init__(
        self,
        workers: int = 1,
        points: Optional[List[ObservationPoint]] = None,
        on_progress: Optional[OnProgress] = None,
    ):
        if workers > 1 and points is not None:
            raise ValueError(
                "custom observation points cannot cross the process "
                "boundary; use workers=1 or the default panel"
            )
        self.workers = workers
        self.points = points
        self.on_progress = on_progress

    def run(
        self, experiments: List[ChaosExperiment]
    ) -> List[ExperimentResult]:
        """Run every experiment; results in input order."""
        experiments = list(experiments)
        if self.workers == 1:
            return self._run_sequential(experiments)
        return self._run_parallel(experiments)

    # -- strategies -----------------------------------------------------------
    def _run_sequential(
        self, experiments: List[ChaosExperiment]
    ) -> List[ExperimentResult]:
        results: List[ExperimentResult] = []
        total = len(experiments)
        for k, experiment in enumerate(experiments):
            result = run_experiment(experiment, points=self.points)
            results.append(result)
            if self.on_progress is not None:
                self.on_progress(k, result, k + 1, total)
        return results

    def _run_parallel(
        self, experiments: List[ChaosExperiment]
    ) -> List[ExperimentResult]:
        payloads = [e.to_json() for e in experiments]
        decoded: dict = {}

        def on_result(index: int, blob: dict, done: int, total: int) -> None:
            result = ExperimentResult.from_json(blob)
            decoded[index] = result
            if self.on_progress is not None:
                self.on_progress(index, result, done, total)

        blobs = run_tasks_parallel(
            _experiment_worker, payloads,
            workers=self.workers, on_result=on_result,
        )
        results = []
        for index, blob in enumerate(blobs):
            result = decoded.get(index)
            if result is None:
                result = ExperimentResult.from_json(blob)
            results.append(result)
            # Mirror the worker-side status onto the caller's experiment
            # object so its lifecycle is observable here too.
            experiments[index].status = result.status
        return results


__all__ = ["ExperimentScheduler", "OnProgress", "_experiment_worker"]
