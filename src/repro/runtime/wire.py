"""Wire formats for live CST rings: versioned JSON and a packed binary fastpath.

The DES layer passes ``(sender, state)`` tuples by reference; a live
deployment has to serialize them.  Two formats share one wire:

* **JSON (v1)** — one self-delimiting JSON object per datagram.  Slow but
  self-describing; the debugging format and the compatibility floor.
* **Binary (v2)** — a fixed-width struct header (version, ring id, source,
  destination, sequence number) followed by the algorithm's *packed* local
  state: the exact integer word the message-passing fastpath engine
  consumes (``(x << 2) | (rts << 1) | tra`` for SSRmin, the bare counter
  for Dijkstra — see :mod:`repro.messagepassing.fastpath.codecs`).  A
  received frame decodes with one ``struct.unpack`` plus one interned
  table lookup; no dict materializes on the hot path.

Frames of either format can be **coalesced** into one batch datagram
(magic byte + length-prefixed frames); the UDP transports use this to
amortize syscalls when many messages leave in the same event-loop tick.

Every decoder *sniffs* the format from the first byte — ``{`` (JSON),
the binary version byte, or the batch magic — so a binary-speaking node
receiving a JSON frame (or vice versa) keeps working: the frame decodes,
a per-peer fallback is recorded, and the :class:`Wire`'s ``on_fallback``
hook lets the supervisor log a structured incident.  Version *negotiation*
is therefore passive and per-peer, exactly what a self-stabilizing ring
wants during a rolling upgrade.

A decode failure raises :class:`WireError` rather than crashing the node:
a self-stabilizing server treats a malformed datagram exactly like a lost
one (the periodic timer re-sends state anyway).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

#: JSON wire schema version (v1); unchanged since PR 4.
WIRE_VERSION = 1
#: Binary wire schema version (v2): the packed-word fastpath format.
BINARY_WIRE_VERSION = 2
#: First byte of a batch datagram (coalesced frames).  Distinct from both
#: ``ord("{")`` (JSON) and :data:`BINARY_WIRE_VERSION`.
BATCH_MAGIC = 0xBB

#: Binary frame header: version, ring_id, src, dst, seq, packed word.
#: Network byte order, 19 bytes total — small enough that thousands of
#: frames coalesce into one datagram under the 64 KiB UDP ceiling.
BINARY_HEADER = struct.Struct("!BHHHIQ")

#: Largest number of frames one batch datagram may carry (keeps even
#: JSON-frame batches comfortably under the UDP datagram ceiling).
MAX_BATCH_FRAMES = 512

_JSON_OPEN = ord("{")
_LEN_PREFIX = struct.Struct("!H")


class WireError(ValueError):
    """A datagram that does not parse as a CST state message."""


def restore_state(value: Any) -> Any:
    """JSON round-trip normalization: lists back to (nested) tuples."""
    if isinstance(value, list):
        return tuple(restore_state(v) for v in value)
    return value


# -- v1 JSON (module-level API kept for compatibility) ------------------------

def encode_message(sender: int, state: Any) -> bytes:
    """Serialize ``<state, q>`` from ``sender`` into one v1 JSON datagram."""
    return json.dumps(
        {"v": WIRE_VERSION, "s": sender, "q": state}, separators=(",", ":")
    ).encode("utf-8")


def decode_message(data: bytes) -> Tuple[int, Any]:
    """Parse a JSON datagram back into ``(sender, state)``.

    Raises
    ------
    WireError
        On malformed JSON, a wrong schema version, or missing fields.
    """
    _, sender, _, state = parse_json_frame(data)
    return sender, state


def parse_json_frame(data: bytes) -> Tuple[int, int, Optional[int], Any]:
    """Parse one JSON frame into ``(ring_id, src, dst, state)``.

    ``ring_id`` defaults to 0 and ``dst`` to ``None`` for pre-fleet v1
    frames that carry neither field.
    """
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable datagram: {exc}") from None
    if not isinstance(obj, dict) or obj.get("v") != WIRE_VERSION:
        raise WireError(f"unknown wire version in {obj!r}")
    try:
        sender = int(obj["s"])
    except (KeyError, TypeError, ValueError):
        raise WireError(f"missing/invalid sender in {obj!r}") from None
    if "q" not in obj:
        raise WireError(f"missing state in {obj!r}")
    try:
        ring_id = int(obj.get("r", 0))
        dst = int(obj["d"]) if "d" in obj else None
    except (TypeError, ValueError):
        raise WireError(f"invalid ring/destination in {obj!r}") from None
    return ring_id, sender, dst, restore_state(obj["q"])


def json_frame(src: int, dst: int, state: Any, ring_id: int = 0) -> bytes:
    """One fleet-addressed JSON frame (v1 plus ``r``/``d`` routing fields)."""
    return json.dumps(
        {"v": WIRE_VERSION, "r": ring_id, "s": src, "d": dst, "q": state},
        separators=(",", ":"),
    ).encode("utf-8")


# -- v2 binary ----------------------------------------------------------------

def binary_frame(
    src: int, dst: int, seq: int, word: int, ring_id: int = 0
) -> bytes:
    """One packed binary frame; ``word`` is the MPCodec-packed local state."""
    return BINARY_HEADER.pack(
        BINARY_WIRE_VERSION, ring_id, src, dst, seq & 0xFFFFFFFF, word
    )


def parse_binary_header(data: bytes) -> Tuple[int, int, int, int, int]:
    """Parse one binary frame into ``(ring_id, src, dst, seq, word)``.

    Codec-free: callers that need the native state run the word through
    their ring's codec afterwards (the fleet mux resolves the ring first).
    """
    if len(data) != BINARY_HEADER.size:
        raise WireError(
            f"binary frame length {len(data)} != {BINARY_HEADER.size}"
        )
    version, ring_id, src, dst, seq, word = BINARY_HEADER.unpack(data)
    if version != BINARY_WIRE_VERSION:
        raise WireError(f"unknown binary wire version {version}")
    return ring_id, src, dst, seq, word


def frame_format(data: bytes) -> str:
    """Sniff a single frame's format from its first byte."""
    if not data:
        raise WireError("empty datagram")
    lead = data[0]
    if lead == _JSON_OPEN:
        return "json"
    if lead == BINARY_WIRE_VERSION:
        return "binary"
    raise WireError(f"unrecognized frame lead byte 0x{lead:02x}")


# -- batching -----------------------------------------------------------------

def pack_batch(frames: Sequence[bytes]) -> bytes:
    """Coalesce frames into one datagram (single frames pass through raw)."""
    if not frames:
        raise ValueError("cannot pack an empty batch")
    if len(frames) == 1:
        return frames[0]
    if len(frames) > MAX_BATCH_FRAMES:
        raise ValueError(
            f"batch of {len(frames)} frames exceeds {MAX_BATCH_FRAMES}"
        )
    parts = [bytes([BATCH_MAGIC])]
    for frame in frames:
        parts.append(_LEN_PREFIX.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def split_frames(data: bytes) -> Iterator[bytes]:
    """Yield the individual frames of a datagram (batch or single)."""
    if not data:
        raise WireError("empty datagram")
    if data[0] != BATCH_MAGIC:
        yield data
        return
    offset, end = 1, len(data)
    while offset < end:
        if offset + _LEN_PREFIX.size > end:
            raise WireError("truncated batch length prefix")
        (length,) = _LEN_PREFIX.unpack_from(data, offset)
        offset += _LEN_PREFIX.size
        if offset + length > end:
            raise WireError("truncated batch frame")
        yield data[offset:offset + length]
        offset += length


# -- the per-ring wire object --------------------------------------------------

class Wire:
    """One ring's serializer: *speaks* one format, *decodes* both.

    Parameters
    ----------
    format:
        ``"json"`` or ``"binary"`` — the format this node emits.
    codec:
        The algorithm's :class:`~repro.messagepassing.fastpath.codecs.
        MPCodec`.  Required to speak binary; optional (but recommended) for
        JSON speakers so they can still *decode* binary frames from
        upgraded peers.
    ring_id:
        Fleet ring id stamped into every frame; frames from other rings
        are rejected as garbage (the fleet mux routes them earlier).
    on_fallback:
        ``on_fallback(peer, received_format)`` fired the first time each
        peer is seen speaking the other format — the supervisor's
        structured-incident hook.
    """

    def __init__(
        self,
        format: str = "json",
        codec: Optional[Any] = None,
        ring_id: int = 0,
        on_fallback: Optional[Callable[[int, str], None]] = None,
    ):
        if format not in ("json", "binary"):
            raise ValueError(f"unknown wire format {format!r} (json, binary)")
        if format == "binary" and codec is None:
            raise ValueError(
                "binary wire needs a packed MPCodec (algorithm.mp_codec())"
            )
        self.format = format
        self.codec = codec
        self.ring_id = ring_id
        self.on_fallback = on_fallback
        #: Packed-word domain bound (exclusive) when the codec declares one.
        self.packed_bound: Optional[int] = getattr(
            codec, "packed_bound", None
        )
        self._seq: Dict[int, int] = {}
        # -- statistics ------------------------------------------------------
        self.encoded = 0
        self.decoded = 0
        #: Binary speaker forced to emit JSON for an out-of-domain state.
        self.encode_fallbacks = 0
        #: Frames decoded in the *other* format (per-peer negotiation).
        self.fallback_decodes = 0
        #: ``peer -> format`` for peers seen speaking the other format.
        self.peer_fallbacks: Dict[int, str] = {}

    # -- encode ----------------------------------------------------------------
    def next_seq(self, src: int) -> int:
        """Next per-source sequence number (stamped into binary frames)."""
        seq = self._seq.get(src, 0)
        self._seq[src] = seq + 1
        return seq

    def encode(self, src: int, dst: int, state: Any) -> bytes:
        """Serialize one ``<state, q>`` message in the spoken format."""
        self.encoded += 1
        if self.format == "binary":
            word = self.codec.try_pack(state)
            if word is not None:
                return binary_frame(
                    src, dst, self.next_seq(src), word, self.ring_id
                )
            # Out-of-domain state (an injected fault value the packing
            # does not cover): fall back to self-describing JSON rather
            # than dropping the message — peers sniff per frame anyway.
            self.encode_fallbacks += 1
        return json_frame(src, dst, state, self.ring_id)

    # -- decode ----------------------------------------------------------------
    def state_from_word(self, word: int) -> Any:
        """Bound-check and unpack one wire word to the native local state."""
        if self.codec is None:
            raise WireError("binary frame but this ring has no packed codec")
        if self.packed_bound is not None and not 0 <= word < self.packed_bound:
            raise WireError(
                f"packed word {word} outside domain [0, {self.packed_bound})"
            )
        return self.codec.unpack(word)

    def _note_format(self, src: int, fmt: str) -> None:
        if fmt == self.format:
            return
        self.fallback_decodes += 1
        if src not in self.peer_fallbacks:
            self.peer_fallbacks[src] = fmt
            if self.on_fallback is not None:
                self.on_fallback(src, fmt)

    def decode(self, data: bytes) -> List[Tuple[int, Optional[int], Any]]:
        """Parse one datagram into ``[(src, dst, state), ...]``.

        Handles batch datagrams, sniffs each frame's format, rejects
        frames stamped with a foreign ring id, and records per-peer
        format fallbacks.  Raises :class:`WireError` for garbage — the
        caller treats the whole datagram as lost.
        """
        frames: List[Tuple[int, Optional[int], Any]] = []
        for frame in split_frames(data):
            fmt = frame_format(frame)
            if fmt == "binary":
                ring_id, src, dst, _seq, word = parse_binary_header(frame)
                state = self.state_from_word(word)
            else:
                ring_id, src, dst, state = parse_json_frame(frame)
            if ring_id != self.ring_id:
                raise WireError(
                    f"frame for ring {ring_id} on ring {self.ring_id}"
                )
            self._note_format(src, fmt)
            self.decoded += 1
            frames.append((src, dst, state))
        return frames

    # -- statistics ------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters for the run report (per-peer fallbacks included)."""
        return {
            "format": self.format,
            "encoded": self.encoded,
            "decoded": self.decoded,
            "encode_fallbacks": self.encode_fallbacks,
            "fallback_decodes": self.fallback_decodes,
            "fallback_peers": dict(self.peer_fallbacks),
        }


def make_wire(
    format: str,
    algorithm: Optional[Any] = None,
    ring_id: int = 0,
    on_fallback: Optional[Callable[[int, str], None]] = None,
) -> Wire:
    """Build a :class:`Wire` for an algorithm instance.

    The codec comes from ``algorithm.mp_codec()`` when the algorithm has a
    packed encoding; JSON wires work without one (they just cannot decode
    binary frames from upgraded peers), binary wires require it.
    """
    codec = None
    if algorithm is not None:
        probe = getattr(algorithm, "mp_codec", None)
        codec = probe() if callable(probe) else None
    if format == "binary" and codec is None:
        raise ValueError(
            f"{type(algorithm).__name__ if algorithm is not None else 'ring'}"
            " has no packed MPCodec; use the json wire"
        )
    return Wire(format, codec=codec, ring_id=ring_id, on_fallback=on_fallback)
