"""Wire format for live CST rings: one datagram per ``<state, q>`` message.

The DES layer passes ``(sender, state)`` tuples by reference; a live
deployment has to serialize them.  Messages are single JSON objects —
small (a ring state is a few ints), self-delimiting as UDP datagrams, and
line-delimited on stream-ish transports.  Local states survive the round
trip structurally: SSRmin's ``(x, rts, tra)`` tuples become JSON arrays and
are restored to tuples on decode (the cache/guard layer compares states
with ``==``, so list/tuple confusion would silently break coherence).

A decode failure raises :class:`WireError` rather than crashing the node:
a self-stabilizing server treats a malformed datagram exactly like a lost
one (the periodic timer re-sends state anyway).
"""

from __future__ import annotations

import json
from typing import Any, Tuple

#: Wire schema version; a node ignores datagrams from other versions.
WIRE_VERSION = 1


class WireError(ValueError):
    """A datagram that does not parse as a CST state message."""


def restore_state(value: Any) -> Any:
    """JSON round-trip normalization: lists back to (nested) tuples."""
    if isinstance(value, list):
        return tuple(restore_state(v) for v in value)
    return value


def encode_message(sender: int, state: Any) -> bytes:
    """Serialize ``<state, q>`` from ``sender`` into one datagram."""
    return json.dumps(
        {"v": WIRE_VERSION, "s": sender, "q": state}, separators=(",", ":")
    ).encode("utf-8")


def decode_message(data: bytes) -> Tuple[int, Any]:
    """Parse a datagram back into ``(sender, state)``.

    Raises
    ------
    WireError
        On malformed JSON, a wrong schema version, or missing fields.
    """
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable datagram: {exc}") from None
    if not isinstance(obj, dict) or obj.get("v") != WIRE_VERSION:
        raise WireError(f"unknown wire version in {obj!r}")
    try:
        sender = int(obj["s"])
    except (KeyError, TypeError, ValueError):
        raise WireError(f"missing/invalid sender in {obj!r}") from None
    if "q" not in obj:
        raise WireError(f"missing state in {obj!r}")
    return sender, restore_state(obj["q"])
