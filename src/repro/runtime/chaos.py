"""Scripted chaos for live rings: timed fault windows over a ChaosTransport.

A :class:`ChaosScript` is a sorted list of :class:`ChaosOp`\\ s, each
opening a fault window (``loss``, ``delay``, ``duplicate``, ``reorder``,
``partition``) for ``duration`` seconds or firing an instantaneous fault
(``crash``, ``wedge``, ``corrupt-state``, ``corrupt-cache`` — the same
faults :mod:`repro.faults.injection` injects into the DES models, here
executed against live nodes with values pre-drawn from the script's seeded
RNG so runs replay).  The :class:`ChaosDirector` executes a script against
a running :class:`~repro.runtime.supervisor.RingSupervisor`, notifying the
health monitor at every disturbance boundary so "time to re-stabilize"
is measured from the instant the last fault stops biting.

Named scripts live in :data:`SCRIPTS`; ``repro live chaos --script NAME``
looks them up.  Each factory takes the ring size and a seed, so the same
name scales to any ``n``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.transport import ChaosTransport

#: Fault kinds that open a transport window for ``duration`` seconds.
WINDOW_KINDS = ("loss", "delay", "duplicate", "reorder", "partition")
#: Instantaneous fault kinds executed against the supervisor.
POINT_KINDS = ("crash", "wedge", "corrupt-state", "corrupt-cache")


@dataclass(frozen=True)
class ChaosOp:
    """One scripted fault: at ``at`` seconds, do ``kind`` with ``params``."""

    at: float
    kind: str
    duration: float = 0.0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_KINDS + POINT_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}")
        if self.kind in WINDOW_KINDS and self.duration <= 0:
            raise ValueError(f"{self.kind} op needs a positive duration")

    def to_json(self) -> dict:
        """JSON-able form (embedded in run manifests)."""
        return {"at": self.at, "kind": self.kind,
                "duration": self.duration, "params": dict(self.params)}


@dataclass(frozen=True)
class ChaosScript:
    """A named, replayable fault schedule."""

    name: str
    ops: Tuple[ChaosOp, ...]
    #: Extra run-on time after the last op ends, so the ring has room to
    #: demonstrate re-stabilization before the run is judged.
    settle: float = 3.0

    @property
    def last_disturbance(self) -> float:
        """When the final fault stops biting (window end / point time)."""
        return max((op.at + op.duration for op in self.ops), default=0.0)

    @property
    def duration(self) -> float:
        return self.last_disturbance + self.settle

    def to_json(self) -> dict:
        """JSON-able form (embedded in run manifests)."""
        return {"name": self.name, "settle": self.settle,
                "ops": [op.to_json() for op in self.ops]}


class ChaosDirector:
    """Executes one script against a supervisor's transport and nodes."""

    def __init__(self, script: ChaosScript, supervisor) -> None:
        self.script = script
        self.supervisor = supervisor
        self.applied: List[ChaosOp] = []

    async def run(self) -> None:
        """Play the script to completion (relative to the run clock)."""
        sup = self.supervisor
        for op in sorted(self.script.ops, key=lambda o: o.at):
            delay = op.at - sup.clock()
            if delay > 0:
                await asyncio.sleep(delay)
            self._apply(op)
            self.applied.append(op)
        remaining = self.script.last_disturbance - sup.clock()
        if remaining > 0:
            await asyncio.sleep(remaining)
        settle = self.script.settle
        if settle > 0:
            await asyncio.sleep(settle)

    # -- op application ------------------------------------------------------
    def _apply(self, op: ChaosOp) -> None:
        sup = self.supervisor
        sup.publish("chaos", op=op.kind, duration=op.duration,
                    **{k: v for k, v in op.params.items()})
        if op.kind in POINT_KINDS:
            self._apply_point(op)
            return
        chaos = sup.chaos
        if chaos is None:
            raise RuntimeError(
                "script has transport fault windows but the supervisor was "
                "built without a ChaosTransport (pass chaos=True)"
            )
        revert = self._open_window(chaos, op)
        sup.health.note_disturbance(f"{op.kind}@{op.at:.2f}s")
        sup.health.window_opened()
        loop = asyncio.get_running_loop()

        def close_window() -> None:
            revert()
            # The fault stopped biting: re-stabilization is measured from
            # here (a window's epoch would otherwise blame stabilization
            # latency on the window length).
            sup.health.window_healed()
            sup.health.note_disturbance(f"{op.kind}-healed@{sup.clock():.2f}s")
            sup.publish("chaos_end", op=op.kind)

        sup.track_handle(loop.call_later(op.duration, close_window))

    def _open_window(
        self, chaos: ChaosTransport, op: ChaosOp
    ) -> Callable[[], None]:
        params = op.params
        if op.kind == "loss":
            prev = chaos.loss_p
            chaos.loss_p = float(params.get("p", 0.5))
            return lambda: setattr(chaos, "loss_p", prev)
        if op.kind == "delay":
            prev_range = chaos.delay_range
            chaos.delay_range = (
                float(params.get("low", 0.05)), float(params.get("high", 0.2))
            )
            return lambda: setattr(chaos, "delay_range", prev_range)
        if op.kind == "duplicate":
            prev_p = chaos.duplicate_p
            chaos.duplicate_p = float(params.get("p", 0.3))
            return lambda: setattr(chaos, "duplicate_p", prev_p)
        if op.kind == "reorder":
            prev_p, prev_j = chaos.reorder_p, chaos.reorder_jitter
            chaos.reorder_p = float(params.get("p", 0.3))
            chaos.reorder_jitter = float(params.get("jitter", 0.05))

            def revert_reorder() -> None:
                chaos.reorder_p, chaos.reorder_jitter = prev_p, prev_j

            return revert_reorder
        # partition
        edges = [tuple(e) for e in params["edges"]]
        chaos.cut(edges)
        return lambda: chaos.heal(edges)

    def _apply_point(self, op: ChaosOp) -> None:
        sup = self.supervisor
        params = op.params
        if op.kind == "crash":
            sup.kill(int(params["node"]))
        elif op.kind == "wedge":
            sup.wedge(int(params["node"]))
        elif op.kind == "corrupt-state":
            sup.corrupt_state(int(params["node"]), params.get("value"))
        else:  # corrupt-cache
            sup.corrupt_cache(
                int(params["node"]), int(params["neighbor"]),
                params.get("value"),
            )


# -- named scripts -----------------------------------------------------------

def loss_burst(n: int, seed: int = 0) -> ChaosScript:
    """Two heavy Bernoulli-loss windows across the whole ring.

    The canonical Theorem 4 stressor: messages vanish uniformly at random,
    caches go stale, the timers must repair them — twice, with a calm gap
    in between to show re-stabilization is repeatable.
    """
    return ChaosScript(
        name="loss_burst",
        ops=(
            ChaosOp(at=0.6, kind="loss", duration=1.0, params={"p": 0.6}),
            ChaosOp(at=2.4, kind="loss", duration=0.8, params={"p": 0.4}),
        ),
    )


def ring_cut_edges(n: int, bisect: bool = True) -> List[Tuple[int, int]]:
    """Directed ring edges to cut: ``(0, 1)`` plus the opposite edge.

    Stays inside the ring for any ``n``: a 1-ring has no edges to cut
    (an empty cut is a valid — trivially healing — window), and
    duplicate edges collapse for tiny rings.
    """
    if n < 2:
        return []
    edges = [(0, 1)]
    if bisect:
        opposite = (n // 2, (n // 2 + 1) % n)
        if opposite not in edges:
            edges.append(opposite)
    return edges


def partition(n: int, seed: int = 0) -> ChaosScript:
    """Cut two opposite ring edges (a true bisection for even ``n``)."""
    return ChaosScript(
        name="partition",
        ops=(
            ChaosOp(at=0.6, kind="partition", duration=1.2,
                    params={"edges": ring_cut_edges(n)}),
        ),
    )


def dup_reorder(n: int, seed: int = 0) -> ChaosScript:
    """Duplication plus reordering jitter — the unsupportive-channel mix."""
    return ChaosScript(
        name="dup_reorder",
        ops=(
            ChaosOp(at=0.5, kind="duplicate", duration=1.2, params={"p": 0.4}),
            ChaosOp(at=0.9, kind="reorder", duration=1.0,
                    params={"p": 0.35, "jitter": 0.04}),
        ),
    )


def crash_restart(n: int, seed: int = 0) -> ChaosScript:
    """Kill one node mid-run; the watchdog must restart and re-integrate it."""
    return ChaosScript(
        name="crash_restart",
        ops=(ChaosOp(at=0.8, kind="crash", params={"node": n // 2}),),
        settle=4.0,
    )


def cache_scramble(n: int, seed: int = 0) -> ChaosScript:
    """Transient state + cache corruption (the paper's section-5 faults).

    Values are left ``None`` in the ops; the supervisor draws them from
    its seeded fault RNG at apply time, which keeps the script shape
    independent of the algorithm's state domain.
    """
    mid = n // 2
    return ChaosScript(
        name="cache_scramble",
        ops=(
            ChaosOp(at=0.5, kind="corrupt-state", params={"node": 1 % n}),
            ChaosOp(at=0.9, kind="corrupt-cache",
                    params={"node": mid, "neighbor": (mid + 1) % n}),
            ChaosOp(at=1.3, kind="corrupt-state", params={"node": n - 1}),
        ),
    )


def storm(n: int, seed: int = 0) -> ChaosScript:
    """Everything at once: loss + delay + a partition + a crash."""
    return ChaosScript(
        name="storm",
        ops=(
            ChaosOp(at=0.4, kind="loss", duration=1.4, params={"p": 0.35}),
            ChaosOp(at=0.7, kind="delay", duration=1.2,
                    params={"low": 0.02, "high": 0.08}),
            ChaosOp(at=1.0, kind="partition", duration=0.8,
                    params={"edges": ring_cut_edges(n, bisect=False)}),
            ChaosOp(at=1.5, kind="crash", params={"node": n - 1}),
        ),
        settle=4.0,
    )


#: ``name -> factory(n, seed)`` for the CLI and tests.
SCRIPTS: Dict[str, Callable[..., ChaosScript]] = {
    "loss_burst": loss_burst,
    "partition": partition,
    "dup_reorder": dup_reorder,
    "crash_restart": crash_restart,
    "cache_scramble": cache_scramble,
    "storm": storm,
}


def build_script(name: str, n: int, seed: int = 0) -> ChaosScript:
    """Look up and instantiate a named script for an ``n``-ring."""
    try:
        factory = SCRIPTS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos script {name!r}; available: "
            f"{', '.join(sorted(SCRIPTS))}"
        ) from None
    return factory(n, seed)
