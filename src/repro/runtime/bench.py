"""Throughput benchmark for the live runtime (wire formats + fleet).

Three sections, written to ``BENCH_perf_runtime.json``
(schema ``repro-bench-runtime/1``):

* **codec** — pure serialization: encode+decode round trips per second
  for the JSON wire vs the packed binary wire, no sockets.
* **wire_path** — the end-to-end loopback UDP path: messages pumped
  node→node through a real :class:`~repro.runtime.transport.UdpTransport`
  under three configurations — JSON datagram-per-message (the pre-fleet
  hot path), binary datagram-per-message, and binary with send-side
  batching (the fleet fastpath).  The CI gate compares the last against
  the first: the fastpath must deliver ``--min-wire-speedup`` times the
  messages per second.
* **fleet_grid** — rings × nodes aggregate delivered msgs/sec through
  the shared-socket mux, each cell a real
  :func:`~repro.runtime.fleet.run_fleet` deployment (timer-driven CST
  traffic, binary wire, batching on).

Delivery is measured, not assumed: UDP under burst pressure may drop,
so every pump reports ``sent`` and ``delivered`` and rates are computed
over *delivered* messages.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.ssrmin import SSRmin
from repro.runtime.fleet import default_specs, run_fleet
from repro.runtime.harness import loop_name
from repro.runtime.transport import UdpTransport
from repro.runtime.wire import Wire, make_wire

#: Canonical benchmark schema id.
BENCH_SCHEMA = "repro-bench-runtime/1"

#: Messages per wire-path pump (full / quick).
WIRE_MESSAGES = 60_000
WIRE_MESSAGES_QUICK = 8_000
#: Codec round trips (full / quick).
CODEC_MESSAGES = 200_000
CODEC_MESSAGES_QUICK = 20_000
#: Posts between event-loop yields — also the attainable batch size.
PUMP_WINDOW = 64
#: Sender backpressure: max messages in flight before yielding until the
#: receiver catches up (keeps the kernel socket buffer from overflowing).
MAX_INFLIGHT = 256

#: rings × n cells for the fleet curve (full / quick).
FLEET_GRID = ((1, 4), (2, 4), (4, 4), (8, 4), (1, 8), (2, 8), (4, 8))
FLEET_GRID_QUICK = ((1, 4), (4, 4))


def _bench_states(algorithm) -> List[Any]:
    """Every packed-domain state, as native tuples (cycled by the pumps)."""
    codec = algorithm.mp_codec()
    return [codec.unpack(w) for w in range(codec.packed_bound)]


# -- section 1: pure codec ----------------------------------------------------

def _codec_rate(wire: Wire, states: List[Any], messages: int) -> float:
    encode = wire.encode
    decode = wire.decode
    k = len(states)
    t0 = time.perf_counter()
    for i in range(messages):
        decode(encode(0, 1, states[i % k]))
    return messages / (time.perf_counter() - t0)


def bench_codec(messages: int) -> Dict[str, Any]:
    """Encode+decode round trips per second, JSON vs binary."""
    algorithm = SSRmin(8, 9)
    states = _bench_states(algorithm)
    json_rate = _codec_rate(
        make_wire("json", algorithm=algorithm), states, messages
    )
    binary_rate = _codec_rate(
        make_wire("binary", algorithm=algorithm), states, messages
    )
    return {
        "messages": messages,
        "json_roundtrips_per_sec": json_rate,
        "binary_roundtrips_per_sec": binary_rate,
        "speedup": binary_rate / json_rate if json_rate > 0 else 0.0,
    }


# -- section 2: the loopback UDP path ----------------------------------------

async def _pump(
    fmt: str, batch: bool, messages: int, states: List[Any]
) -> Dict[str, Any]:
    algorithm = SSRmin(8, 9)
    transport = UdpTransport((0, 1), batch=batch)
    transport.set_wire(make_wire(fmt, algorithm=algorithm))
    received = 0
    done = asyncio.Event()

    def deliver(sender: int, state: Any) -> None:
        nonlocal received
        received += 1
        if received >= messages:
            done.set()

    transport.register(1, deliver)
    await transport.start()
    k = len(states)
    post = transport.post
    t0 = time.perf_counter()
    sent = 0
    while sent < messages:
        burst = min(PUMP_WINDOW, messages - sent)
        for i in range(burst):
            post(0, 1, states[(sent + i) % k])
        sent += burst
        # Yield so batched frames flush and the receiver drains, then
        # apply backpressure: an open-loop sender overflows the kernel
        # socket buffer and "throughput" would just measure the drop
        # rate.  Capping in-flight messages measures the *sustainable*
        # end-to-end rate instead.
        await asyncio.sleep(0)
        while sent - received > MAX_INFLIGHT:
            await asyncio.sleep(0)
    # Drain stragglers; stop when delivery stalls (residual UDP drops).
    while received < sent:
        before = received
        await asyncio.sleep(0.05)
        if received == before:
            break
    elapsed = time.perf_counter() - t0
    await transport.close()
    return {
        "format": fmt,
        "batched": batch,
        "sent": sent,
        "delivered": received,
        "datagrams_out": transport.datagrams_out,
        "elapsed": elapsed,
        "msgs_per_sec": received / elapsed if elapsed > 0 else 0.0,
    }


def bench_wire_path(messages: int) -> Dict[str, Any]:
    """JSON vs binary vs binary+batched over a real localhost UDP socket."""
    states = _bench_states(SSRmin(8, 9))
    json_plain = asyncio.run(_pump("json", False, messages, states))
    binary_plain = asyncio.run(_pump("binary", False, messages, states))
    binary_batched = asyncio.run(_pump("binary", True, messages, states))
    base = json_plain["msgs_per_sec"]
    return {
        "messages": messages,
        "json": json_plain,
        "binary": binary_plain,
        "binary_batched": binary_batched,
        # The headline gate: fleet fastpath vs the pre-fleet hot path.
        "speedup": (
            binary_batched["msgs_per_sec"] / base if base > 0 else 0.0
        ),
        "speedup_unbatched": (
            binary_plain["msgs_per_sec"] / base if base > 0 else 0.0
        ),
    }


# -- section 3: the fleet curve ----------------------------------------------

def bench_fleet_grid(
    grid: Tuple[Tuple[int, int], ...], duration: float
) -> List[Dict[str, Any]]:
    """Aggregate delivered msgs/sec for each (rings, n) mux deployment."""
    cells: List[Dict[str, Any]] = []
    for rings, n in grid:
        specs = default_specs(
            rings, n=n, wire="binary", timer_interval=0.02
        )
        report = run_fleet(
            specs, duration=duration, transport="mux-udp", sockets=2,
        )
        cells.append({
            "rings": rings,
            "n": n,
            "nodes_total": rings * n,
            "stabilized_rings": report["stabilized_rings"],
            "delivered_total": report["delivered_total"],
            "wall_clock": report["wall_clock"],
            "delivered_per_sec": report["delivered_per_sec"],
            "mux_datagrams_out": (report.get("mux") or {}).get(
                "datagrams_out"
            ),
        })
    return cells


# -- driver -------------------------------------------------------------------

def run_runtime_bench(quick: bool = False) -> Dict[str, Any]:
    """Run all three sections; returns the JSON-able artifact payload."""
    codec_messages = CODEC_MESSAGES_QUICK if quick else CODEC_MESSAGES
    wire_messages = WIRE_MESSAGES_QUICK if quick else WIRE_MESSAGES
    grid = FLEET_GRID_QUICK if quick else FLEET_GRID
    duration = 1.0 if quick else 1.5
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "loop": loop_name(),
        "codec": bench_codec(codec_messages),
        "wire_path": bench_wire_path(wire_messages),
        "fleet_grid": bench_fleet_grid(grid, duration),
    }


def format_report(payload: Dict[str, Any]) -> str:
    """Human-readable summary of a runtime-bench payload."""
    codec = payload["codec"]
    wire = payload["wire_path"]
    lines = [
        f"runtime bench ({'quick' if payload['quick'] else 'full'}, "
        f"loop={payload['loop']})",
        "",
        "codec round trips (encode+decode, no sockets):",
        f"  json   : {codec['json_roundtrips_per_sec']:>12,.0f} msgs/sec",
        f"  binary : {codec['binary_roundtrips_per_sec']:>12,.0f} msgs/sec"
        f"  ({codec['speedup']:.1f}x)",
        "",
        "loopback UDP path (delivered msgs/sec):",
    ]
    for key, label in (
        ("json", "json, datagram/msg  "),
        ("binary", "binary, datagram/msg"),
        ("binary_batched", "binary, batched     "),
    ):
        row = wire[key]
        lines.append(
            f"  {label}: {row['msgs_per_sec']:>12,.0f} msgs/sec  "
            f"({row['delivered']}/{row['sent']} delivered, "
            f"{row['datagrams_out']} datagrams)"
        )
    lines += [
        f"  wire speedup (binary batched vs json): {wire['speedup']:.2f}x",
        "",
        "fleet curve (mux-udp, binary wire, batched):",
        "  rings  n   nodes  stabilized   msgs/sec",
    ]
    for cell in payload["fleet_grid"]:
        lines.append(
            f"  {cell['rings']:>5}  {cell['n']:>2}  {cell['nodes_total']:>5}"
            f"  {cell['stabilized_rings']:>5}/{cell['rings']:<4}"
            f" {cell['delivered_per_sec']:>10,.0f}"
        )
    return "\n".join(lines)


def check_gates(
    payload: Dict[str, Any],
    min_wire_speedup: Optional[float] = None,
) -> List[str]:
    """Gate messages (empty = all gates passed)."""
    failures: List[str] = []
    if min_wire_speedup is not None:
        speedup = payload["wire_path"]["speedup"]
        if speedup < min_wire_speedup:
            failures.append(
                f"wire speedup {speedup:.2f}x below the "
                f"{min_wire_speedup:.2f}x gate"
            )
    unstable = [
        cell for cell in payload["fleet_grid"]
        if cell["stabilized_rings"] < cell["rings"]
    ]
    for cell in unstable:
        failures.append(
            f"fleet cell rings={cell['rings']} n={cell['n']}: only "
            f"{cell['stabilized_rings']}/{cell['rings']} rings stabilized"
        )
    return failures


__all__ = [
    "BENCH_SCHEMA",
    "bench_codec",
    "bench_fleet_grid",
    "bench_wire_path",
    "check_gates",
    "format_report",
    "run_runtime_bench",
]
