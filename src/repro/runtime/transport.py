"""Pluggable datagram transports for the live asyncio ring.

Four implementations share one tiny contract (:class:`Transport`):

* :class:`LoopbackTransport` — in-process delivery through the event loop.
  Every message still round-trips the wire format, so loopback runs
  exercise the exact serialization path UDP uses, just without sockets.
* :class:`UdpTransport` — one UDP datagram socket per node on localhost.
  Ports are OS-assigned (bind to port 0) and collected into a routing
  table, so parallel test runs never collide.  With ``batch=True`` frames
  posted in the same event-loop tick toward the same destination coalesce
  into one datagram (:func:`~repro.runtime.wire.pack_batch`), amortizing
  syscalls under load.
* :class:`MuxUdpTransport` — the fleet transport: N rings multiplexed over
  a small pool of shared sockets.  Frames carry a ``ring_id`` in their
  header; the mux demultiplexes incoming datagrams to per-ring
  :class:`RingView` facades, each of which is a full :class:`Transport`
  a :class:`~repro.runtime.supervisor.RingSupervisor` can own.
* :class:`ChaosTransport` — a decorator over any of the above that
  injects loss, extra delay, duplication, reorder and partitions from a
  seeded RNG; the knobs are mutable so a
  :class:`~repro.runtime.chaos.ChaosScript` can open and close fault
  windows while the ring runs.

Serialization is delegated to a per-transport :class:`~repro.runtime.
wire.Wire` (installed by the supervisor; defaults to JSON).  Per-node
wire overrides (:meth:`Transport.set_wire` with ``node=``) model
mixed-version rings: each node encodes with its own wire while the ring's
default wire decodes everything by sniffing, recording per-peer fallbacks.

Delivery is always *asynchronous with respect to the sender*: a send never
invokes the receiver's handler on the sender's stack (loopback uses
``call_soon``), mirroring real network decoupling and keeping CST's
receive-handler recursion bounded.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.runtime.wire import (
    MAX_BATCH_FRAMES,
    Wire,
    WireError,
    frame_format,
    pack_batch,
    parse_binary_header,
    parse_json_frame,
    split_frames,
)

#: ``deliver(sender, state)`` — a node's ingress callback.
Deliver = Callable[[int, Any], None]


class Transport:
    """Abstract point-to-point datagram transport between node indices."""

    def __init__(self, wire: Optional[Wire] = None) -> None:
        self._receivers: Dict[int, Deliver] = {}
        #: Default serializer (decode side + encode for nodes without an
        #: override).  Supervisors install the real one before boot.
        self.wire: Wire = wire if wire is not None else Wire("json")
        self._node_wires: Dict[int, Wire] = {}
        # -- statistics -----------------------------------------------------
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    # -- wire management -----------------------------------------------------
    def set_wire(self, wire: Wire, node: Optional[int] = None) -> None:
        """Install the ring's serializer, or a per-node encode override.

        ``node=None`` replaces the default wire (used to decode everything
        and to encode for nodes without an override).  ``node=i`` makes
        node ``i`` *speak* a different format — a mixed-version ring.
        """
        if node is None:
            self.wire = wire
        else:
            self._node_wires[node] = wire

    def wire_for(self, src: int) -> Wire:
        """The wire node ``src`` encodes with."""
        return self._node_wires.get(src, self.wire)

    # -- Transport contract --------------------------------------------------
    def register(self, index: int, deliver: Deliver) -> None:
        """Attach (or replace) the ingress callback for ``index``.

        Re-registration is how a restarted node takes over its identity —
        datagrams in flight toward a dead node are delivered to the new
        incarnation or dropped, never to the old object.
        """
        self._receivers[index] = deliver

    def unregister(self, index: int) -> None:
        """Detach ``index``; its datagrams are dropped until re-registered."""
        self._receivers.pop(index, None)

    async def start(self) -> None:
        """Bring the transport up (bind sockets, ...)."""

    def post(self, src: int, dst: int, state: Any) -> None:
        """Fire-and-forget one ``<state, q>`` message (synchronous API).

        Called from CST link ports inside the event loop; implementations
        must not block and must not deliver on the caller's stack.
        """
        raise NotImplementedError

    async def close(self) -> None:
        """Tear the transport down; in-flight messages may be dropped."""

    def stats(self) -> Dict[str, int]:
        """Delivery counters (decorators extend with their own)."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }

    # -- helpers for implementations ---------------------------------------
    def _handoff(self, dst: int, data: bytes) -> None:
        """Decode and deliver a received datagram to the ``dst`` callback."""
        deliver = self._receivers.get(dst)
        if deliver is None:
            self.dropped += 1
            return
        try:
            frames = self.wire.decode(data)
        except WireError:
            # A malformed datagram is treated as lost; the periodic CST
            # timer re-sends the state anyway (self-stabilization absorbs
            # arbitrary channel garbage).
            self.dropped += 1
            return
        for src, frame_dst, state in frames:
            if frame_dst is not None and frame_dst != dst:
                # Misrouted frame inside a batch; count it as lost rather
                # than delivering to the wrong node.
                self.dropped += 1
                continue
            self.delivered += 1
            deliver(src, state)


class LoopbackTransport(Transport):
    """In-process transport: encode, hop through the event loop, decode."""

    def __init__(self, wire: Optional[Wire] = None) -> None:
        super().__init__(wire)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()

    def post(self, src: int, dst: int, state: Any) -> None:
        if self._closed or self._loop is None:
            return
        self.sent += 1
        data = self.wire_for(src).encode(src, dst, state)
        self._loop.call_soon(self._handoff, dst, data)

    async def close(self) -> None:
        self._closed = True


class _NodeDatagramProtocol(asyncio.DatagramProtocol):
    """Receives datagrams for one node index and hands them to the owner."""

    def __init__(self, owner: "UdpTransport", index: int):
        self.owner = owner
        self.index = index

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.owner._handoff(self.index, data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        # ICMP errors (port unreachable during a restart window) are
        # indistinguishable from loss for a self-stabilizing ring.
        pass


class UdpTransport(Transport):
    """One UDP socket per node on ``127.0.0.1``; OS-assigned ports.

    ``bind(i)`` must run (via :meth:`start`) before any ``post`` toward
    ``i`` can route; the supervisor binds every index it boots.

    With ``batch=True``, frames posted within one event-loop tick toward
    the same destination are coalesced into a single datagram — one
    ``sendto`` syscall instead of one per message.  Latency cost is one
    ``call_soon`` hop (microseconds), throughput gain is large once many
    nodes share a tick.
    """

    def __init__(
        self,
        indices: Iterable[int],
        host: str = "127.0.0.1",
        batch: bool = False,
        wire: Optional[Wire] = None,
    ):
        super().__init__(wire)
        self.host = host
        self.indices = tuple(indices)
        self.batch = batch
        self._endpoints: Dict[int, asyncio.DatagramTransport] = {}
        #: ``index -> (host, port)`` routing table, filled at bind time.
        self.routes: Dict[int, Tuple[str, int]] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pending: Dict[Tuple[int, int], List[bytes]] = {}
        self._flush_scheduled = False
        self.datagrams_out = 0
        self._closed = False

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        for i in self.indices:
            if i in self._endpoints:
                continue
            transport, _ = await loop.create_datagram_endpoint(
                lambda i=i: _NodeDatagramProtocol(self, i),
                local_addr=(self.host, 0),
            )
            self._endpoints[i] = transport
            sockname = transport.get_extra_info("sockname")
            self.routes[i] = (self.host, sockname[1])

    def post(self, src: int, dst: int, state: Any) -> None:
        if self._closed:
            return
        endpoint = self._endpoints.get(src)
        route = self.routes.get(dst)
        if endpoint is None or route is None:
            self.dropped += 1
            return
        self.sent += 1
        data = self.wire_for(src).encode(src, dst, state)
        if not self.batch:
            self.datagrams_out += 1
            endpoint.sendto(data, route)
            return
        self._pending.setdefault((src, dst), []).append(data)
        if not self._flush_scheduled and self._loop is not None:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        pending, self._pending = self._pending, {}
        if self._closed:
            return
        for (src, dst), frames in pending.items():
            endpoint = self._endpoints.get(src)
            route = self.routes.get(dst)
            if endpoint is None or route is None:
                self.dropped += len(frames)
                continue
            for i in range(0, len(frames), MAX_BATCH_FRAMES):
                self.datagrams_out += 1
                endpoint.sendto(
                    pack_batch(frames[i:i + MAX_BATCH_FRAMES]), route
                )

    async def close(self) -> None:
        self._closed = True
        self._pending.clear()
        for transport in self._endpoints.values():
            transport.close()
        self._endpoints.clear()
        # Give the loop one tick to run the transports' close callbacks.
        await asyncio.sleep(0)

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        out["datagrams_out"] = self.datagrams_out
        out["batched"] = int(self.batch)
        return out


# -- fleet multiplexing -------------------------------------------------------

class _MuxDatagramProtocol(asyncio.DatagramProtocol):
    """One shared fleet socket; everything routes through the owner."""

    def __init__(self, owner: "MuxUdpTransport"):
        self.owner = owner

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.owner._ingress(data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        pass


class RingView(Transport):
    """One ring's :class:`Transport` facade over a shared fleet mux.

    A supervisor owns a view exactly like it owns a private transport;
    ``start``/``close`` acquire and release the underlying mux with
    refcounting, so the last ring out turns off the sockets.
    """

    def __init__(self, mux: "MuxUdpTransport", ring_id: int, n: int):
        # Even the default wire must stamp this ring's id, or frames from
        # bare views (no set_wire yet) would all demux to ring 0.
        super().__init__(wire=Wire("json", ring_id=ring_id))
        self.mux = mux
        #: Stamped into frames; supervisors build their wire from this.
        self.ring_id = ring_id
        self.n = n
        self._started = False

    async def start(self) -> None:
        if not self._started:
            self._started = True
            await self.mux.acquire()

    def post(self, src: int, dst: int, state: Any) -> None:
        if not self._started:
            return
        self.sent += 1
        data = self.wire_for(src).encode(src, dst, state)
        self.mux.send_frame(self.ring_id, dst, data)

    async def close(self) -> None:
        if self._started:
            self._started = False
            await self.mux.release(self.ring_id)


class MuxUdpTransport:
    """N rings multiplexed over a shared pool of UDP sockets.

    Where :class:`UdpTransport` binds one socket per node, the mux binds
    ``sockets`` sockets *total* and addresses ``(ring_id, node)`` pairs to
    a deterministic home socket.  Incoming datagrams are demultiplexed by
    the ``ring_id`` stamped in every frame header (binary: one struct
    read; JSON: the ``"r"`` key) and handed to the owning
    :class:`RingView`, whose wire performs the real decode.

    Batching is on by default: all frames leaving in one event-loop tick
    toward the same destination socket coalesce into one datagram —
    across rings, which is the fleet's syscall amortization.
    """

    def __init__(
        self, host: str = "127.0.0.1", sockets: int = 1, batch: bool = True
    ):
        self.host = host
        self.num_sockets = max(1, int(sockets))
        self.batch = batch
        self._sockets: List[asyncio.DatagramTransport] = []
        self._addrs: List[Tuple[str, int]] = []
        self._views: Dict[int, RingView] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pending: Dict[int, List[bytes]] = {}
        self._flush_scheduled = False
        self._refs = 0
        self._started = False
        self._closed = False
        # -- statistics -----------------------------------------------------
        self.frames_out = 0
        self.frames_in = 0
        self.datagrams_out = 0
        self.datagrams_in = 0
        self.unroutable = 0

    # -- view lifecycle ------------------------------------------------------
    def view(self, ring_id: int, n: int) -> RingView:
        """Create the :class:`Transport` facade for ring ``ring_id``."""
        if ring_id in self._views:
            raise ValueError(f"ring {ring_id} already has a view")
        v = RingView(self, ring_id, n)
        self._views[ring_id] = v
        return v

    async def acquire(self) -> None:
        """Refcount a view in; first acquirer brings the socket pool up."""
        self._refs += 1
        await self.start()

    async def release(self, ring_id: int) -> None:
        """Refcount a view out; the last release closes the sockets."""
        self._views.pop(ring_id, None)
        self._refs -= 1
        if self._refs <= 0:
            await self.close()

    # -- socket pool ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the shared socket pool (idempotent)."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        self._loop = loop
        for _ in range(self.num_sockets):
            transport, _ = await loop.create_datagram_endpoint(
                lambda: _MuxDatagramProtocol(self),
                local_addr=(self.host, 0),
            )
            self._sockets.append(transport)
            sockname = transport.get_extra_info("sockname")
            self._addrs.append((self.host, sockname[1]))

    async def close(self) -> None:
        """Tear down the socket pool and drop any unsent batches."""
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        for transport in self._sockets:
            transport.close()
        self._sockets.clear()
        await asyncio.sleep(0)

    @property
    def started(self) -> bool:
        """Whether the shared socket pool is currently up."""
        return self._started and not self._closed

    def _home(self, ring_id: int, node: int) -> int:
        """Deterministic home-socket index for a ``(ring, node)`` pair."""
        return (ring_id + node) % self.num_sockets

    # -- egress --------------------------------------------------------------
    def send_frame(self, ring_id: int, dst: int, frame: bytes) -> None:
        """Route one encoded frame toward ``(ring_id, dst)``'s home socket."""
        if self._closed or not self._started:
            return
        self.frames_out += 1
        home = self._home(ring_id, dst)
        if not self.batch:
            self.datagrams_out += 1
            self._sockets[home].sendto(frame, self._addrs[home])
            return
        self._pending.setdefault(home, []).append(frame)
        if not self._flush_scheduled and self._loop is not None:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        pending, self._pending = self._pending, {}
        if self._closed:
            return
        for home, frames in pending.items():
            sock, addr = self._sockets[home], self._addrs[home]
            for i in range(0, len(frames), MAX_BATCH_FRAMES):
                self.datagrams_out += 1
                sock.sendto(pack_batch(frames[i:i + MAX_BATCH_FRAMES]), addr)

    # -- ingress -------------------------------------------------------------
    def _ingress(self, data: bytes) -> None:
        self.datagrams_in += 1
        try:
            for frame in split_frames(data):
                # Codec-free routing parse: ring + destination only.  The
                # owning view's wire re-parses for the actual state (cheap
                # for binary — one struct read — and JSON is the slow
                # path by definition).
                if frame_format(frame) == "binary":
                    ring_id, _src, dst, _seq, _w = parse_binary_header(frame)
                else:
                    ring_id, _src, dst, _state = parse_json_frame(frame)
                view = self._views.get(ring_id)
                if view is None or dst is None:
                    self.unroutable += 1
                    continue
                self.frames_in += 1
                view._handoff(dst, frame)
        except WireError:
            self.unroutable += 1

    def stats(self) -> Dict[str, int]:
        """Fleet-level counters (per-ring counters live on the views)."""
        return {
            "sockets": self.num_sockets,
            "batched": int(self.batch),
            "frames_out": self.frames_out,
            "frames_in": self.frames_in,
            "datagrams_out": self.datagrams_out,
            "datagrams_in": self.datagrams_in,
            "unroutable": self.unroutable,
        }


class ChaosTransport(Transport):
    """Fault-injecting decorator over another transport.

    All knobs start neutral (no chaos); a chaos script opens fault windows
    by mutating them and closes the windows by restoring the defaults.
    Randomness is drawn from one seeded RNG, so a given script + seed
    injects the same loss/duplication decisions run after run.
    """

    def __init__(self, inner: Transport, seed: int = 0):
        super().__init__()
        self.inner = inner
        self.rng = random.Random(seed)
        # -- fault knobs ----------------------------------------------------
        #: Bernoulli per-message loss probability.
        self.loss_p = 0.0
        #: Extra per-message latency window ``[low, high]`` seconds.
        self.delay_range: Optional[Tuple[float, float]] = None
        #: Probability a message is sent twice.
        self.duplicate_p = 0.0
        #: Probability a message is held back ``reorder_jitter`` seconds
        #: (later messages overtake it — reordering).
        self.reorder_p = 0.0
        self.reorder_jitter = 0.05
        #: Directed edges currently cut (``(src, dst)``).
        self.cut_edges: Set[Tuple[int, int]] = set()
        # -- statistics -----------------------------------------------------
        self.injected_losses = 0
        self.injected_duplicates = 0
        self.injected_delays = 0
        self.blocked_by_partition = 0
        self._handles: List[asyncio.TimerHandle] = []
        self._closed = False

    # -- Transport contract (register/start/close proxy to inner) ----------
    def set_wire(self, wire: Wire, node: Optional[int] = None) -> None:
        # Serialization happens at the inner transport's post/handoff; the
        # chaos layer manipulates native (src, dst, state) triples only.
        self.inner.set_wire(wire, node)

    def wire_for(self, src: int) -> Wire:
        return self.inner.wire_for(src)

    def register(self, index: int, deliver: Deliver) -> None:
        self.inner.register(index, deliver)

    def unregister(self, index: int) -> None:
        self.inner.unregister(index)

    async def start(self) -> None:
        await self.inner.start()

    async def close(self) -> None:
        self._closed = True
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        await self.inner.close()

    # -- fault windows -------------------------------------------------------
    def cut(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Partition: cut the given edges in *both* directions."""
        for a, b in edges:
            self.cut_edges.add((a, b))
            self.cut_edges.add((b, a))

    def heal(self, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        """Restore cut edges (all of them when ``edges`` is None)."""
        if edges is None:
            self.cut_edges.clear()
            return
        for a, b in edges:
            self.cut_edges.discard((a, b))
            self.cut_edges.discard((b, a))

    def calm(self) -> None:
        """Reset every knob to the neutral (no chaos) position."""
        self.loss_p = 0.0
        self.delay_range = None
        self.duplicate_p = 0.0
        self.reorder_p = 0.0
        self.cut_edges.clear()

    # -- the data path -------------------------------------------------------
    def post(self, src: int, dst: int, state: Any) -> None:
        if self._closed:
            return
        self.sent += 1
        if (src, dst) in self.cut_edges:
            self.blocked_by_partition += 1
            return
        if self.loss_p > 0.0 and self.rng.random() < self.loss_p:
            self.injected_losses += 1
            return
        copies = 1
        if self.duplicate_p > 0.0 and self.rng.random() < self.duplicate_p:
            self.injected_duplicates += 1
            copies = 2
        delay = 0.0
        if self.delay_range is not None:
            delay += self.rng.uniform(*self.delay_range)
        if self.reorder_p > 0.0 and self.rng.random() < self.reorder_p:
            delay += self.rng.uniform(0.0, self.reorder_jitter)
        for _ in range(copies):
            if delay > 0.0:
                self.injected_delays += 1
                self._later(delay, src, dst, state)
            else:
                self.inner.post(src, dst, state)

    def _later(self, delay: float, src: int, dst: int, state: Any) -> None:
        loop = asyncio.get_running_loop()
        handle = loop.call_later(delay, self.inner.post, src, dst, state)
        self._handles.append(handle)
        # Bound the handle list: drop completed handles opportunistically.
        if len(self._handles) > 256:
            self._handles = [h for h in self._handles if not h.cancelled()
                             and h.when() > loop.time()]

    # -- statistics ----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Chaos counters plus the inner transport's delivery counters."""
        return {
            "sent": self.sent,
            "inner_sent": self.inner.sent,
            "delivered": self.inner.delivered,
            "dropped": self.inner.dropped,
            "injected_losses": self.injected_losses,
            "injected_duplicates": self.injected_duplicates,
            "injected_delays": self.injected_delays,
            "blocked_by_partition": self.blocked_by_partition,
        }
