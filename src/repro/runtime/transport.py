"""Pluggable datagram transports for the live asyncio ring.

Three implementations share one tiny contract (:class:`Transport`):

* :class:`LoopbackTransport` — in-process delivery through the event loop.
  Every message still round-trips the wire format, so loopback runs
  exercise the exact serialization path UDP uses, just without sockets.
* :class:`UdpTransport` — one UDP datagram socket per node on localhost.
  Ports are OS-assigned (bind to port 0) and collected into a routing
  table, so parallel test runs never collide.
* :class:`ChaosTransport` — a decorator over either of the above that
  injects loss, extra delay, duplication, reorder and partitions from a
  seeded RNG; the knobs are mutable so a
  :class:`~repro.runtime.chaos.ChaosScript` can open and close fault
  windows while the ring runs.

Delivery is always *asynchronous with respect to the sender*: a send never
invokes the receiver's handler on the sender's stack (loopback uses
``call_soon``), mirroring real network decoupling and keeping CST's
receive-handler recursion bounded.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.runtime.wire import WireError, decode_message, encode_message

#: ``deliver(sender, state)`` — a node's ingress callback.
Deliver = Callable[[int, Any], None]


class Transport:
    """Abstract point-to-point datagram transport between node indices."""

    def __init__(self) -> None:
        self._receivers: Dict[int, Deliver] = {}
        # -- statistics -----------------------------------------------------
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    def register(self, index: int, deliver: Deliver) -> None:
        """Attach (or replace) the ingress callback for ``index``.

        Re-registration is how a restarted node takes over its identity —
        datagrams in flight toward a dead node are delivered to the new
        incarnation or dropped, never to the old object.
        """
        self._receivers[index] = deliver

    def unregister(self, index: int) -> None:
        """Detach ``index``; its datagrams are dropped until re-registered."""
        self._receivers.pop(index, None)

    async def start(self) -> None:
        """Bring the transport up (bind sockets, ...)."""

    def post(self, src: int, dst: int, state: Any) -> None:
        """Fire-and-forget one ``<state, q>`` message (synchronous API).

        Called from CST link ports inside the event loop; implementations
        must not block and must not deliver on the caller's stack.
        """
        raise NotImplementedError

    async def close(self) -> None:
        """Tear the transport down; in-flight messages may be dropped."""

    def stats(self) -> Dict[str, int]:
        """Delivery counters (decorators extend with their own)."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }

    # -- helpers for implementations ---------------------------------------
    def _handoff(self, dst: int, data: bytes) -> None:
        """Decode and deliver a received datagram to the ``dst`` callback."""
        deliver = self._receivers.get(dst)
        if deliver is None:
            self.dropped += 1
            return
        try:
            sender, state = decode_message(data)
        except WireError:
            # A malformed datagram is treated as lost; the periodic CST
            # timer re-sends the state anyway (self-stabilization absorbs
            # arbitrary channel garbage).
            self.dropped += 1
            return
        self.delivered += 1
        deliver(sender, state)


class LoopbackTransport(Transport):
    """In-process transport: encode, hop through the event loop, decode."""

    def __init__(self) -> None:
        super().__init__()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()

    def post(self, src: int, dst: int, state: Any) -> None:
        if self._closed or self._loop is None:
            return
        self.sent += 1
        data = encode_message(src, state)
        self._loop.call_soon(self._handoff, dst, data)

    async def close(self) -> None:
        self._closed = True


class _NodeDatagramProtocol(asyncio.DatagramProtocol):
    """Receives datagrams for one node index and hands them to the owner."""

    def __init__(self, owner: "UdpTransport", index: int):
        self.owner = owner
        self.index = index

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.owner._handoff(self.index, data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        # ICMP errors (port unreachable during a restart window) are
        # indistinguishable from loss for a self-stabilizing ring.
        pass


class UdpTransport(Transport):
    """One UDP socket per node on ``127.0.0.1``; OS-assigned ports.

    ``bind(i)`` must run (via :meth:`start`) before any ``post`` toward
    ``i`` can route; the supervisor binds every index it boots.
    """

    def __init__(self, indices: Iterable[int], host: str = "127.0.0.1"):
        super().__init__()
        self.host = host
        self.indices = tuple(indices)
        self._endpoints: Dict[int, asyncio.DatagramTransport] = {}
        #: ``index -> (host, port)`` routing table, filled at bind time.
        self.routes: Dict[int, Tuple[str, int]] = {}
        self._closed = False

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for i in self.indices:
            if i in self._endpoints:
                continue
            transport, _ = await loop.create_datagram_endpoint(
                lambda i=i: _NodeDatagramProtocol(self, i),
                local_addr=(self.host, 0),
            )
            self._endpoints[i] = transport
            sockname = transport.get_extra_info("sockname")
            self.routes[i] = (self.host, sockname[1])

    def post(self, src: int, dst: int, state: Any) -> None:
        if self._closed:
            return
        endpoint = self._endpoints.get(src)
        route = self.routes.get(dst)
        if endpoint is None or route is None:
            self.dropped += 1
            return
        self.sent += 1
        endpoint.sendto(encode_message(src, state), route)

    async def close(self) -> None:
        self._closed = True
        for transport in self._endpoints.values():
            transport.close()
        self._endpoints.clear()
        # Give the loop one tick to run the transports' close callbacks.
        await asyncio.sleep(0)


class ChaosTransport(Transport):
    """Fault-injecting decorator over another transport.

    All knobs start neutral (no chaos); a chaos script opens fault windows
    by mutating them and closes the windows by restoring the defaults.
    Randomness is drawn from one seeded RNG, so a given script + seed
    injects the same loss/duplication decisions run after run.
    """

    def __init__(self, inner: Transport, seed: int = 0):
        super().__init__()
        self.inner = inner
        self.rng = random.Random(seed)
        # -- fault knobs ----------------------------------------------------
        #: Bernoulli per-message loss probability.
        self.loss_p = 0.0
        #: Extra per-message latency window ``[low, high]`` seconds.
        self.delay_range: Optional[Tuple[float, float]] = None
        #: Probability a message is sent twice.
        self.duplicate_p = 0.0
        #: Probability a message is held back ``reorder_jitter`` seconds
        #: (later messages overtake it — reordering).
        self.reorder_p = 0.0
        self.reorder_jitter = 0.05
        #: Directed edges currently cut (``(src, dst)``).
        self.cut_edges: Set[Tuple[int, int]] = set()
        # -- statistics -----------------------------------------------------
        self.injected_losses = 0
        self.injected_duplicates = 0
        self.injected_delays = 0
        self.blocked_by_partition = 0
        self._handles: List[asyncio.TimerHandle] = []
        self._closed = False

    # -- Transport contract (register/start/close proxy to inner) ----------
    def register(self, index: int, deliver: Deliver) -> None:
        self.inner.register(index, deliver)

    def unregister(self, index: int) -> None:
        self.inner.unregister(index)

    async def start(self) -> None:
        await self.inner.start()

    async def close(self) -> None:
        self._closed = True
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        await self.inner.close()

    # -- fault windows -------------------------------------------------------
    def cut(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Partition: cut the given edges in *both* directions."""
        for a, b in edges:
            self.cut_edges.add((a, b))
            self.cut_edges.add((b, a))

    def heal(self, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        """Restore cut edges (all of them when ``edges`` is None)."""
        if edges is None:
            self.cut_edges.clear()
            return
        for a, b in edges:
            self.cut_edges.discard((a, b))
            self.cut_edges.discard((b, a))

    def calm(self) -> None:
        """Reset every knob to the neutral (no chaos) position."""
        self.loss_p = 0.0
        self.delay_range = None
        self.duplicate_p = 0.0
        self.reorder_p = 0.0
        self.cut_edges.clear()

    # -- the data path -------------------------------------------------------
    def post(self, src: int, dst: int, state: Any) -> None:
        if self._closed:
            return
        self.sent += 1
        if (src, dst) in self.cut_edges:
            self.blocked_by_partition += 1
            return
        if self.loss_p > 0.0 and self.rng.random() < self.loss_p:
            self.injected_losses += 1
            return
        copies = 1
        if self.duplicate_p > 0.0 and self.rng.random() < self.duplicate_p:
            self.injected_duplicates += 1
            copies = 2
        delay = 0.0
        if self.delay_range is not None:
            delay += self.rng.uniform(*self.delay_range)
        if self.reorder_p > 0.0 and self.rng.random() < self.reorder_p:
            delay += self.rng.uniform(0.0, self.reorder_jitter)
        for _ in range(copies):
            if delay > 0.0:
                self.injected_delays += 1
                self._later(delay, src, dst, state)
            else:
                self.inner.post(src, dst, state)

    def _later(self, delay: float, src: int, dst: int, state: Any) -> None:
        loop = asyncio.get_running_loop()
        handle = loop.call_later(delay, self.inner.post, src, dst, state)
        self._handles.append(handle)
        # Bound the handle list: drop completed handles opportunistically.
        if len(self._handles) > 256:
            self._handles = [h for h in self._handles if not h.cancelled()
                             and h.when() > loop.time()]

    # -- statistics ----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Chaos counters plus the inner transport's delivery counters."""
        return {
            "sent": self.sent,
            "inner_sent": self.inner.sent,
            "delivered": self.inner.delivered,
            "dropped": self.inner.dropped,
            "injected_losses": self.injected_losses,
            "injected_duplicates": self.injected_duplicates,
            "injected_delays": self.injected_delays,
            "blocked_by_partition": self.blocked_by_partition,
        }
