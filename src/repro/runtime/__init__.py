"""Live asyncio deployment of the CST-transformed ring algorithms.

Where :mod:`repro.messagepassing` *simulates* the transformed system on a
deterministic event queue, this package *runs* it: real
:class:`~repro.messagepassing.node.CSTNode` step logic inside asyncio
tasks, talking over pluggable transports (in-process loopback, UDP on
localhost), optionally through a chaos layer that injects loss, delay,
duplication, reorder and partitions; a supervisor boots, watches,
restarts and drains the nodes; and an online health monitor applies the
conformance predicates (legitimacy + cache coherence + token-census
bounds) so a live ring can report "stabilized in T seconds after fault
script F".

Entry points: ``repro live run|chaos|status`` on the CLI, or
:func:`~repro.runtime.harness.live_run` /
:func:`~repro.runtime.harness.live_chaos` from Python.
"""

from repro.runtime.chaos import (
    SCRIPTS,
    ChaosDirector,
    ChaosOp,
    ChaosScript,
    build_script,
)
from repro.runtime.harness import (
    build_algorithm,
    live_chaos,
    live_run,
    render_live_report,
)
from repro.runtime.health import Epoch, HealthMonitor, HealthSnapshot
from repro.runtime.server import LinkPort, RingNodeServer
from repro.runtime.supervisor import RingSupervisor
from repro.runtime.transport import (
    ChaosTransport,
    LoopbackTransport,
    Transport,
    UdpTransport,
)
from repro.runtime.wire import WireError, decode_message, encode_message

__all__ = [
    "SCRIPTS",
    "ChaosDirector",
    "ChaosOp",
    "ChaosScript",
    "ChaosTransport",
    "Epoch",
    "HealthMonitor",
    "HealthSnapshot",
    "LinkPort",
    "LoopbackTransport",
    "RingNodeServer",
    "RingSupervisor",
    "Transport",
    "UdpTransport",
    "WireError",
    "build_algorithm",
    "build_script",
    "decode_message",
    "encode_message",
    "live_chaos",
    "live_run",
    "render_live_report",
]
