"""Live asyncio deployment of the CST-transformed ring algorithms.

Where :mod:`repro.messagepassing` *simulates* the transformed system on a
deterministic event queue, this package *runs* it: real
:class:`~repro.messagepassing.node.CSTNode` step logic inside asyncio
tasks, talking over pluggable transports (in-process loopback, UDP on
localhost, a fleet mux sharing sockets between rings), optionally through
a chaos layer that injects loss, delay, duplication, reorder and
partitions; a supervisor boots, watches, restarts and drains the nodes;
and an online health monitor applies the conformance predicates
(legitimacy + cache coherence + token-census bounds) so a live ring can
report "stabilized in T seconds after fault script F".

Messages travel in one of two wire formats (:mod:`repro.runtime.wire`):
versioned JSON, or the packed binary fastpath whose payload word is the
exact :class:`~repro.messagepassing.fastpath.codecs.MPCodec` integer the
fast engines consume.  :mod:`repro.runtime.fleet` scales deployments to
many concurrent rings (shared sockets, optional worker-process sharding,
optional uvloop) and :mod:`repro.runtime.loadgen` drives their critical
sections with configurable client request rates.

Entry points: ``repro live run|chaos|status``, ``repro fleet run|status``
and ``repro bench runtime`` on the CLI, or
:func:`~repro.runtime.harness.live_run` /
:func:`~repro.runtime.harness.live_chaos` /
:func:`~repro.runtime.fleet.run_fleet` from Python.
"""

from repro.runtime.chaos import (
    SCRIPTS,
    ChaosDirector,
    ChaosOp,
    ChaosScript,
    build_script,
)
from repro.runtime.fleet import (
    FleetSupervisor,
    RingSpec,
    default_specs,
    render_fleet_report,
    run_fleet,
    run_fleet_sharded,
)
from repro.runtime.harness import (
    build_algorithm,
    install_uvloop,
    live_chaos,
    live_run,
    loop_name,
    render_live_report,
)
from repro.runtime.health import Epoch, HealthMonitor, HealthSnapshot
from repro.runtime.loadgen import LoadGenerator, LoadReport
from repro.runtime.server import LinkPort, RingNodeServer
from repro.runtime.supervisor import RingSupervisor
from repro.runtime.transport import (
    ChaosTransport,
    LoopbackTransport,
    MuxUdpTransport,
    RingView,
    Transport,
    UdpTransport,
)
from repro.runtime.wire import (
    Wire,
    WireError,
    decode_message,
    encode_message,
    make_wire,
)

__all__ = [
    "SCRIPTS",
    "ChaosDirector",
    "ChaosOp",
    "ChaosScript",
    "ChaosTransport",
    "Epoch",
    "FleetSupervisor",
    "HealthMonitor",
    "HealthSnapshot",
    "LinkPort",
    "LoadGenerator",
    "LoadReport",
    "LoopbackTransport",
    "MuxUdpTransport",
    "RingNodeServer",
    "RingSpec",
    "RingSupervisor",
    "RingView",
    "Transport",
    "UdpTransport",
    "Wire",
    "WireError",
    "build_algorithm",
    "build_script",
    "decode_message",
    "default_specs",
    "encode_message",
    "install_uvloop",
    "live_chaos",
    "live_run",
    "loop_name",
    "make_wire",
    "render_fleet_report",
    "render_live_report",
    "run_fleet",
    "run_fleet_sharded",
]
