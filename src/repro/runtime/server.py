"""One live ring node: a CST emulation task over a transport.

:class:`RingNodeServer` hosts the *existing* CST step logic — a real
:class:`~repro.messagepassing.node.CSTNode` — inside an asyncio task
group:

* **ingress** — the transport delivers ``<state, q>`` datagrams straight
  into ``CSTNode.on_receive`` (cache update, optional echo, rule check);
* **interval timer** — a task fires ``CSTNode.on_timer`` every
  ``interval + U(0, jitter)`` seconds (the cache-repair heartbeat of
  Algorithm 4, lines 11-12; jitter doubles as the randomization the
  transformation literature requires for non-silent algorithms);
* **dwell** — rule execution is deferred via ``loop.call_later`` (the
  critical-section dwell of the DES model), which also creates the
  observable legitimate+coherent instants the health monitor looks for;
* **egress** — each neighbour direction gets a :class:`LinkPort`, a
  coalescing rate-limited port mirroring the DES capacity-one link: when
  messages are produced faster than ``min_gap`` allows, only the newest
  state is kept pending (a newer CST state always supersedes an older
  one), which bounds traffic under chatty receive-echo storms.

A server can be *crashed* (``kill -9`` semantics: tasks cancelled, state
lost mid-flight) and later rebuilt by the supervisor with a fresh —
arbitrary — state; self-stabilization is what makes that recovery story
sound.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.algorithms.base import RingAlgorithm
from repro.messagepassing.links import DelayModel, FixedDelay
from repro.messagepassing.node import CSTNode
from repro.runtime.transport import Transport


class LinkPort:
    """Outgoing port for one ring direction with capacity-one coalescing.

    Presents the DES ``Link.send(payload)`` surface to ``CSTNode`` (so the
    node code runs unmodified) but transmits over a live transport.  At
    most one datagram leaves per ``min_gap`` seconds; excess sends replace
    the pending payload (newest state wins) exactly like the DES link's
    coalescing — the property Lemma 9's convergence argument needs.
    """

    def __init__(
        self,
        transport: Transport,
        src: int,
        dst: int,
        min_gap: float = 0.005,
    ):
        self.transport = transport
        self.src = src
        self.dst = dst
        self.min_gap = min_gap
        self._last_sent = float("-inf")
        self._pending: Optional[Any] = None
        self._flush_scheduled = False
        self.closed = False
        # -- statistics (DES Link-compatible names) -------------------------
        self.sent = 0
        self.coalesced = 0

    def send(self, payload: Any) -> None:
        """Send (or coalesce) ``(sender, state)`` toward ``dst``."""
        if self.closed:
            return
        loop = asyncio.get_running_loop()
        now = loop.time()
        if now - self._last_sent >= self.min_gap:
            self._transmit(payload, now)
            return
        if self._pending is not None:
            self.coalesced += 1
        self._pending = payload
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_at(self._last_sent + self.min_gap, self._flush)

    def _transmit(self, payload: Any, now: float) -> None:
        sender, state = payload
        self._last_sent = now
        self.sent += 1
        self.transport.post(sender, self.dst, state)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if self.closed or self._pending is None:
            return
        payload, self._pending = self._pending, None
        self._transmit(payload, asyncio.get_running_loop().time())


class RingNodeServer:
    """The asyncio life-support around one :class:`CSTNode`.

    Parameters
    ----------
    index, algorithm:
        Which process this server emulates, of which algorithm.
    transport:
        The shared (possibly chaos-wrapped) transport.
    initial_state, initial_cache:
        Starting condition (arbitrary, per self-stabilization).
    timer_interval, timer_jitter:
        Heartbeat cadence in (real) seconds.
    dwell_model:
        Seconds between a rule becoming enabled and executing; ``None``
        executes inline (degenerate: coherent instants become
        unobservable — see :mod:`repro.runtime.health`).
    min_gap:
        LinkPort rate limit (capacity-one emulation).
    rng:
        Seeded per-node RNG (jitter + dwell sampling).
    on_event:
        ``on_event(kind, **fields)`` telemetry/health hook; kinds:
        ``receive``, ``state_change``, ``timer``.
    chatty:
        Echo state on every receipt (Algorithm 4 verbatim).  The link
        ports make this safe; ``False`` relies on change+timer broadcasts.
    """

    def __init__(
        self,
        index: int,
        algorithm: RingAlgorithm,
        transport: Transport,
        initial_state: Any,
        initial_cache: Optional[Dict[int, Any]] = None,
        timer_interval: float = 0.2,
        timer_jitter: float = 0.1,
        dwell_model: Optional[DelayModel] = FixedDelay(0.02),
        min_gap: float = 0.005,
        rng: Optional[random.Random] = None,
        on_event: Optional[Callable[..., None]] = None,
        chatty: bool = True,
    ):
        self.index = index
        self.algorithm = algorithm
        self.transport = transport
        self.timer_interval = timer_interval
        self.timer_jitter = timer_jitter
        self.rng = rng or random.Random(index)
        self.on_event = on_event
        self.running = False
        self._timer_task: Optional[asyncio.Task] = None
        self._dwell_handles: List[asyncio.TimerHandle] = []
        self.restarts = 0
        #: Monotonic loop time of the last observable activity (timer fire
        #: or delivery) — the liveness watchdog's wedge signal.
        self.last_activity = 0.0

        neighbors = algorithm.ring.readable_neighbors(index)
        self.node = CSTNode(
            index=index,
            algorithm=algorithm,
            neighbors=neighbors,
            initial_state=initial_state,
            initial_cache=initial_cache,
            on_state_change=self._state_changed,
            scheduler=self._schedule_dwell,
            dwell_model=dwell_model,
            rng=self.rng,
            chatty=chatty,
        )
        self.ports: Dict[int, LinkPort] = {}
        for j in algorithm.ring.message_neighbors(index):
            port = LinkPort(transport, index, j, min_gap=min_gap)
            self.ports[j] = port
            self.node.links[j] = port

    # -- CSTNode integration -------------------------------------------------
    def _schedule_dwell(self, delay: float, fn: Callable[[], None]) -> None:
        loop = asyncio.get_running_loop()

        def guarded() -> None:
            # A crashed server must not execute rules from beyond the grave.
            if self.running:
                fn()

        self._dwell_handles.append(loop.call_later(delay, guarded))
        if len(self._dwell_handles) > 64:
            self._dwell_handles = [
                h for h in self._dwell_handles
                if not h.cancelled() and h.when() > loop.time()
            ]

    def _state_changed(self, node: CSTNode, old: Any, new: Any) -> None:
        if self.on_event is not None:
            self.on_event("state_change", node=self.index, old=old, new=new)

    def deliver(self, sender: int, state: Any) -> None:
        """Transport ingress: one ``<state, q>`` datagram arrived."""
        if not self.running:
            return
        if sender not in self.node.cache:
            # Not a readable neighbour (stray/forged datagram): ignore, as
            # a deployed node must.  (CSTNode would raise — correct for the
            # DES where this is a wiring bug, wrong for an open socket.)
            return
        self.node.on_receive(sender, state)
        self.last_activity = asyncio.get_running_loop().time()
        if self.on_event is not None:
            self.on_event("receive", node=self.index, src=sender)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Register ingress, arm the heartbeat, announce state."""
        if self.running:
            raise RuntimeError(f"node {self.index} already running")
        self.running = True
        loop = asyncio.get_running_loop()
        self.last_activity = loop.time()
        self.transport.register(self.index, self.deliver)
        self._timer_task = loop.create_task(
            self._timer_loop(), name=f"ring-node-{self.index}-timer"
        )
        # Boot announcement (the DES start() does the same): neighbours'
        # caches begin healing before the first timer.
        self.node.broadcast_state()

    async def _timer_loop(self) -> None:
        while self.running:
            await asyncio.sleep(
                self.timer_interval + self.rng.uniform(0.0, self.timer_jitter)
            )
            if not self.running:  # crashed while sleeping
                return
            self.node.on_timer()
            self.last_activity = asyncio.get_running_loop().time()
            if self.on_event is not None:
                self.on_event("timer", node=self.index)

    def crash(self) -> None:
        """``kill -9``: stop everything now, drop in-progress work."""
        self.running = False
        self.transport.unregister(self.index)
        if self._timer_task is not None:
            self._timer_task.cancel()
            self._timer_task = None
        for handle in self._dwell_handles:
            handle.cancel()
        self._dwell_handles.clear()
        for port in self.ports.values():
            port.closed = True

    async def drain(self) -> None:
        """Graceful shutdown: stop the heartbeat, let pending sends flush."""
        self.running = False
        if self._timer_task is not None:
            self._timer_task.cancel()
            try:
                await self._timer_task
            except asyncio.CancelledError:
                pass
            self._timer_task = None
        for handle in self._dwell_handles:
            handle.cancel()
        self._dwell_handles.clear()
        self.transport.unregister(self.index)

    @property
    def alive(self) -> bool:
        """Whether the server's heartbeat task is still running."""
        return (
            self.running
            and self._timer_task is not None
            and not self._timer_task.done()
        )

    # -- statistics ----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Per-node counters for the run report and metrics flush."""
        return {
            "rules_executed": self.node.rules_executed,
            "messages_received": self.node.messages_received,
            "timer_fires": self.node.timer_fires,
            "sent": sum(p.sent for p in self.ports.values()),
            "coalesced": sum(p.coalesced for p in self.ports.values()),
            "restarts": self.restarts,
        }
