"""Online health checking for a live ring.

The conformance oracle already knows what "healthy" means for these
algorithms: the true configuration is **legitimate**, the caches are
**coherent** (Definition 2, via
:func:`repro.messagepassing.coherence.stale_entries`), and on legitimate
configurations the own-view token census stays inside the paper's bounds
(:data:`repro.verification.conformance.oracle.TOKEN_BOUNDS` — 1..2 for
SSRmin, exactly 1 for Dijkstra).  :class:`HealthMonitor` applies those
predicates *online*: the supervisor notifies it after every state change,
cache update and timer fire, and the monitor tracks stabilization epochs.

An **epoch** starts at boot and at every disturbance (a chaos op, a node
crash/restart).  Within an epoch the monitor looks for the first instant
that is simultaneously legitimate + cache-coherent — Theorem 4's entry
condition, after which Theorem 3's token guarantee must hold — and from
that instant on it audits the own-view census on every notification.  A
live ring can therefore report "stabilized in T seconds after fault script
F" and "the ≥1-token guarantee held throughout" without any offline
analysis.

Instantaneous coherence requires rule execution to be *delayed* past cache
repair (the dwell model); with inline execution a non-silent ring hops
from one incoherent instant to the next and the entry condition is never
observable.  The supervisor's default dwell provides the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.messagepassing.coherence import stale_entries
from repro.verification.conformance.oracle import TOKEN_BOUNDS

#: Algorithms whose handover is *graceful* (Theorem 3): at least one node
#: sees the token in its own view at **every** instant after a legitimate
#: + coherent start.  For anything else (Dijkstra under CST being the
#: paper's counter-example) the own-view census transiently drops to zero
#: mid-handover, so the lower bound is only audited on coherent instants
#: — and the vacancies themselves are counted as an observable.
GRACEFUL_HANDOVER = frozenset({"SSRmin"})


@dataclass
class Epoch:
    """One disturbance-to-stabilization interval."""

    label: str
    started_at: float
    stabilized_at: Optional[float] = None

    @property
    def time_to_stabilize(self) -> Optional[float]:
        if self.stabilized_at is None:
            return None
        return self.stabilized_at - self.started_at

    def to_json(self) -> dict:
        """JSON-able form for the health report."""
        return {
            "label": self.label,
            "started_at": self.started_at,
            "stabilized_at": self.stabilized_at,
            "time_to_stabilize": self.time_to_stabilize,
        }


@dataclass
class HealthSnapshot:
    """One instantaneous reading of the ring's global state."""

    time: float
    states: Tuple[Any, ...]
    legitimate: bool
    coherent: bool
    own_view_holders: Tuple[int, ...]

    def to_json(self) -> dict:
        """JSON-able form for the health report."""
        return {
            "time": self.time,
            "states": [list(s) if isinstance(s, tuple) else s
                       for s in self.states],
            "legitimate": self.legitimate,
            "coherent": self.coherent,
            "own_view_holders": list(self.own_view_holders),
        }


class HealthMonitor:
    """Event-driven legitimacy + coherence + census tracking.

    Parameters
    ----------
    algorithm:
        The algorithm instance the ring runs.
    nodes:
        ``nodes()`` returns the current node objects, indexable by process
        index (restarts swap node objects, so the monitor re-reads).
    clock:
        ``clock()`` in seconds since boot (the supervisor's run clock).
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        nodes: Callable[[], Sequence[Any]],
        clock: Callable[[], float],
    ):
        self.algorithm = algorithm
        self._nodes = nodes
        self.clock = clock
        self.token_bounds = TOKEN_BOUNDS.get(type(algorithm).__name__)
        self.guaranteed_throughout = (
            type(algorithm).__name__ in GRACEFUL_HANDOVER
        )
        self.epochs: List[Epoch] = [Epoch(label="boot", started_at=0.0)]
        self.checks = 0
        #: Optional observers (the supervisor wires these onto its event
        #: bus so the run store and dashboards see epochs live):
        #: ``on_epoch_open(index, epoch)`` fires at every disturbance,
        #: ``on_epoch_stabilized(index, epoch)`` at the first legitimate +
        #: coherent instant of an epoch, ``on_violation(record)`` per
        #: guarantee breach.
        self.on_epoch_open: Optional[Callable[[int, Epoch], None]] = None
        self.on_epoch_stabilized: Optional[Callable[[int, Epoch], None]] = None
        self.on_violation: Optional[Callable[[dict], None]] = None
        #: Transport fault windows currently biting (loss, partition, ...).
        #: The chaos director raises/lowers this at window boundaries;
        #: while non-zero the census audit is suspended, because Theorems
        #: 3-4 promise the token guarantee only for *fault-free* execution
        #: after the legitimate + coherent instant — an epoch that
        #: restabilizes mid-window can still lose handover messages
        #: through no fault of the algorithm.
        self.active_disturbances = 0
        #: Post-stabilization instants with zero own-view tokens.  Always
        #: zero for graceful-handover algorithms (else it's a violation);
        #: for Dijkstra this live-counts the handover gap of Figure 13.
        self.vacancy_instants = 0
        #: Census bookkeeping over post-stabilization instants of the
        #: current epoch (reset at every disturbance).
        self.post_stab_min_holders: Optional[int] = None
        self.post_stab_max_holders: Optional[int] = None
        #: Notifications where a stabilized epoch had zero own-view tokens
        #: (a Theorem 3 violation) or exceeded the upper bound.
        self.guarantee_violations: List[dict] = []

    # -- epoch control -------------------------------------------------------
    @property
    def current_epoch(self) -> Epoch:
        return self.epochs[-1]

    @property
    def stabilized(self) -> bool:
        return self.current_epoch.stabilized_at is not None

    def note_disturbance(self, label: str) -> None:
        """A fault just happened: open a fresh epoch."""
        self.epochs.append(Epoch(label=label, started_at=self.clock()))
        self.post_stab_min_holders = None
        self.post_stab_max_holders = None
        if self.on_epoch_open is not None:
            self.on_epoch_open(len(self.epochs) - 1, self.epochs[-1])

    def window_opened(self) -> None:
        """A transport fault window started: suspend the census audit."""
        self.active_disturbances += 1

    def window_healed(self) -> None:
        """A transport fault window closed: resume auditing when last."""
        self.active_disturbances = max(0, self.active_disturbances - 1)

    # -- the online check ----------------------------------------------------
    def snapshot(self) -> HealthSnapshot:
        """Read the ring's global state (single-threaded, hence consistent)."""
        nodes = self._nodes()
        alg = self.algorithm
        states = tuple(node.state for node in nodes)
        config = alg.normalize_configuration(states)
        holders = tuple(
            node.index for node in nodes
            if alg.node_holds_token(node.view(), node.index)
        )
        return HealthSnapshot(
            time=self.clock(),
            states=states,
            legitimate=alg.is_legitimate(config),
            coherent=not stale_entries(nodes),
            own_view_holders=holders,
        )

    def notify(self) -> HealthSnapshot:
        """Run the health check now; called after every observable event."""
        self.checks += 1
        snap = self.snapshot()
        epoch = self.current_epoch
        if epoch.stabilized_at is None:
            if snap.legitimate and snap.coherent:
                epoch.stabilized_at = snap.time
                if self.on_epoch_stabilized is not None:
                    self.on_epoch_stabilized(len(self.epochs) - 1, epoch)
        if epoch.stabilized_at is not None and self.active_disturbances == 0:
            count = len(snap.own_view_holders)
            if self.post_stab_min_holders is None:
                self.post_stab_min_holders = count
                self.post_stab_max_holders = count
            else:
                self.post_stab_min_holders = min(
                    self.post_stab_min_holders, count)
                self.post_stab_max_holders = max(
                    self.post_stab_max_holders, count)
            if count == 0:
                self.vacancy_instants += 1
            if self.token_bounds is not None:
                lo, hi = self.token_bounds
                # The upper bound is only guaranteed on *legitimate*
                # instants.  The lower bound (token existence) is the
                # graceful-handover guarantee: it must hold *throughout*
                # for SSRmin, but only on coherent instants for
                # non-graceful algorithms, whose census legitimately dips
                # to zero while a handover message is in flight.
                low_breach = (
                    count < lo
                    if self.guaranteed_throughout
                    else (snap.legitimate and snap.coherent and count < lo)
                )
                if low_breach or (snap.legitimate and count > hi):
                    record = {
                        "time": snap.time,
                        "holders": list(snap.own_view_holders),
                        "legitimate": snap.legitimate,
                        "epoch": epoch.label,
                        "epoch_index": len(self.epochs) - 1,
                    }
                    self.guarantee_violations.append(record)
                    if self.on_violation is not None:
                        self.on_violation(record)
        return snap

    # -- reporting -----------------------------------------------------------
    @property
    def ok(self) -> bool:
        """Stabilized in the current epoch, which shows no violations.

        Earlier epochs may legitimately contain violations (a reorder
        window can perturb the guarantee mid-chaos); what a healthy ring
        must deliver is a clean *final* epoch — re-stabilized after the
        last disturbance with the token guarantee intact since.
        """
        final = len(self.epochs) - 1
        return self.stabilized and not any(
            v["epoch_index"] == final for v in self.guarantee_violations
        )

    def time_to_restabilize(self) -> Optional[float]:
        """Stabilization latency of the most recent disturbance epoch."""
        return self.current_epoch.time_to_stabilize

    def to_json(self) -> dict:
        """The report's ``health`` block (epochs, census, violations)."""
        return {
            "checks": self.checks,
            "stabilized": self.stabilized,
            "graceful_handover": self.guaranteed_throughout,
            "vacancy_instants": self.vacancy_instants,
            "epochs": [e.to_json() for e in self.epochs],
            "time_to_restabilize": self.time_to_restabilize(),
            "post_stab_min_holders": self.post_stab_min_holders,
            "post_stab_max_holders": self.post_stab_max_holders,
            "guarantee_violations": list(self.guarantee_violations),
            "token_bounds": list(self.token_bounds)
            if self.token_bounds else None,
        }
