"""Synchronous entry points for live runs (CLI and test harness).

These wrap the asyncio machinery in ``asyncio.run`` so callers (argparse
handlers, plain pytest functions) need no event-loop plumbing:

* :func:`live_run` — boot a ring, require stabilization within a deadline,
  run for a duration, drain, return the report;
* :func:`live_chaos` — boot, stabilize, execute a named chaos script,
  require *re*-stabilization after its last disturbance, drain, return
  the report (including ``health.time_to_restabilize``).

Both build the algorithm from its name the same way the conformance CLI
does, and both leave manifest writing to the caller — the report dict is
shaped to drop into ``build_manifest(extra={"live": report})``.
"""

from __future__ import annotations

import asyncio
from typing import Any, List, Optional, Union

from repro.runtime.chaos import ChaosScript, build_script
from repro.runtime.supervisor import RingSupervisor


def install_uvloop(enabled: bool = True) -> bool:
    """Switch the asyncio event-loop policy to uvloop when available.

    uvloop is an *optional* extra (``pip install repro[perf]``); the
    stdlib loop is the always-working fallback.  Returns whether uvloop
    is actually driving subsequent ``asyncio.run`` calls, so reports can
    record which loop produced their numbers.
    """
    if not enabled:
        asyncio.set_event_loop_policy(None)
        return False
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def loop_name() -> str:
    """``"uvloop"`` or ``"asyncio"`` — whichever policy is installed."""
    policy = asyncio.get_event_loop_policy()
    return (
        "uvloop" if type(policy).__module__.startswith("uvloop")
        else "asyncio"
    )


def build_algorithm(name: str, n: int, K: Optional[int] = None):
    """Instantiate ``ssrmin`` or ``dijkstra`` for a live deployment."""
    if name == "ssrmin":
        from repro.core.ssrmin import SSRmin

        return SSRmin(n, K)
    if name == "dijkstra":
        from repro.algorithms.dijkstra import DijkstraKState

        return DijkstraKState(n, K if K is not None else n + 1)
    raise ValueError(f"unknown algorithm {name!r} (ssrmin, dijkstra)")


async def _run(
    supervisor: RingSupervisor,
    duration: float,
    stabilize_timeout: float,
    script: Optional[ChaosScript],
) -> dict:
    try:
        await supervisor.boot()
        try:
            await supervisor.wait_stabilized(stabilize_timeout)
        except TimeoutError:
            # Not an exceptional control path for a CLI: the report (and
            # the exit code derived from it) carries stabilized=False.
            pass
        if script is not None:
            await supervisor.run_chaos(script)
            if not supervisor.health.stabilized:
                # The settle window wasn't enough; give the ring the same
                # budget it had at boot before declaring failure.
                try:
                    await supervisor.wait_stabilized(stabilize_timeout)
                except TimeoutError:
                    pass  # reported as stabilized=False in the report
        if duration > 0:
            await supervisor.run_for(duration)
    finally:
        await supervisor.shutdown()
    report = supervisor.report()
    if script is not None:
        report["script"] = script.to_json()
    return report


def _make_supervisor(
    algorithm: str,
    n: int,
    K: Optional[int],
    transport: str,
    chaos: bool,
    seed: int,
    timer_interval: float,
    initial: Union[str, List[Any]],
    wire: str = "json",
    **kwargs: Any,
) -> RingSupervisor:
    alg = build_algorithm(algorithm, n, K)
    return RingSupervisor(
        alg,
        transport=transport,
        chaos=chaos,
        wire=wire,
        initial=initial,
        seed=seed,
        timer_interval=timer_interval,
        **kwargs,
    )


def live_run(
    algorithm: str = "ssrmin",
    n: int = 5,
    K: Optional[int] = None,
    transport: str = "loopback",
    duration: float = 2.0,
    seed: int = 0,
    timer_interval: float = 0.2,
    initial: Union[str, List[Any]] = "legitimate",
    stabilize_timeout: float = 10.0,
    wire: str = "json",
    use_uvloop: bool = False,
    **kwargs: Any,
) -> dict:
    """Boot a live ring, stabilize, run, drain; returns the run report."""
    if use_uvloop:
        install_uvloop(True)
    supervisor = _make_supervisor(
        algorithm, n, K, transport, False, seed, timer_interval, initial,
        wire=wire, **kwargs,
    )
    report = asyncio.run(_run(supervisor, duration, stabilize_timeout, None))
    report["loop"] = loop_name()
    return report


def live_chaos(
    script: Union[str, ChaosScript] = "loss_burst",
    algorithm: str = "ssrmin",
    n: int = 8,
    K: Optional[int] = None,
    transport: str = "udp",
    seed: int = 0,
    timer_interval: float = 0.1,
    initial: Union[str, List[Any]] = "legitimate",
    stabilize_timeout: float = 10.0,
    extra_duration: float = 0.0,
    wire: str = "json",
    use_uvloop: bool = False,
    **kwargs: Any,
) -> dict:
    """Run a chaos script against a live ring; returns the run report.

    The report's ``health`` block answers the operational questions:
    ``stabilized`` (did the final epoch re-stabilize),
    ``time_to_restabilize`` (seconds from the last disturbance), and
    ``guarantee_violations`` (own-view token-census breaches observed
    after stabilization).
    """
    if use_uvloop:
        install_uvloop(True)
    supervisor = _make_supervisor(
        algorithm, n, K, transport, True, seed, timer_interval, initial,
        wire=wire, **kwargs,
    )
    if isinstance(script, str):
        script = build_script(script, n, seed)
    report = asyncio.run(
        _run(supervisor, extra_duration, stabilize_timeout, script)
    )
    report["loop"] = loop_name()
    return report


def render_live_report(report: dict) -> List[str]:
    """Human-readable one-liners for a live run report."""
    health = report.get("health", {})
    lines = [
        f"ring:       {report.get('algorithm')} n={report.get('n')} "
        f"K={report.get('K')} seed={report.get('seed')}",
        f"transport:  {report.get('transport')}"
        + (" + chaos" if report.get("chaos") else "")
        + (f" · wire={report['wire'].get('format')}"
           if isinstance(report.get("wire"), dict) else "")
        + (f" · loop={report['loop']}" if report.get("loop") else ""),
        f"wall clock: {report.get('wall_clock', 0.0):.2f}s "
        f"(timer interval {report.get('timer_interval')}s)",
        f"stabilized: {health.get('stabilized')}",
    ]
    ttr = health.get("time_to_restabilize")
    if ttr is not None:
        lines.append(f"time to (re)stabilize: {ttr:.3f}s "
                     f"after {health.get('epochs', [{}])[-1].get('label')}")
    lo = health.get("post_stab_min_holders")
    hi = health.get("post_stab_max_holders")
    if lo is not None:
        lines.append(f"own-view token census post-stabilization: "
                     f"[{lo}, {hi}] (bounds {health.get('token_bounds')})")
    violations = health.get("guarantee_violations", [])
    lines.append(f"guarantee violations: {len(violations)}")
    if not health.get("graceful_handover", True):
        lines.append(
            f"own-view vacancy instants (non-graceful handover): "
            f"{health.get('vacancy_instants')}"
        )
    if report.get("restarts"):
        lines.append(f"node restarts: {report['restarts']}")
    tstats = report.get("transport_stats", {})
    if tstats:
        lines.append(
            "messages: " + ", ".join(f"{k}={v}" for k, v in tstats.items())
        )
    for epoch in health.get("epochs", ()):
        t = epoch.get("time_to_stabilize")
        lines.append(
            f"  epoch {epoch.get('label')}: "
            + (f"stabilized in {t:.3f}s" if t is not None else "NOT stabilized")
        )
    return lines
