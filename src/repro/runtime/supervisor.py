"""RingSupervisor: boots, monitors, heals and drains a live CST ring.

The supervisor owns everything one deployment needs:

* the **transport** (loopback or UDP, optionally chaos-wrapped);
* one :class:`~repro.runtime.server.RingNodeServer` per process;
* the **liveness watchdog** — a task that scans every server each
  ``watchdog_interval`` seconds and restarts any node whose heartbeat
  task died or whose last activity is older than ``wedge_timeout``,
  with per-node exponential backoff (restart storms on a sick host
  would otherwise amplify the outage);
* the **health monitor** (:mod:`repro.runtime.health`) notified at every
  state change, delivery and timer fire;
* **telemetry** — a structured event bus (layer ``runtime``) attached to
  the ambient :mod:`repro.telemetry` session, per-node metrics flushed
  into the session registry at teardown, and a run-report dict designed
  to land in a run manifest's ``extra`` field.

Restart semantics are deliberately brutal: a restarted node comes back
with an *arbitrary* (seeded-random) state and self-referential caches —
exactly the adversarial initial condition of Theorem 4 — and the ring
must re-stabilize around it.  That is the whole point of deploying a
self-stabilizing algorithm: the supervisor never needs state snapshots
or coordinated recovery.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, List, Optional, Union

from repro.algorithms.base import RingAlgorithm
from repro.faults.injection import random_local_state
from repro.messagepassing.links import DelayModel, FixedDelay
from repro.runtime.chaos import ChaosDirector, ChaosScript
from repro.runtime.health import HealthMonitor
from repro.runtime.server import RingNodeServer
from repro.runtime.transport import (
    ChaosTransport,
    LoopbackTransport,
    Transport,
    UdpTransport,
)
from repro.runtime.wire import Wire, make_wire
from repro.telemetry.events import EventBus
from repro.telemetry.session import current_session


def _build_transport(spec: Union[str, Transport], n: int) -> Transport:
    if isinstance(spec, Transport):
        return spec
    if spec == "loopback":
        return LoopbackTransport()
    if spec == "udp":
        return UdpTransport(range(n))
    if spec == "udp-batch":
        return UdpTransport(range(n), batch=True)
    raise ValueError(f"unknown transport {spec!r} (loopback, udp, udp-batch)")


class RingSupervisor:
    """Deploys one algorithm instance as a live asyncio ring.

    Parameters
    ----------
    algorithm:
        The (already CST-transformable) ring algorithm to deploy.
    transport:
        ``"loopback"``, ``"udp"``, ``"udp-batch"``, or a ready
        :class:`Transport` (e.g. a fleet mux :class:`~repro.runtime.
        transport.RingView`).
    chaos:
        Wrap the transport in a :class:`ChaosTransport` (needed to run
        scripts with transport fault windows).
    wire:
        ``"json"``, ``"binary"``, or a ready :class:`~repro.runtime.wire.
        Wire`.  Installed on the (innermost) transport before boot; the
        binary format requires the algorithm to expose a packed
        ``mp_codec()``.  A peer speaking the other format triggers a
        structured ``wire_fallback`` incident on the event bus instead of
        an error.
    initial:
        ``"legitimate"`` starts from a legitimate configuration with
        coherent caches (Theorem 3's hypothesis); ``"random"`` from
        uniformly random states and self-referential caches (Theorem 4's);
        or pass an explicit list of local states.
    seed:
        Master seed: derives per-node RNGs, the fault-value RNG and the
        chaos transport RNG.
    timer_interval, timer_jitter, dwell, min_gap:
        Real-time cadences (seconds); see :class:`RingNodeServer`.
    watchdog_interval, wedge_timeout:
        Liveness scan period and the no-activity threshold that counts as
        wedged.  ``wedge_timeout`` defaults to ``6 * timer_interval``.
    backoff_base, backoff_cap:
        Exponential restart backoff: ``base * 2**(consecutive-1)``, capped.
    """

    def __init__(
        self,
        algorithm: RingAlgorithm,
        transport: Union[str, Transport] = "loopback",
        chaos: bool = False,
        wire: Union[str, Wire] = "json",
        initial: Union[str, List[Any]] = "legitimate",
        seed: int = 0,
        timer_interval: float = 0.2,
        timer_jitter: float = 0.1,
        dwell: Optional[DelayModel] = None,
        min_gap: float = 0.005,
        watchdog_interval: float = 0.1,
        wedge_timeout: Optional[float] = None,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        chatty: bool = False,
    ):
        self.algorithm = algorithm
        self.n = algorithm.n
        self.seed = seed
        self.rng = random.Random(seed)
        #: Fault-value RNG (corrupt-state/corrupt-cache draws), separate
        #: stream so chaos values don't perturb node jitter sequences.
        self.fault_rng = random.Random(seed ^ 0x5EED)
        self.timer_interval = timer_interval
        self.timer_jitter = timer_jitter
        self.dwell = dwell if dwell is not None else FixedDelay(
            max(0.01, timer_interval / 10)
        )
        self.min_gap = min_gap
        self.watchdog_interval = watchdog_interval
        self.wedge_timeout = (
            wedge_timeout if wedge_timeout is not None
            else 6 * timer_interval
        )
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.chatty = chatty

        base = _build_transport(transport, self.n)
        self.transport_name = (
            transport if isinstance(transport, str) else type(base).__name__
        )
        # The wire lives on the innermost transport (where encode/decode
        # happen); the ring id comes from the transport when it has one
        # (a fleet mux view), else 0.
        if isinstance(wire, Wire):
            self.wire = wire
        else:
            self.wire = make_wire(
                wire,
                algorithm=algorithm,
                ring_id=getattr(base, "ring_id", 0),
                on_fallback=self._wire_fallback,
            )
        base.set_wire(self.wire)
        self.chaos: Optional[ChaosTransport] = (
            ChaosTransport(base, seed=seed ^ 0xC4A05) if chaos else None
        )
        self.transport: Transport = self.chaos if chaos else base

        self.initial = initial
        self.servers: List[RingNodeServer] = []
        self.health: HealthMonitor = None  # type: ignore[assignment]
        self._t0 = 0.0
        self._watchdog_task: Optional[asyncio.Task] = None
        self._handles: List[asyncio.TimerHandle] = []
        self._backoff: Dict[int, int] = {}
        self._next_restart_at: Dict[int, float] = {}
        self._booted = False
        self._last_census: Optional[tuple] = None
        self.total_restarts = 0
        self.crashes_requested = 0

        tel = current_session()
        self.bus = EventBus(sequence=tel.sequence if tel is not None else None)
        if tel is not None:
            tel.attach_bus(self.bus)

    # -- clock / telemetry ---------------------------------------------------
    def clock(self) -> float:
        """Seconds since boot (monotonic)."""
        return asyncio.get_running_loop().time() - self._t0

    def publish(self, kind: str, **payload) -> None:
        """Emit a runtime-layer event on the bus at the current run time."""
        self.bus.publish("runtime", kind, self.clock(), **payload)

    def track_handle(self, handle: asyncio.TimerHandle) -> None:
        """Register a timer handle for cancellation at shutdown."""
        self._handles.append(handle)

    def _wire_fallback(self, peer: int, received: str) -> None:
        """Structured incident: a peer speaks the other wire format.

        Fired once per peer by the wire's sniffing decoder — the mixed-
        version ring keeps running, but operators (and the run store's
        incident table) see the negotiation happen.
        """
        self.publish(
            "wire_fallback",
            node=peer,
            spoken=self.wire.format,
            received=received,
        )

    # -- boot ----------------------------------------------------------------
    def _initial_states(self) -> List[Any]:
        if isinstance(self.initial, str):
            if self.initial == "legitimate":
                from repro.messagepassing.cst import legitimate_initial_states

                return legitimate_initial_states(self.algorithm)
            if self.initial == "random":
                return list(self.algorithm.random_configuration(self.rng))
            raise ValueError(
                f"initial must be 'legitimate', 'random' or a state list, "
                f"got {self.initial!r}"
            )
        return list(self.initial)

    def _make_server(
        self, i: int, state: Any, cache: Optional[Dict[int, Any]]
    ) -> RingNodeServer:
        return RingNodeServer(
            index=i,
            algorithm=self.algorithm,
            transport=self.transport,
            initial_state=state,
            initial_cache=cache,
            timer_interval=self.timer_interval,
            timer_jitter=self.timer_jitter,
            dwell_model=self.dwell,
            min_gap=self.min_gap,
            rng=random.Random(self.rng.getrandbits(64)),
            on_event=self._node_event,
            chatty=self.chatty,
        )

    async def boot(self) -> None:
        """Bind the transport, build and start every node, arm the watchdog."""
        if self._booted:
            raise RuntimeError("supervisor already booted")
        self._booted = True
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        await self.transport.start()

        states = self._initial_states()
        caches: List[Optional[Dict[int, Any]]] = [None] * self.n
        if self.initial == "legitimate":
            from repro.messagepassing.cst import coherent_caches

            coherent = coherent_caches(states, self.n)
            caches = [coherent[i] for i in range(self.n)]

        self.health = HealthMonitor(
            self.algorithm, lambda: [s.node for s in self.servers], self.clock
        )
        # Epoch lifecycle onto the bus: the run-store ingester and the
        # `repro top` dashboard consume these live.
        self.health.on_epoch_open = lambda index, epoch: self.publish(
            "epoch_open", index=index, label=epoch.label,
            started_at=epoch.started_at,
        )
        self.health.on_epoch_stabilized = lambda index, epoch: self.publish(
            "epoch_stabilized", index=index, label=epoch.label,
            stabilized_at=epoch.stabilized_at,
            time_to_stabilize=epoch.time_to_stabilize,
        )
        # The record's "time" key would collide with the bus timestamp
        # parameter; republish it as "at".
        self.health.on_violation = lambda record: self.publish(
            "violation",
            **{("at" if k == "time" else k): v for k, v in record.items()},
        )
        self.servers = [
            self._make_server(i, states[i], caches[i]) for i in range(self.n)
        ]
        self.publish(
            "run_start",
            algorithm=type(self.algorithm).__name__,
            n=self.n,
            K=getattr(self.algorithm, "K", None),
            seed=self.seed,
            transport=self.transport_name,
            chaos=self.chaos is not None,
            wire=self.wire.format,
            timer_interval=self.timer_interval,
            initial=self.initial if isinstance(self.initial, str) else "explicit",
        )
        for server in self.servers:
            server.start()
            self.publish("node_start", node=server.index)
        self.health.notify()
        self._watchdog_task = loop.create_task(
            self._watchdog_loop(), name="ring-watchdog"
        )

    # -- node events ---------------------------------------------------------
    def _node_event(self, kind: str, **fields) -> None:
        if kind == "state_change":
            self.publish("state_change", node=fields["node"],
                         new=list(fields["new"])
                         if isinstance(fields["new"], tuple)
                         else fields["new"])
        snap = self.health.notify()
        census = snap.own_view_holders
        if census != self._last_census:
            self._last_census = census
            if self.bus.active:
                self.publish("census", holders=list(census),
                             legitimate=snap.legitimate,
                             coherent=snap.coherent)

    # -- the liveness watchdog -----------------------------------------------
    async def _watchdog_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.watchdog_interval)
            now = loop.time()
            for i, server in enumerate(self.servers):
                wedged = server.running and (
                    not server.alive
                    or now - server.last_activity > self.wedge_timeout
                )
                dead = not server.running
                if not (wedged or dead):
                    self._backoff.pop(i, None)
                    continue
                due = self._next_restart_at.get(i, 0.0)
                if now < due:
                    continue
                self._restart(i, reason="wedged" if wedged else "dead")

    def _restart(self, i: int, reason: str) -> None:
        """Replace server ``i`` with a fresh arbitrary-state incarnation."""
        loop = asyncio.get_running_loop()
        old = self.servers[i]
        restarts = old.restarts + 1
        old.crash()
        consecutive = self._backoff.get(i, 0) + 1
        self._backoff[i] = consecutive
        backoff = min(
            self.backoff_base * (2 ** (consecutive - 1)), self.backoff_cap
        )
        self._next_restart_at[i] = loop.time() + backoff
        state = random_local_state(self.algorithm, self.fault_rng)
        server = self._make_server(i, state, None)
        server.restarts = restarts
        self.servers[i] = server
        self.total_restarts += 1
        server.start()
        # A restart is a transient fault from the ring's point of view.
        self.health.note_disturbance(f"restart-{i}")
        self.publish("node_restart", node=i, reason=reason,
                     backoff=backoff, restarts=restarts)

    # -- fault entry points (chaos director / tests / operators) -------------
    def kill(self, i: int) -> None:
        """``kill -9`` node ``i``; the watchdog will restart it."""
        self.crashes_requested += 1
        self.servers[i].crash()
        self.health.note_disturbance(f"crash-{i}")
        self.publish("node_crash", node=i)

    def wedge(self, i: int) -> None:
        """Silently hang node ``i``: its heartbeat dies but the process
        still looks alive (deliveries keep landing).  The liveness
        watchdog must detect the missing activity and restart it — the
        fault ``repro.chaoslab``'s ``wedge`` FaultType compiles to."""
        server = self.servers[i]
        if server._timer_task is not None:
            server._timer_task.cancel()
        self.health.note_disturbance(f"wedge-{i}")
        self.publish("fault", fault="wedge", node=i)

    def corrupt_state(self, i: int, value: Any = None) -> None:
        """Transient fault: overwrite node ``i``'s local state."""
        if value is None:
            value = random_local_state(self.algorithm, self.fault_rng)
        node = self.servers[i].node
        old = node.state
        node.state = value
        self.health.note_disturbance(f"corrupt-state-{i}")
        self.publish("fault", fault="corrupt-state", node=i)
        if node.on_state_change is not None:
            node.on_state_change(node, old, value)

    def corrupt_cache(self, i: int, neighbor: int, value: Any = None) -> None:
        """Transient fault: overwrite one cache entry of node ``i``."""
        if value is None:
            value = random_local_state(self.algorithm, self.fault_rng)
        node = self.servers[i].node
        if neighbor not in node.cache:
            raise ValueError(f"node {i} has no cache entry for {neighbor}")
        node.cache[neighbor] = value
        self.health.note_disturbance(f"corrupt-cache-{i}")
        self.publish("fault", fault="corrupt-cache", node=i, neighbor=neighbor)
        self.health.notify()

    # -- run modes -----------------------------------------------------------
    async def run_for(self, duration: float) -> None:
        """Let the ring run for ``duration`` seconds."""
        if not self._booted:
            await self.boot()
        await asyncio.sleep(duration)

    async def run_chaos(self, script: ChaosScript) -> None:
        """Execute a chaos script to completion (boots if needed)."""
        if not self._booted:
            await self.boot()
        director = ChaosDirector(script, self)
        self.publish("chaos_script", **script.to_json())
        await director.run()

    async def wait_stabilized(
        self, timeout: float, poll: float = 0.02
    ) -> float:
        """Block until the current epoch stabilizes; returns the latency.

        Raises :class:`TimeoutError` when ``timeout`` elapses first.
        """
        if not self._booted:
            await self.boot()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not self.health.stabilized:
            if loop.time() >= deadline:
                raise TimeoutError(
                    f"ring did not stabilize within {timeout:.1f}s "
                    f"(epoch {self.health.current_epoch.label!r})"
                )
            await asyncio.sleep(poll)
        return self.health.current_epoch.time_to_stabilize  # type: ignore

    # -- teardown ------------------------------------------------------------
    async def shutdown(self) -> None:
        """Graceful drain: watchdog off, nodes drained, transport closed."""
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except asyncio.CancelledError:
                pass
            self._watchdog_task = None
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        for server in self.servers:
            await server.drain()
        # One grace tick so already-queued deliveries land before close.
        await asyncio.sleep(0)
        await self.transport.close()
        self._flush_metrics()
        self.publish("run_end", restarts=self.total_restarts,
                     **self.report()["health"])

    def _flush_metrics(self) -> None:
        """Write per-node counters into the ambient session registry."""
        tel = current_session()
        if tel is None:
            return
        reg = tel.registry
        for server in self.servers:
            stats = server.stats()
            labels = {"node": server.index}
            reg.counter("live_rules_executed_total",
                        "rules executed by live nodes").inc(
                stats["rules_executed"], **labels)
            reg.counter("live_messages_sent_total",
                        "datagrams sent by live nodes").inc(
                stats["sent"], **labels)
            reg.counter("live_messages_received_total",
                        "datagrams received by live nodes").inc(
                stats["messages_received"], **labels)
            reg.counter("live_timer_fires_total",
                        "interval-timer fires on live nodes").inc(
                stats["timer_fires"], **labels)
        reg.counter("live_node_restarts_total",
                    "watchdog-initiated node restarts").inc(
            self.total_restarts)

    # -- reporting -----------------------------------------------------------
    def report(self) -> dict:
        """JSON-able run report (lands in the manifest's ``extra.live``)."""
        per_node = {str(s.index): s.stats() for s in self.servers}
        transport_stats: Dict[str, Any] = (
            self.chaos.stats() if self.chaos is not None
            else self.transport.stats()
        )
        return {
            "algorithm": type(self.algorithm).__name__,
            "n": self.n,
            "K": getattr(self.algorithm, "K", None),
            "seed": self.seed,
            "transport": self.transport_name,
            "chaos": self.chaos is not None,
            "wire": self.wire.stats(),
            "timer_interval": self.timer_interval,
            "wall_clock": self.clock() if self._booted else 0.0,
            "restarts": self.total_restarts,
            "crashes_requested": self.crashes_requested,
            "health": self.health.to_json() if self.health else {},
            "nodes": per_node,
            "transport_stats": transport_stats,
        }

    @property
    def ok(self) -> bool:
        """Healthy: stabilized after the last disturbance, guarantee held."""
        return self.health is not None and self.health.ok
