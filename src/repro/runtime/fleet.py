"""Fleet control plane: many live rings per process, rings per worker.

One :class:`~repro.runtime.supervisor.RingSupervisor` deploys one ring.
Production runs many: this module multiplexes N rings over a shared
socket pool (:class:`~repro.runtime.transport.MuxUdpTransport`, frames
demultiplexed by the ``ring_id`` in their wire header) and, when one
process's event loop saturates, shards whole *rings* across worker
processes.  Rings — not nodes — are the shard unit: the online
:class:`~repro.runtime.health.HealthMonitor` audits a ring's *global*
configuration (legitimacy, cache coherence, token census) on every event,
which requires all of a ring's nodes in one process; the shared-socket
route table is what would extend to cross-process nodes if that audit
ever moves online-distributed.

Per-ring machinery is untouched: every ring keeps its own supervisor,
watchdog, chaos director, health monitor, telemetry bus and (optional)
run-store subscriber — the fleet layer only owns transport multiplexing,
lifecycle, optional load generation and the aggregate report.

Entry points: :func:`run_fleet` (one process), :func:`run_fleet_sharded`
(ring partitions across a ``ProcessPoolExecutor``), and ``repro fleet
run|status`` on the CLI.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.chaos import build_script
from repro.runtime.harness import build_algorithm, install_uvloop, loop_name
from repro.runtime.loadgen import LoadGenerator
from repro.runtime.supervisor import RingSupervisor
from repro.runtime.transport import MuxUdpTransport

#: Canonical fleet report schema id.
FLEET_SCHEMA = "repro-fleet/1"


@dataclass(frozen=True)
class RingSpec:
    """Declarative description of one fleet ring."""

    name: str
    algorithm: str = "ssrmin"
    n: int = 5
    K: Optional[int] = None
    seed: int = 0
    wire: str = "binary"
    timer_interval: float = 0.1
    initial: str = "legitimate"
    #: Named chaos script to play against this ring (None = calm).
    script: Optional[str] = None
    #: Open-loop critical-section demand in requests/second (0 = none).
    load_rate: float = 0.0

    def to_json(self) -> dict:
        """Plain-dict form (JSON-able, also the shard-worker pickle)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "RingSpec":
        return cls(**data)


def default_specs(
    rings: int,
    algorithm: str = "ssrmin",
    n: int = 5,
    K: Optional[int] = None,
    wire: str = "binary",
    seed: int = 0,
    timer_interval: float = 0.1,
    script: Optional[str] = None,
    load_rate: float = 0.0,
) -> List[RingSpec]:
    """Homogeneous fleet of ``rings`` rings with per-ring derived seeds."""
    return [
        RingSpec(
            name=f"ring-{i}",
            algorithm=algorithm,
            n=n,
            K=K,
            seed=seed + i,
            wire=wire,
            timer_interval=timer_interval,
            initial="legitimate",
            script=script,
            load_rate=load_rate,
        )
        for i in range(rings)
    ]


class FleetSupervisor:
    """Boots, runs and drains N rings over one shared transport pool.

    Parameters
    ----------
    specs:
        The rings to deploy.
    transport:
        ``"mux-udp"`` (shared sockets, the fleet default) or
        ``"loopback"`` (each ring gets a private in-process transport —
        no sockets, for tests and constrained sandboxes).
    sockets:
        Shared-socket pool size for the mux transport.
    batch:
        Send-side datagram coalescing on the mux.
    store:
        Optional :class:`~repro.observability.store.RunStore`; each ring
        gets its own :class:`~repro.observability.ingest.StoreSubscriber`
        (run ids ``fleet-<name>``), so ``repro top``-style tooling sees
        fleet runs too.
    """

    def __init__(
        self,
        specs: Sequence[RingSpec],
        transport: str = "mux-udp",
        sockets: int = 1,
        batch: bool = True,
        store: Optional[Any] = None,
    ):
        if not specs:
            raise ValueError("a fleet needs at least one ring")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate ring names in {names}")
        if transport not in ("mux-udp", "loopback"):
            raise ValueError(
                f"unknown fleet transport {transport!r} (mux-udp, loopback)"
            )
        self.specs = list(specs)
        self.transport_name = transport
        self.mux: Optional[MuxUdpTransport] = (
            MuxUdpTransport(sockets=sockets, batch=batch)
            if transport == "mux-udp" else None
        )
        self.store = store
        self.supervisors: Dict[str, RingSupervisor] = {}
        self.loadgens: Dict[str, LoadGenerator] = {}
        self.load_reports: Dict[str, dict] = {}
        self._subscribers: List[Any] = []
        self._booted = False

    # -- lifecycle -----------------------------------------------------------
    def _build_ring(self, ring_id: int, spec: RingSpec) -> RingSupervisor:
        algorithm = build_algorithm(spec.algorithm, spec.n, spec.K)
        transport: Any
        if self.mux is not None:
            transport = self.mux.view(ring_id, spec.n)
        else:
            transport = "loopback"
        supervisor = RingSupervisor(
            algorithm,
            transport=transport,
            chaos=spec.script is not None,
            wire=spec.wire,
            initial=spec.initial,
            seed=spec.seed,
            timer_interval=spec.timer_interval,
        )
        if self.store is not None:
            from repro.observability.ingest import StoreSubscriber

            subscriber = StoreSubscriber(
                self.store, run_id=f"fleet-{spec.name}", source="fleet"
            )
            supervisor.bus.subscribe(subscriber)
            self._subscribers.append(subscriber)
        if spec.load_rate > 0:
            self.loadgens[spec.name] = LoadGenerator(
                supervisor, rate=spec.load_rate, seed=spec.seed,
            )
        return supervisor

    async def boot(self) -> None:
        """Build and boot every ring (mux sockets come up with ring 0)."""
        if self._booted:
            raise RuntimeError("fleet already booted")
        self._booted = True
        for ring_id, spec in enumerate(self.specs):
            supervisor = self._build_ring(ring_id, spec)
            self.supervisors[spec.name] = supervisor
            await supervisor.boot()

    async def run(
        self, duration: float, stabilize_timeout: float = 10.0
    ) -> None:
        """Stabilize every ring, then run scripts + load concurrently."""
        if not self._booted:
            await self.boot()
        await asyncio.gather(*(
            self._await_stabilized(sup, stabilize_timeout)
            for sup in self.supervisors.values()
        ))
        tasks: List[asyncio.Task] = []
        for spec in self.specs:
            sup = self.supervisors[spec.name]
            if spec.script is not None:
                tasks.append(asyncio.ensure_future(
                    sup.run_chaos(build_script(spec.script, spec.n, spec.seed))
                ))
            gen = self.loadgens.get(spec.name)
            if gen is not None:
                tasks.append(asyncio.ensure_future(
                    self._run_load(spec.name, gen, duration)
                ))
        if duration > 0:
            await asyncio.sleep(duration)
        for task in tasks:
            if not task.done():
                await task

    @staticmethod
    async def _await_stabilized(
        supervisor: RingSupervisor, timeout: float
    ) -> None:
        try:
            await supervisor.wait_stabilized(timeout)
        except TimeoutError:
            pass  # reported as stabilized=False per ring

    async def _run_load(
        self, name: str, gen: LoadGenerator, duration: float
    ) -> None:
        report = await gen.run(duration)
        self.load_reports[name] = report.to_json()

    async def shutdown(self) -> None:
        """Drain every ring; the mux closes with its last view."""
        for supervisor in self.supervisors.values():
            await supervisor.shutdown()
        for subscriber in self._subscribers:
            subscriber.close()
        if self.mux is not None:
            await self.mux.close()

    # -- observation ---------------------------------------------------------
    def status_rows(self) -> List[Any]:
        """Live dashboard rows (same renderer as ``repro top``)."""
        from repro.observability.dashboard import RingRow

        return [
            RingRow.from_supervisor(name, sup)
            for name, sup in self.supervisors.items()
        ]

    def report(self) -> dict:
        """Aggregate fleet report (schema :data:`FLEET_SCHEMA`)."""
        rings: Dict[str, dict] = {}
        total_delivered = 0
        total_wall = 0.0
        stabilized = 0
        for spec in self.specs:
            sup = self.supervisors[spec.name]
            ring_report = sup.report()
            if spec.name in self.load_reports:
                ring_report["load"] = self.load_reports[spec.name]
            rings[spec.name] = ring_report
            tstats = ring_report.get("transport_stats", {})
            total_delivered += int(tstats.get("delivered", 0))
            total_wall = max(total_wall, ring_report.get("wall_clock", 0.0))
            if ring_report.get("health", {}).get("stabilized"):
                stabilized += 1
        return {
            "schema": FLEET_SCHEMA,
            "transport": self.transport_name,
            "loop": loop_name(),
            "rings": len(self.specs),
            "stabilized_rings": stabilized,
            "wall_clock": total_wall,
            "delivered_total": total_delivered,
            "delivered_per_sec": (
                total_delivered / total_wall if total_wall > 0 else 0.0
            ),
            "mux": self.mux.stats() if self.mux is not None else None,
            "specs": [spec.to_json() for spec in self.specs],
            "ring_reports": rings,
        }

    @property
    def ok(self) -> bool:
        """Every ring stabilized with a clean final epoch."""
        return all(sup.ok for sup in self.supervisors.values())


# -- sync entry points --------------------------------------------------------

async def _fleet_main(
    specs: Sequence[RingSpec],
    duration: float,
    transport: str,
    sockets: int,
    batch: bool,
    stabilize_timeout: float,
    store: Optional[Any],
) -> dict:
    fleet = FleetSupervisor(
        specs, transport=transport, sockets=sockets, batch=batch, store=store,
    )
    try:
        await fleet.run(duration, stabilize_timeout=stabilize_timeout)
    finally:
        await fleet.shutdown()
    return fleet.report()


def run_fleet(
    specs: Sequence[RingSpec],
    duration: float = 2.0,
    transport: str = "mux-udp",
    sockets: int = 1,
    batch: bool = True,
    stabilize_timeout: float = 10.0,
    use_uvloop: bool = False,
    store_path: Optional[str] = None,
) -> dict:
    """Deploy a fleet in this process; returns the aggregate report."""
    if use_uvloop:
        install_uvloop(True)
    store = None
    if store_path is not None:
        from repro.observability.store import RunStore

        store = RunStore(store_path)
    try:
        return asyncio.run(_fleet_main(
            specs, duration, transport, sockets, batch,
            stabilize_timeout, store,
        ))
    finally:
        if store is not None:
            store.close()


def _shard_worker(payload: str) -> str:
    """Module-level (picklable) worker: run one ring shard, return JSON."""
    args = json.loads(payload)
    specs = [RingSpec.from_json(s) for s in args["specs"]]
    report = run_fleet(
        specs,
        duration=args["duration"],
        transport=args["transport"],
        sockets=args["sockets"],
        batch=args["batch"],
        stabilize_timeout=args["stabilize_timeout"],
        use_uvloop=args["use_uvloop"],
        # No run store inside shard workers: concurrent sqlite writers
        # would serialize on the database lock and skew the fleet.
        store_path=None,
    )
    report["worker_pid"] = os.getpid()
    return json.dumps(report)


def run_fleet_sharded(
    specs: Sequence[RingSpec],
    workers: int,
    duration: float = 2.0,
    transport: str = "mux-udp",
    sockets: int = 1,
    batch: bool = True,
    stabilize_timeout: float = 10.0,
    use_uvloop: bool = False,
) -> dict:
    """Partition rings round-robin across worker processes and merge.

    Each worker hosts whole rings (its own event loop, socket pool and
    supervisors); the merged report keeps per-ring detail and re-derives
    the fleet aggregates.  With ``workers <= 1`` this degrades to
    :func:`run_fleet`.
    """
    if workers <= 1 or len(specs) <= 1:
        return run_fleet(
            specs, duration=duration, transport=transport, sockets=sockets,
            batch=batch, stabilize_timeout=stabilize_timeout,
            use_uvloop=use_uvloop,
        )
    from concurrent.futures import ProcessPoolExecutor

    workers = min(workers, len(specs))
    shards: List[List[RingSpec]] = [[] for _ in range(workers)]
    for i, spec in enumerate(specs):
        shards[i % workers].append(spec)
    payloads = [
        json.dumps({
            "specs": [s.to_json() for s in shard],
            "duration": duration,
            "transport": transport,
            "sockets": sockets,
            "batch": batch,
            "stabilize_timeout": stabilize_timeout,
            "use_uvloop": use_uvloop,
        })
        for shard in shards
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        shard_reports = [
            json.loads(r) for r in pool.map(_shard_worker, payloads)
        ]
    merged_rings: Dict[str, dict] = {}
    merged_specs: List[dict] = []
    for report in shard_reports:
        merged_rings.update(report["ring_reports"])
        merged_specs.extend(report["specs"])
    wall = max((r["wall_clock"] for r in shard_reports), default=0.0)
    delivered = sum(r["delivered_total"] for r in shard_reports)
    return {
        "schema": FLEET_SCHEMA,
        "transport": transport,
        "loop": shard_reports[0]["loop"] if shard_reports else loop_name(),
        "rings": len(specs),
        "stabilized_rings": sum(
            r["stabilized_rings"] for r in shard_reports
        ),
        "wall_clock": wall,
        "delivered_total": delivered,
        "delivered_per_sec": delivered / wall if wall > 0 else 0.0,
        "workers": workers,
        "worker_pids": [r.get("worker_pid") for r in shard_reports],
        "mux": None,
        "specs": merged_specs,
        "ring_reports": merged_rings,
    }


def render_fleet_report(report: dict) -> List[str]:
    """Human-readable fleet summary lines."""
    lines = [
        f"fleet:      {report.get('rings')} rings over "
        f"{report.get('transport')} (loop={report.get('loop')})"
        + (f", {report.get('workers')} workers"
           if report.get("workers") else ""),
        f"stabilized: {report.get('stabilized_rings')}/{report.get('rings')}",
        f"throughput: {report.get('delivered_per_sec', 0.0):,.0f} msgs/sec "
        f"delivered ({report.get('delivered_total')} in "
        f"{report.get('wall_clock', 0.0):.2f}s)",
    ]
    for name, ring in sorted(report.get("ring_reports", {}).items()):
        health = ring.get("health", {})
        wire = ring.get("wire", {})
        line = (
            f"  {name}: {ring.get('algorithm')} n={ring.get('n')} "
            f"wire={wire.get('format')} "
            f"stabilized={health.get('stabilized')} "
            f"violations={len(health.get('guarantee_violations', []))}"
        )
        load = ring.get("load")
        if load:
            line += (
                f" load={load['served']}/{load['requests']} served "
                f"p99={load['wait_p99'] * 1000:.1f}ms "
                f"blocked_ticks={load['blocked_ticks']}"
            )
        lines.append(line)
    return lines


__all__ = [
    "FLEET_SCHEMA",
    "FleetSupervisor",
    "RingSpec",
    "default_specs",
    "render_fleet_report",
    "run_fleet",
    "run_fleet_sharded",
]
