"""Open-loop load generation against a live ring's critical section.

The camera application (:mod:`repro.apps`) interprets the own-view token
holder as the *active* camera; operationally, clients contend for that
privilege — a priority review of the live feed, an exclusive actuator, the
mutual-exclusion critical section in general.  :class:`LoadGenerator`
models an open-loop client population issuing ``rate`` requests per second
against one live :class:`~repro.runtime.supervisor.RingSupervisor`:

* arrivals are drawn per event-loop tick as ``rate * dt`` with stochastic
  rounding (seeded), so a million-request-per-second workload costs the
  same integer arithmetic as ten per second — the generator never
  materializes individual requests;
* a request is **served** at the first tick where at least one node sees
  the token in its own view (Definition 3's ``h_i`` — the active camera);
  requests arriving while the census is vacant queue until the next
  holder tick, and their waits are recorded.

The report makes the paper's Theorem 3 operational: with SSRmin's
graceful handover the census never drops to zero after stabilization, so
``blocked_ticks`` stays 0 and every request is served within one tick;
Dijkstra's handover gap shows up directly as queued requests and a
nonzero wait tail.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Tuple

from repro.runtime.supervisor import RingSupervisor


def _weighted_percentile(
    samples: List[Tuple[float, int]], q: float
) -> float:
    """Percentile over ``(value, count)`` buckets (q in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    total = sum(c for _, c in ordered)
    target = q * total
    seen = 0
    for value, count in ordered:
        seen += count
        if seen >= target:
            return value
    return ordered[-1][0]


@dataclass
class LoadReport:
    """What a load run delivered (JSON-able via :meth:`to_json`)."""

    rate: float
    duration: float
    ticks: int
    requests: int
    served: int
    #: Ticks where the own-view census was vacant while demand waited —
    #: zero for a stabilized graceful-handover ring.
    blocked_ticks: int
    #: Requests still queued when the run ended.
    pending: int
    max_queue: int
    wait_p50: float
    wait_p99: float
    wait_max: float

    @property
    def throughput(self) -> float:
        """Served requests per second of load-run wall clock."""
        return self.served / self.duration if self.duration > 0 else 0.0

    def to_json(self) -> dict:
        """Plain-dict form for fleet/ring reports."""
        return {
            "rate": self.rate,
            "duration": self.duration,
            "ticks": self.ticks,
            "requests": self.requests,
            "served": self.served,
            "throughput": self.throughput,
            "blocked_ticks": self.blocked_ticks,
            "pending": self.pending,
            "max_queue": self.max_queue,
            "wait_p50": self.wait_p50,
            "wait_p99": self.wait_p99,
            "wait_max": self.wait_max,
        }


class LoadGenerator:
    """Drives one supervisor's ring with synthetic critical-section demand.

    Parameters
    ----------
    supervisor:
        A booted (or about-to-boot) live ring.
    rate:
        Mean request arrival rate (requests/second, open loop).
    seed:
        Stochastic-rounding RNG seed (runs replay).
    tick:
        Polling cadence in seconds; also the service granularity — waits
        are measured in whole ticks.
    """

    def __init__(
        self,
        supervisor: RingSupervisor,
        rate: float,
        seed: int = 0,
        tick: float = 0.005,
    ):
        import random

        self.supervisor = supervisor
        self.rate = float(rate)
        self.tick = tick
        self.rng = random.Random(seed ^ 0x10AD)
        self._queue: List[Tuple[int, float]] = []  # (count, enqueued_at)
        self._waits: List[Tuple[float, int]] = []  # (wait, count) buckets
        self.requests = 0
        self.served = 0
        self.blocked_ticks = 0
        self.ticks = 0
        self.max_queue = 0
        self._elapsed = 0.0

    # -- the tick ------------------------------------------------------------
    def _holders(self) -> int:
        """Own-view token census, straight off the live node objects."""
        sup = self.supervisor
        alg = sup.algorithm
        return sum(
            1 for server in sup.servers
            if alg.node_holds_token(server.node.view(), server.node.index)
        )

    def _arrivals(self, dt: float) -> int:
        """Stochastically-rounded ``rate * dt`` (exact in expectation)."""
        exact = self.rate * dt
        count = int(exact)
        frac = exact - count
        if frac > 0.0 and self.rng.random() < frac:
            count += 1
        return count

    def step(self, dt: float, now: float) -> None:
        """Advance one tick: admit arrivals, serve if a holder exists."""
        self.ticks += 1
        arrivals = self._arrivals(dt)
        self.requests += arrivals
        if self._holders() >= 1:
            # Every queued request drains this tick; record its wait.
            for count, enqueued_at in self._queue:
                self._waits.append((now - enqueued_at, count))
                self.served += count
            self._queue.clear()
            if arrivals:
                self._waits.append((0.0, arrivals))
                self.served += arrivals
        else:
            if arrivals:
                self._queue.append((arrivals, now))
            if self._queue:
                self.blocked_ticks += 1
        depth = sum(c for c, _ in self._queue)
        if depth > self.max_queue:
            self.max_queue = depth

    async def run(self, duration: float) -> LoadReport:
        """Generate load for ``duration`` seconds; returns the report."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        last = start
        deadline = start + duration
        while True:
            await asyncio.sleep(self.tick)
            now = loop.time()
            self.step(now - last, now)
            last = now
            if now >= deadline:
                break
        self._elapsed = last - start
        return self.report()

    # -- reporting -----------------------------------------------------------
    def report(self) -> LoadReport:
        """Snapshot the demand/service counters as a :class:`LoadReport`."""
        pending = sum(c for c, _ in self._queue)
        return LoadReport(
            rate=self.rate,
            duration=self._elapsed,
            ticks=self.ticks,
            requests=self.requests,
            served=self.served,
            blocked_ticks=self.blocked_ticks,
            pending=pending,
            max_queue=self.max_queue,
            wait_p50=_weighted_percentile(self._waits, 0.50),
            wait_p99=_weighted_percentile(self._waits, 0.99),
            wait_max=max((w for w, _ in self._waits), default=0.0),
        )


__all__ = ["LoadGenerator", "LoadReport"]
